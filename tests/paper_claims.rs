//! Integration tests asserting the paper's headline qualitative claims,
//! using the same experiment harness the benches print (crate `bench`).
//!
//! Absolute numbers are not expected to match the authors' testbed; the
//! assertions target the *shape* of each result: what is detected, who is
//! blamed, who wins and by roughly how much.

use bench::{
    fig10_synthetic_accuracy, fig11_placement_robustness, fig12_profiling_overhead, fig8_detection,
    CloudWorkload,
};
use deepdive::synthetic::SyntheticBenchmark;
use hwsim::MachineSpec;
use queueing::scenarios::{paper_fractions, reaction_time_curve, ScenarioConfig};

#[test]
fn fig8_no_false_negatives_and_false_positives_decline() {
    // §5.2: "DeepDive always detected the injected interference" and "the
    // false positive rate quickly decreases as DeepDive learns".
    for workload in CloudWorkload::ALL {
        let result = fig8_detection(workload, 21);
        assert_eq!(
            result.missed_episodes,
            0,
            "{}: some qualifying episodes were never detected",
            workload.name()
        );
        let day1 = &result.days[0];
        let day3 = &result.days[2];
        assert!(
            day3.false_positive_rate <= day1.false_positive_rate,
            "{}: false positive rate did not decline (day1 {:.2}, day3 {:.2})",
            workload.name(),
            day1.false_positive_rate,
            day3.false_positive_rate
        );
        for day in &result.days {
            assert!(
                (day.detection_rate - 1.0).abs() < 1e-9 || day.episodes == 0,
                "{}: detection rate below 100% on day {}",
                workload.name(),
                day.day
            );
        }
    }
}

#[test]
fn fig10_synthetic_clone_tracks_real_degradation() {
    // §5.4: median estimation error 8%, average 10% — we allow a looser but
    // still tight bound on the simulator.
    let benchmark = SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 200, 7);
    let mut errors = Vec::new();
    for workload in CloudWorkload::ALL {
        for p in fig10_synthetic_accuracy(workload, &benchmark, 13) {
            errors.push((p.real_degradation - p.synthetic_degradation).abs());
        }
    }
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = errors[errors.len() / 2];
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(median < 0.15, "median synthetic-clone error {median}");
    assert!(mean < 0.20, "mean synthetic-clone error {mean}");
}

#[test]
fn fig11_deepdive_finds_the_best_destination_without_migrating() {
    let benchmark = SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 200, 7);
    let r = fig11_placement_robustness(&benchmark, 17);
    assert!(r.chosen_pm.is_some());
    // The chosen destination must be (essentially) the best one, and clearly
    // better than the average and worst placements.
    assert!(
        r.deepdive_choice <= r.best + 0.05,
        "DeepDive's choice suffers {:.1}% vs best {:.1}%",
        r.deepdive_choice * 100.0,
        r.best * 100.0
    );
    assert!(r.deepdive_choice <= r.average);
    assert!(r.worst >= r.best);
}

#[test]
fn fig12_deepdive_profiles_far_less_than_the_naive_baselines() {
    let r = fig12_profiling_overhead(21);
    let total_deepdive = *r.deepdive.last().unwrap();
    let total_baseline5 = *r.baseline_5.last().unwrap();
    let total_baseline20 = *r.baseline_20.last().unwrap();
    assert!(
        total_deepdive < total_baseline20,
        "DeepDive ({total_deepdive:.1} min) should beat even Baseline-20% ({total_baseline20:.1} min)"
    );
    assert!(
        total_baseline20 <= total_baseline5,
        "looser thresholds must profile less"
    );
    // The Fig. 12 plateau: most of DeepDive's profiling happens on day 1.
    let day1 = r.deepdive[23];
    assert!(
        total_deepdive - day1 <= day1 + 1.0,
        "profiling kept accumulating after day 1 (day1 {day1:.1}, total {total_deepdive:.1})"
    );
}

#[test]
fn fig13_four_servers_meet_the_papers_reaction_target() {
    // §5.5: "only four profiling servers provide reaction time within four
    // minutes, even under an aggressive rate of 20% of VMs undergoing
    // interference."
    let curve = reaction_time_curve(
        &ScenarioConfig {
            servers: 4,
            ..Default::default()
        },
        &[0.2],
    );
    let minutes = curve[0]
        .mean_reaction_minutes
        .expect("four servers must be stable at a 20% interference rate");
    assert!(minutes <= 5.0, "mean reaction time {minutes:.1} min");
}

#[test]
fn fig13_global_information_roughly_halves_the_needed_farm() {
    // §5.5: global information "allows DeepDive to further reduce the number
    // of profiling servers required (by a factor of two)".  Check that at a
    // high interference rate, 2 servers with global information cover at
    // least as much of the sweep as 4 servers without it.
    let fractions = paper_fractions();
    let stable = |servers: usize, popularity: Option<(usize, f64)>| {
        reaction_time_curve(
            &ScenarioConfig {
                servers,
                popularity,
                ..Default::default()
            },
            &fractions,
        )
        .iter()
        .filter(|p| p.mean_reaction_minutes.is_some())
        .count()
    };
    let four_local = stable(4, None);
    let two_global = stable(2, Some((200, 2.0)));
    assert!(
        two_global + 1 >= four_local,
        "2 servers with global info cover {two_global} points vs {four_local} for 4 servers local-only"
    );
}

#[test]
fn fig14_bursty_arrivals_still_need_under_ten_servers() {
    // §5.5: "fewer than 10 dedicated profiling machines are required, even
    // under this extreme new-VM arrival scenario."
    let curve = reaction_time_curve(
        &ScenarioConfig {
            servers: 8,
            arrival_model: traces::ArrivalModel::Lognormal { sigma: 2.0 },
            popularity: Some((200, 1.5)),
            ..Default::default()
        },
        &[0.2, 0.6, 1.0],
    );
    assert!(
        curve.iter().all(|p| p.mean_reaction_minutes.is_some()),
        "8 servers should remain stable across the sweep under bursty arrivals"
    );
}
