//! Execution-mode equivalence and stream-independence guarantees of the
//! epoch engine.
//!
//! Two properties the parallel engine is built on:
//!
//! 1. **Mode equivalence** — `Serial`, `Sharded` (spawn-per-call scoped
//!    threads) and `Pooled` (persistent worker pool) produce bit-identical
//!    `VmEpochReport` sequences over arbitrary placements, loads and epoch
//!    counts — including thread counts that exceed or do not divide the
//!    machine count (the thread count is a throughput knob, never a results
//!    knob).
//! 2. **Stream independence** — a mid-run migration does not change any
//!    VM's subsequent demand stream, because streams are derived per
//!    `(vm, epoch)` from the cluster seed rather than threaded through a
//!    shared generator.  This was impossible to state (let alone test)
//!    before the engine refactor: with one shared `StdRng`, any placement
//!    change perturbed every later draw.

use cloudsim::{
    Cluster, ClusterSeed, EpochEngine, ExecutionMode, PmId, Scheduler, Vm, VmEpochReport, VmId,
};
use hwsim::MachineSpec;
use proptest::prelude::*;
use workloads::{
    AppId, ClientEmulator, DataAnalytics, DataServing, MemoryStress, NetworkStress, WebSearch,
};

/// Deterministic VM zoo: the workload (and its app identity) is a pure
/// function of the VM id, so two clusters built from the same ids always
/// carry identical tenants.
fn vm(i: u64) -> Vm {
    match i % 5 {
        0 => Vm::new(
            VmId(i),
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(8_000.0, 4.0),
        ),
        1 => Vm::new(
            VmId(i),
            Box::new(WebSearch::with_defaults(AppId(2))),
            ClientEmulator::new(1_200.0, 25.0),
        ),
        2 => Vm::new(
            VmId(i),
            Box::new(DataAnalytics::worker(AppId(3))),
            ClientEmulator::new(40.0, 400.0),
        ),
        3 => Vm::new(
            VmId(i),
            Box::new(MemoryStress::new(AppId(900), 384.0)),
            ClientEmulator::new(1.0, 1.0),
        ),
        _ => Vm::new(
            VmId(i),
            Box::new(NetworkStress::new(AppId(901), 400.0)),
            ClientEmulator::new(1.0, 1.0),
        ),
    }
}

/// Builds a mixed Xeon + Core i7 cluster and scatters `vms` VMs over it with
/// a `stride`-parameterised placement (falling back to first-fit when the
/// targeted machine is full); placements therefore vary with every proptest
/// case while staying identical across the clusters of one case.
fn build_cluster(machines: usize, vms: usize, stride: usize) -> Cluster {
    let mut cluster = Cluster::heterogeneous(
        &[
            (MachineSpec::xeon_x5472(), machines.div_ceil(2)),
            (MachineSpec::core_i7_nehalem(), machines / 2),
        ],
        Scheduler::default(),
    );
    for i in 0..vms {
        let target = PmId(((i * stride) % machines) as u64);
        if cluster.place_on(target, vm(i as u64)).is_ok() {
            continue;
        }
        // Target machine full: fall back to first-fit; a full cluster just
        // stops placing (the case still exercises whatever fit).
        if cluster.place_first_fit(vm(i as u64)).is_err() {
            break;
        }
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn serial_and_sharded_runs_are_bit_identical(
        machines in 1usize..7,
        vms in 1usize..20,
        stride in 1usize..5,
        epochs in 1usize..7,
        seed in 0u64..1_000,
        base_load in 0.05f64..0.95,
    ) {
        let modes = [
            ExecutionMode::Serial,
            ExecutionMode::Sharded { threads: 2 },
            ExecutionMode::Sharded { threads: 8 },
            ExecutionMode::Pooled { threads: 3 },
            ExecutionMode::Pooled { threads: 8 },
        ];
        let mut runs: Vec<Vec<VmEpochReport>> = Vec::new();
        for mode in modes {
            let mut cluster = build_cluster(machines, vms, stride);
            let engine = EpochEngine::new(ClusterSeed::new(seed), mode);
            let mut all = Vec::new();
            for _ in 0..epochs {
                // Per-VM loads, so shards cannot get away with evaluating
                // the closure for the wrong VM.
                all.extend(
                    engine.step(&mut cluster, |v| (base_load + 0.07 * (v.0 % 8) as f64).min(1.0)),
                );
            }
            runs.push(all);
        }
        let serial = &runs[0];
        prop_assert!(!serial.is_empty());
        for (mode, run) in modes.iter().zip(&runs).skip(1) {
            prop_assert_eq!(serial, run, "{:?} diverged from Serial", mode);
        }
    }
}

/// One lifecycle event per epoch, interpreted deterministically against the
/// current resident set so every cluster in a case sees the same sequence.
#[derive(Debug, Clone, Copy)]
enum ChurnOp {
    /// Admit a fresh VM (ids come from a shared counter) via first-fit.
    Arrive,
    /// Remove the `pick`-th resident VM (mod population).
    Depart { pick: usize },
    /// Migrate the `pick`-th resident VM to machine `to` (mod fleet);
    /// a full destination leaves the VM in place on every cluster alike.
    Migrate { pick: usize, to: usize },
    /// No membership change this epoch (lets quiescence actually build up).
    Settle,
}

fn churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        2 => Just(ChurnOp::Arrive),
        1 => (0usize..64).prop_map(|pick| ChurnOp::Depart { pick }),
        1 => (0usize..64, 0usize..8).prop_map(|(pick, to)| ChurnOp::Migrate { pick, to }),
        3 => Just(ChurnOp::Settle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sparse engine's quiescent caching must be invisible under live
    /// churn: arrivals, departures and migrations invalidate exactly the
    /// machines they touch, and every execution mode replays or resolves
    /// its way to the same bytes the dense serial sweep produces — per-epoch
    /// reports and final cluster state alike.
    #[test]
    fn sparse_and_dense_agree_under_churn(
        machines in 2usize..6,
        initial_vms in 0usize..10,
        stride in 1usize..4,
        seed in 0u64..1_000,
        base_load in 0.05f64..0.95,
        ops in proptest::collection::vec(churn_op(), 1..24),
    ) {
        // (engine-sparseness, mode) configurations; index 0 is the dense
        // serial reference everything else must match bit for bit.
        let configs = [
            (false, ExecutionMode::Serial),
            (true, ExecutionMode::Serial),
            (true, ExecutionMode::Sharded { threads: 3 }),
            (true, ExecutionMode::Pooled { threads: 2 }),
        ];
        // Loads alternate between idle and busy in 3-epoch stretches per
        // VM, so quiescent stretches genuinely occur (and end) mid-run.
        let load = |epoch: u64, v: VmId| {
            if (epoch / 3 + v.0).is_multiple_of(2) {
                0.0
            } else {
                base_load
            }
        };
        // Per-config outcome: (reports per epoch, final placement, quiescent steps).
        type ChurnRun = (Vec<Vec<VmEpochReport>>, Vec<(VmId, PmId)>, u64);
        let mut runs: Vec<ChurnRun> = Vec::new();
        for (sparse, mode) in configs {
            let mut cluster = build_cluster(machines, initial_vms, stride);
            let mut engine = EpochEngine::new(ClusterSeed::new(seed), mode);
            engine.set_sparse(sparse);
            // The resident list drives op interpretation; it is a pure
            // function of the op sequence, so every config tracks the
            // same membership.
            let mut resident: Vec<VmId> =
                cluster.machines().iter().flat_map(|m| m.vms().iter().map(|v| v.id)).collect();
            resident.sort_unstable();
            let mut next_id = resident.last().map_or(0, |v| v.0 + 1);
            let mut per_epoch = Vec::new();
            for (offset, op) in ops.iter().enumerate() {
                match *op {
                    ChurnOp::Arrive => {
                        if cluster.place_first_fit(vm(next_id)).is_ok() {
                            resident.push(VmId(next_id));
                        }
                        next_id += 1;
                    }
                    ChurnOp::Depart { pick } if !resident.is_empty() => {
                        let id = resident.remove(pick % resident.len());
                        prop_assert!(cluster.remove_vm(id).is_some());
                    }
                    ChurnOp::Migrate { pick, to } if !resident.is_empty() => {
                        let id = resident[pick % resident.len()];
                        // May fail (full/self destination): equally on
                        // every cluster, so outcomes stay aligned.
                        let _ = cluster.migrate(id, PmId((to % machines) as u64));
                    }
                    _ => {}
                }
                let epoch = offset as u64;
                per_epoch.push(engine.step(&mut cluster, |v| load(epoch, v)));
            }
            let mut placement: Vec<(VmId, PmId)> = resident
                .iter()
                .map(|&id| (id, cluster.locate(id).expect("resident VM must be placed")))
                .collect();
            placement.sort_unstable();
            runs.push((per_epoch, placement, cluster.total_quiescent_steps()));
        }
        let (dense_reports, dense_placement, dense_quiescent) = &runs[0];
        prop_assert_eq!(*dense_quiescent, 0u64, "dense mode must never use the cache");
        for ((reports, placement, _), (sparse, mode)) in runs.iter().zip(configs).skip(1) {
            prop_assert_eq!(
                dense_reports, reports,
                "sparse={} {:?} diverged from the dense serial sweep", sparse, mode
            );
            prop_assert_eq!(dense_placement, placement);
        }
    }
}

#[test]
fn migration_does_not_perturb_any_vms_demand_stream() {
    // Two identical fleets under the same engine; one suffers a mid-run
    // migration.  Every VM's demand stream — including the migrated VM's —
    // must be identical in both runs, and machines untouched by the move
    // must produce fully identical reports.
    let engine = EpochEngine::serial(ClusterSeed::new(0xD1CE));
    let build = || build_cluster(4, 8, 1);
    let mut undisturbed = build();
    let mut migrated = build();
    let moved = VmId(0);
    let src = migrated.locate(moved).expect("vm 0 placed");
    let dst = PmId(3);
    assert_ne!(src, dst, "migration must actually move the VM");

    for epoch in 0..10u64 {
        if epoch == 5 {
            migrated.migrate(moved, dst).expect("destination has room");
        }
        let base = engine.step(&mut undisturbed, |_| 0.8);
        let moved_run = engine.step(&mut migrated, |_| 0.8);
        assert_eq!(base.len(), moved_run.len(), "epoch {epoch}: VM lost");

        let find = |reports: &[VmEpochReport], id: VmId| -> VmEpochReport {
            reports
                .iter()
                .find(|r| r.vm_id == id)
                .unwrap_or_else(|| panic!("epoch {epoch}: no report for {id}"))
                .clone()
        };
        for r in &base {
            let b = find(&moved_run, r.vm_id);
            // 1. Demand streams are placement-independent for every VM.
            assert_eq!(
                r.demand, b.demand,
                "epoch {epoch}: {} drew a different demand after the migration",
                r.vm_id
            );
            // 2. Machines not involved in the migration see bit-identical
            // reports (contention on src/dst legitimately changes).
            if r.pm_id != src && r.pm_id != dst && b.pm_id == r.pm_id {
                assert_eq!(
                    *r, b,
                    "epoch {epoch}: report changed on uninvolved machine {}",
                    r.pm_id
                );
            }
        }
    }
    assert_eq!(migrated.locate(moved), Some(dst));
}
