//! Spec-aware sandbox fleets: equivalence and heterogeneity-bias suites.
//!
//! Two contracts, mirroring how the resolver and warning refactors were
//! pinned:
//!
//! * **Uniform equivalence** — on a homogeneous cluster, a controller whose
//!   fleet is derived from the cluster ([`DeepDive::for_cluster`]) must make
//!   decisions bit-identical to one built the old way from a single
//!   hard-coded pool (`DeepDive::new(config, Sandbox::xeon_pool(4))`, which
//!   the `From<Sandbox>` conversion preserves as the frozen single-pool
//!   path).  The fleet may only ever *add* routing, never change results
//!   where routing is trivial.
//! * **Heterogeneity bias** — on a mixed Xeon + i7 cluster, an i7-hosted
//!   memory-heavy victim under a cache/bus aggressor must be detected by the
//!   spec-matched fleet with a near-truth degradation estimate, while the
//!   frozen single-pool path replays it on the Xeon — whose FSB throttles
//!   the *isolation* run as badly as the contended production run — and
//!   under-detects to the point of missing the episode entirely.  This is
//!   the documented limitation the fleet exists to remove.

use cloudsim::{Cluster, ClusterSeed, EpochEngine, PmId, Sandbox, Scheduler, Vm, VmId};
use deepdive::analyzer::InterferenceAnalyzer;
use deepdive::controller::{DeepDive, DeepDiveConfig, DeepDiveStats, EpochEvent};
use hwsim::MachineSpec;
use proptest::prelude::*;
use workloads::{AppId, ClientEmulator, DataServing, MemoryStress};

fn serving_vm(id: u64, app: u64) -> Vm {
    Vm::new(
        VmId(id),
        Box::new(DataServing::with_defaults(AppId(app))),
        ClientEmulator::new(8_000.0, 4.0),
    )
}

fn memory_tenant(id: u64, app: u64, working_set_mb: f64) -> Vm {
    Vm::new(
        VmId(id),
        Box::new(MemoryStress::new(AppId(app), working_set_mb)),
        ClientEmulator::new(1.0, 1.0),
    )
}

/// The mixed rack of the bias regression: one Xeon, two i7 nodes, with a
/// memory-heavy tenant on i7 node pm-1 (pm-2 stays free as a migration
/// destination).
fn mixed_cluster_with_i7_victim() -> Cluster {
    let mut cluster = Cluster::heterogeneous(
        &[
            (MachineSpec::xeon_x5472(), 1),
            (MachineSpec::core_i7_nehalem(), 2),
        ],
        Scheduler::default(),
    );
    cluster
        .place_on(PmId(1), memory_tenant(1, 7, 256.0))
        .unwrap();
    cluster
}

/// Learns for 50 epochs, injects a memory aggressor next to the victim on
/// pm-1, runs 40 more epochs, and returns the stats plus the aggressor's
/// final location and the per-pool profiling split.
fn run_bias_scenario(mut deepdive: DeepDive) -> (DeepDiveStats, Option<PmId>, Vec<(String, f64)>) {
    let mut cluster = mixed_cluster_with_i7_victim();
    let engine = EpochEngine::serial(ClusterSeed::new(21));
    for _ in 0..50 {
        let reports = engine.step(&mut cluster, |_| 0.9);
        deepdive.process_epoch(&mut cluster, &reports);
    }
    cluster
        .place_on(PmId(1), memory_tenant(99, 900, 512.0))
        .unwrap();
    for _ in 0..40 {
        let reports = engine.step(&mut cluster, |_| 0.9);
        deepdive.process_epoch(&mut cluster, &reports);
    }
    let pools = deepdive
        .profiling_seconds_by_pool()
        .map(|(name, s)| (name.to_string(), s))
        .collect();
    (deepdive.stats(), cluster.locate(VmId(99)), pools)
}

#[test]
fn cross_model_replay_under_detects_an_i7_hosted_victim() {
    // Production: memory-heavy victim on an i7 node next to a bus-hammering
    // aggressor.  Ground truth comes from the simulator's achieved fraction.
    let mut cluster = Cluster::homogeneous(1, MachineSpec::core_i7_nehalem(), Scheduler::default());
    cluster
        .place_on(PmId(0), memory_tenant(1, 7, 256.0))
        .unwrap();
    cluster
        .place_on(PmId(0), memory_tenant(99, 900, 512.0))
        .unwrap();
    let engine = EpochEngine::serial(ClusterSeed::new(11));
    let window = 6;
    let mut counters = Vec::new();
    let mut demands = Vec::new();
    let mut truth = 0.0;
    for _ in 0..window {
        let reports = engine.step(&mut cluster, |_| 0.9);
        let victim = reports.iter().find(|r| r.vm_id == VmId(1)).unwrap();
        counters.push(victim.counters);
        demands.push(victim.demand.clone());
        truth += 1.0 - victim.achieved_fraction;
    }
    truth /= window as f64;
    assert!(truth > 0.8, "aggressor not actually degrading: {truth}");

    let analyzer = InterferenceAnalyzer::new(0.15);
    let i7_pool = Sandbox::new(MachineSpec::core_i7_nehalem(), 2, 30.0);
    let xeon_pool = Sandbox::xeon_pool(2);

    // Spec-matched replay: near-truth estimate, interference confirmed.
    let matched = analyzer.analyze(VmId(1), &counters, &demands, &i7_pool, 2);
    assert!(
        matched.interference_confirmed,
        "matched replay missed real interference: {}",
        matched.degradation
    );
    assert!(
        (matched.degradation - truth).abs() < 0.15,
        "matched estimate {} vs ground truth {truth}",
        matched.degradation
    );

    // Cross-model replay (the old single-pool path): the Xeon's FSB
    // throttles the isolation run as badly as the contended production run,
    // so the comparison collapses and the episode is missed outright.
    let crossed = analyzer.analyze(VmId(1), &counters, &demands, &xeon_pool, 2);
    assert!(
        !crossed.interference_confirmed,
        "expected the biased path to under-detect; got {}",
        crossed.degradation
    );
    assert!(
        matched.degradation > crossed.degradation + 0.5,
        "bias did not materialize: matched {} vs crossed {}",
        matched.degradation,
        crossed.degradation
    );
}

#[test]
fn spec_matched_fleet_detects_what_the_xeon_only_sandbox_misses() {
    let config = DeepDiveConfig::default();

    // The fix: one pool per machine model, routed by the victim's host.
    let (matched, aggressor_at, pools) = run_bias_scenario(DeepDive::for_cluster(
        config.clone(),
        &mixed_cluster_with_i7_victim(),
    ));
    assert!(
        matched.interference_confirmed >= 1,
        "spec-matched fleet never confirmed: {matched:?}"
    );
    assert_eq!(matched.sandbox_spec_fallbacks, 0);
    assert!(matched.migrations >= 1, "no mitigation: {matched:?}");
    assert_ne!(aggressor_at, Some(PmId(1)), "aggressor still co-located");
    // Every profiling second was booked against the i7 pool: the victim's
    // analyses replayed on its own machine model.
    let i7_name = MachineSpec::core_i7_nehalem().name;
    for (name, seconds) in &pools {
        if *name == i7_name {
            assert!(*seconds > 0.0, "i7 pool never used: {pools:?}");
        } else {
            assert_eq!(*seconds, 0.0, "foreign pool used: {pools:?}");
        }
    }

    // The frozen single-pool path on the same cluster: every analysis falls
    // back to the Xeon pool, the degradation estimate collapses to ~0, the
    // episodes are all scored as false alarms and nothing is mitigated.
    let (biased, aggressor_at, _) = run_bias_scenario(DeepDive::new(config, Sandbox::xeon_pool(4)));
    assert_eq!(
        biased.interference_confirmed, 0,
        "the biased path unexpectedly detected: {biased:?}"
    );
    assert_eq!(biased.migrations, 0);
    assert_eq!(aggressor_at, Some(PmId(1)), "nothing should have moved");
    assert!(
        biased.sandbox_spec_fallbacks >= 1,
        "cross-model analyses were not counted: {biased:?}"
    );
    assert_eq!(
        biased.sandbox_spec_fallbacks, biased.analyzer_invocations,
        "every analysis of the i7-hosted victim is a cross-model fallback"
    );
    assert!(
        biased.false_alarms > matched.false_alarms,
        "under-detection should surface as false alarms: {biased:?} vs {matched:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// On uniform clusters the fleet is pure plumbing: a controller with a
    /// cluster-derived fleet and one with the old hard-coded single pool
    /// must produce bit-identical event streams and stats.
    #[test]
    fn uniform_fleet_is_equivalent_to_the_single_sandbox_path(
        seed in 0u64..1024,
        vms in 1usize..7,
        learn_epochs in 20usize..40,
        post_epochs in 15usize..30,
    ) {
        let build_cluster = || {
            let mut cluster =
                Cluster::homogeneous(3, MachineSpec::xeon_x5472(), Scheduler::default());
            for i in 0..vms {
                cluster
                    .place_first_fit(serving_vm(i as u64, 1 + (i % 2) as u64))
                    .unwrap();
            }
            cluster
        };
        let config = DeepDiveConfig {
            synthetic_training_samples: 60,
            ..DeepDiveConfig::default()
        };
        let run_one = |mut deepdive: DeepDive| {
            let mut cluster = build_cluster();
            let engine = EpochEngine::serial(ClusterSeed::new(seed));
            let mut events: Vec<EpochEvent> = Vec::new();
            for _ in 0..learn_epochs {
                let reports = engine.step(&mut cluster, |_| 0.8);
                events.extend(deepdive.process_epoch(&mut cluster, &reports));
            }
            // The aggressor lands wherever first-fit puts it — identically
            // in both runs, since the clusters are clones of each other.
            let _ = cluster.place_first_fit(memory_tenant(99, 900, 512.0));
            for _ in 0..post_epochs {
                let reports = engine.step(&mut cluster, |_| 0.8);
                events.extend(deepdive.process_epoch(&mut cluster, &reports));
            }
            (events, deepdive.stats())
        };

        let (single_events, single_stats) =
            run_one(DeepDive::new(config.clone(), Sandbox::xeon_pool(4)));
        let (fleet_events, fleet_stats) =
            run_one(DeepDive::for_cluster(config.clone(), &build_cluster()));
        prop_assert_eq!(single_events, fleet_events);
        prop_assert_eq!(single_stats, fleet_stats);
        prop_assert_eq!(single_stats.sandbox_spec_fallbacks, 0);
    }
}
