//! Integration tests for the behaviour repository's durable-store round-trip
//! and the paper's §5.5 memory-overhead bound, exercised through the full
//! pipeline rather than hand-built entries: a real learning run populates the
//! repository, which must then survive JSON serialization exactly and stay
//! within the "less than 5 KB to record the VM's behavior for the whole day"
//! budget.

use cloudsim::{Cluster, ClusterSeed, EpochEngine, Sandbox, Scheduler, Vm, VmId};
use deepdive::controller::{DeepDive, DeepDiveConfig};
use deepdive::metrics::{BehaviorVector, DIMENSIONS};
use deepdive::repository::BehaviorRepository;
use hwsim::MachineSpec;
use workloads::{AppId, ClientEmulator, DataAnalytics, DataServing};

/// Runs a quiet two-tenant cloud long enough for DeepDive to verify and
/// record normal behaviours for both applications.
fn learned_repository() -> BehaviorRepository {
    let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
    cluster
        .place_first_fit(Vm::new(
            VmId(1),
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(8_000.0, 4.0),
        ))
        .unwrap();
    cluster
        .place_first_fit(Vm::new(
            VmId(2),
            Box::new(DataAnalytics::worker(AppId(3))),
            ClientEmulator::new(40.0, 400.0),
        ))
        .unwrap();
    let mut deepdive = DeepDive::new(DeepDiveConfig::default(), Sandbox::xeon_pool(2));
    let engine = EpochEngine::serial(ClusterSeed::new(0xDD));
    for _ in 0..80 {
        let reports = engine.step(&mut cluster, |_| 0.7);
        deepdive.process_epoch(&mut cluster, &reports);
    }
    deepdive.repository().clone()
}

#[test]
fn pipeline_populated_repository_round_trips_through_json() {
    let repo = learned_repository();
    assert!(
        !repo.known_apps().is_empty(),
        "the learning run should have recorded at least one application"
    );

    let json = repo.to_json();
    let restored = BehaviorRepository::from_json(&json).expect("repository JSON parses back");

    assert_eq!(restored.known_apps(), repo.known_apps());
    for app in repo.known_apps() {
        assert_eq!(
            restored.behaviors(app),
            repo.behaviors(app),
            "app {app:?} differs"
        );
        assert_eq!(restored.normal_count(app), repo.normal_count(app));
        assert_eq!(restored.footprint_bytes(app), repo.footprint_bytes(app));
    }
    // A second round trip is a fixed point: same text, same contents.
    assert_eq!(
        BehaviorRepository::from_json(&json).unwrap().to_json(),
        json
    );
}

#[test]
fn json_round_trip_preserves_float_payloads_bit_exactly() {
    let mut repo = BehaviorRepository::new();
    // Awkward but finite values: tiny stall rates, long decimals.
    let values: Vec<f64> = (0..DIMENSIONS)
        .map(|i| 0.1234567890123456 * (i as f64 + 1.0) / 3.0)
        .collect();
    repo.record_normal(AppId(5), BehaviorVector::from_vec(&values), 42);
    repo.record_interference(AppId(5), BehaviorVector::from_vec(&values), 43);

    let restored = BehaviorRepository::from_json(&repo.to_json()).unwrap();
    let original = repo.behaviors(AppId(5));
    let round_tripped = restored.behaviors(AppId(5));
    for (a, b) in original
        .labelled()
        .iter()
        .zip(round_tripped.labelled().iter())
    {
        assert_eq!(
            a.metrics, b.metrics,
            "float payload changed across the round trip"
        );
        assert_eq!(a.interference, b.interference);
    }
}

#[test]
fn malformed_repository_json_is_rejected_not_misparsed() {
    assert!(BehaviorRepository::from_json("").is_err());
    assert!(BehaviorRepository::from_json("not json").is_err());
    assert!(BehaviorRepository::from_json("[1,2,3]").is_err());
    // Valid JSON, wrong shape.
    assert!(BehaviorRepository::from_json("{\"apps\": 3}").is_err());
}

#[test]
fn daily_footprint_per_vm_stays_under_the_5kb_bound() {
    // §5.5: a VM whose behaviour is verified every hour stores 24 entries per
    // day, "less than 5 KB to record the VM's behavior for the whole day".
    let mut repo = BehaviorRepository::new();
    let app = AppId(9);
    for hour in 0..24u64 {
        repo.record_normal(
            app,
            BehaviorVector::from_vec(&[1.0 + hour as f64 * 0.01; DIMENSIONS]),
            hour * 3_600,
        );
    }
    let bytes = repo.footprint_bytes(app);
    assert!(bytes > 0);
    assert!(
        bytes < 5 * 1024,
        "per-VM-day footprint {bytes} B exceeds the §5.5 5 KB budget"
    );

    // The durable JSON encoding inflates the payload (decimal text), but must
    // stay within a small constant factor of the in-memory accounting.
    let json_bytes = repo.to_json().len();
    assert!(
        json_bytes < 4 * 5 * 1024,
        "JSON encoding of one VM-day is unexpectedly large: {json_bytes} B"
    );
}

#[test]
fn repository_after_a_real_day_respects_the_bound_per_application() {
    let repo = learned_repository();
    for app in repo.known_apps() {
        // The run spans well under a day of epochs, so each app's history
        // must sit comfortably inside the daily budget.
        let bytes = repo.footprint_bytes(app);
        assert!(
            bytes < 5 * 1024,
            "app {app:?} stores {bytes} B after a sub-day run (budget: 5 KB/day)"
        );
    }
}
