//! Lifecycle and panic-policy guarantees of the pooled epoch engine.
//!
//! The persistent worker pool behind `ExecutionMode::Pooled` carries three
//! promises beyond bit-identical results (those live in
//! `tests/engine_equivalence.rs`):
//!
//! 1. **Clean shutdown** — dropping a pooled engine joins every worker;
//!    constructing engines in a loop leaks no threads.
//! 2. **Degenerate clusters degrade gracefully** — VM-less and
//!    single-machine clusters step entirely on the calling thread, and a
//!    zero-epoch batch is a no-op.
//! 3. **Panic containment** — a panicking `load_for` in a shard propagates
//!    its original payload to the caller *after* the shard barrier, leaves
//!    the cluster epoch counter un-advanced, and does **not** poison the
//!    pool: the very next step on the same engine works and stays
//!    bit-identical to serial.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cloudsim::{Cluster, ClusterSeed, EpochEngine, ExecutionMode, Scheduler, Vm, VmId};
use hwsim::MachineSpec;
use workloads::{AppId, ClientEmulator, DataServing};

fn cluster(machines: usize, vms: usize) -> Cluster {
    let mut c = Cluster::homogeneous(machines, MachineSpec::xeon_x5472(), Scheduler::default());
    for i in 0..vms {
        let vm = Vm::new(
            VmId(i as u64),
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(8_000.0, 4.0),
        );
        c.place_first_fit(vm).expect("cluster has room");
    }
    c
}

#[test]
fn dropping_pooled_engines_joins_all_workers() {
    // Repeated construction must not accumulate threads: every engine's
    // pool exposes a liveness probe that stops upgrading once its workers
    // have exited, which can only happen if drop really joins them.
    let mut probes = Vec::new();
    for round in 0..24 {
        let engine = EpochEngine::new(
            ClusterSeed::new(round),
            ExecutionMode::Pooled { threads: 4 },
        );
        let pool = engine.worker_pool().expect("pooled engine owns a pool");
        assert_eq!(pool.workers(), 3, "4 lanes = 3 workers + calling thread");
        probes.push(pool.liveness());
        let mut c = cluster(6, 10);
        let reports = engine.step(&mut c, |_| 0.6);
        assert_eq!(reports.len(), 10);
    }
    for (round, probe) in probes.iter().enumerate() {
        assert!(
            probe.upgrade().is_none(),
            "engine {round} leaked pool workers after drop"
        );
    }
}

#[test]
fn degenerate_clusters_step_on_the_calling_thread() {
    for mode in [
        ExecutionMode::Pooled { threads: 8 },
        ExecutionMode::Sharded { threads: 8 },
    ] {
        let engine = EpochEngine::new(ClusterSeed::new(1), mode);
        // Empty cluster (machines but no VMs — Cluster rejects zero
        // machines at construction): no reports, epoch still counts.
        let mut empty = cluster(2, 0);
        let reports = engine.step(&mut empty, |_| 0.5);
        assert!(reports.is_empty(), "VM-less step produced reports");
        assert_eq!(empty.epoch(), 1);
        // One machine: serial path, identical to a serial engine's output.
        let serial = EpochEngine::serial(ClusterSeed::new(1));
        let mut single_parallel = cluster(1, 2);
        let mut single_serial = cluster(1, 2);
        for _ in 0..3 {
            assert_eq!(
                engine.step(&mut single_parallel, |_| 0.7),
                serial.step(&mut single_serial, |_| 0.7),
                "single-machine divergence under {mode:?}"
            );
        }
    }
}

#[test]
fn zero_epoch_batches_are_no_ops() {
    for mode in [
        ExecutionMode::Serial,
        ExecutionMode::Sharded { threads: 4 },
        ExecutionMode::Pooled { threads: 4 },
    ] {
        let engine = EpochEngine::new(ClusterSeed::new(9), mode);
        let mut c = cluster(3, 6);
        let batches = engine.step_epochs(&mut c, 0, |_, _| 0.5);
        assert!(batches.is_empty(), "zero epochs returned batches: {mode:?}");
        assert_eq!(c.epoch(), 0, "zero-epoch batch advanced the epoch");
    }
}

#[test]
fn shard_panic_propagates_without_poisoning_the_pool() {
    let engine = EpochEngine::new(ClusterSeed::new(7), ExecutionMode::Pooled { threads: 4 });
    let pool_probe = engine
        .worker_pool()
        .expect("pooled engine owns a pool")
        .liveness();
    let mut c = cluster(8, 16);

    // A load closure that blows up for one specific VM: some shards finish,
    // the one holding VM 5 panics.
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        engine.step(&mut c, |vm| {
            if vm.0 == 5 {
                panic!("load trace corrupted for vm {}", vm.0);
            }
            0.5
        })
    }));
    let payload = crashed.expect_err("the shard panic must propagate");
    let message = payload
        .downcast_ref::<String>()
        .expect("original payload, not a join wrapper");
    assert_eq!(message, "load trace corrupted for vm 5");

    // The failed step must not have advanced the epoch counter, and the
    // pool's workers must all still be alive.
    assert_eq!(c.epoch(), 0, "failed step advanced the cluster epoch");
    assert!(
        pool_probe.upgrade().is_some(),
        "a shard panic killed pool workers"
    );

    // The engine remains fully usable and bit-identical to serial: compare
    // a post-panic run against a fresh serial run over the same horizon.
    // (The panicking step half-stepped some machines' internal workload
    // state, so rebuild the cluster for the comparison.)
    let mut after_panic = cluster(8, 16);
    let mut reference = cluster(8, 16);
    let serial = EpochEngine::serial(ClusterSeed::new(7));
    for _ in 0..3 {
        assert_eq!(
            engine.step(&mut after_panic, |_| 0.5),
            serial.step(&mut reference, |_| 0.5),
            "post-panic pooled stepping diverged from serial"
        );
    }
}

#[test]
fn scatter_map_panic_reraises_the_original_payload_and_keeps_the_pool() {
    use cloudsim::WorkerPool;

    let pool = WorkerPool::new(3);
    let probe = pool.liveness();
    let mut items: Vec<u64> = (0..64).collect();

    // Two tasks panic; the policy re-raises the lowest-index payload after
    // every worker reached the barrier (no worker is still touching the
    // arena when the caller unwinds).
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        pool.scatter_map(&mut items, &|item: &mut u64| {
            if *item == 11 || *item == 40 {
                panic!("map task {item} failed");
            }
            *item * 2
        })
    }));
    let payload = crashed.expect_err("the map panic must propagate");
    let message = payload
        .downcast_ref::<String>()
        .expect("original payload, not a join wrapper");
    assert_eq!(message, "map task 11 failed", "lowest index wins");

    // The pool survives and the very next scatter_map works end to end.
    assert!(
        probe.upgrade().is_some(),
        "a map panic killed the pool's workers"
    );
    let doubled = pool.scatter_map(&mut items, &|item: &mut u64| *item * 2);
    assert_eq!(doubled.len(), 64);
    assert!((0..64).all(|i| doubled[i] == i as u64 * 2));
}

#[test]
fn scatter_map_panic_leaks_no_arena_slots() {
    use std::sync::Arc;

    use cloudsim::WorkerPool;

    // Every completed task clones this Arc into its result slot.  If the
    // unwind path forgot to drop initialized slots (or dropped one twice,
    // which would abort), the strong count could never return to 1.
    let token = Arc::new(());
    let pool = WorkerPool::new(3);
    let mut items: Vec<usize> = (0..128).collect();
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        pool.scatter_map(&mut items, &|item: &mut usize| {
            if *item == 77 {
                panic!("slot 77");
            }
            Arc::clone(&token)
        })
    }));
    assert!(crashed.is_err(), "the map panic must propagate");
    assert_eq!(
        Arc::strong_count(&token),
        1,
        "unwinding leaked (or double-freed) result slots"
    );

    // A clean pass over the same pool accounts for every slot exactly once.
    let results = pool.scatter_map(&mut items, &|_: &mut usize| Arc::clone(&token));
    assert_eq!(Arc::strong_count(&token), 1 + results.len());
    drop(results);
    assert_eq!(Arc::strong_count(&token), 1);
}

#[test]
fn sharded_mode_panic_also_reaches_the_barrier_first() {
    // The scoped-thread baseline follows the same policy: original payload,
    // epoch not advanced, no abort via a bare join().expect.
    let engine = EpochEngine::new(ClusterSeed::new(3), ExecutionMode::Sharded { threads: 4 });
    let mut c = cluster(8, 16);
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        engine.step(&mut c, |vm| {
            if vm.0 == 0 {
                panic!("boom");
            }
            0.4
        })
    }));
    let payload = crashed.expect_err("the shard panic must propagate");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    assert_eq!(c.epoch(), 0);
}
