//! Warm-start vs cold-refit equivalence of warning **decisions**.
//!
//! The incremental warning path re-fits an application's cluster model by EM
//! warm-started from the previous fit instead of a fresh k-means++ start.
//! Warm and cold fits converge to (numerically) different local optima, so
//! bit-identical models are not the contract — identical *decisions* are
//! what the rest of the system consumes.  This suite pins that contract over
//! randomized repositories:
//!
//! * far outliers must escalate (`SuspectInterference`) under **both**
//!   refresh disciplines, always — warm starts may never cost detections;
//! * the full decision sequence over a mixed evaluation stream may diverge
//!   only on borderline points near a cluster boundary.  The divergence is
//!   bounded at 5% of the stream; in practice the observed rate is 0 for
//!   well-separated operating points, and periodic cold refits
//!   ([`deepdive::warning::WarningConfig::cold_refit_interval`]) keep any
//!   drift from compounding across generations.
//!
//! Forcing the cold discipline uses the same production code path with
//! `cold_refit_interval: 1` (every refit cold) — not a parallel
//! implementation — so the comparison covers exactly what ships.

use cloudsim::WorkerPool;
use deepdive::metrics::{BehaviorVector, DIMENSIONS};
use deepdive::repository::BehaviorRepository;
use deepdive::warning::{WarningConfig, WarningDecision, WarningSystem};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::AppId;

/// Two operating points per application, separated enough that cluster
/// structure is unambiguous (the regime the repository reaches after real
/// verified behaviours accumulate).
fn center(app: u64, mode: usize, rng_offset: f64) -> [f64; DIMENSIONS] {
    let mut c = [0.0; DIMENSIONS];
    for (d, slot) in c.iter_mut().enumerate() {
        let base = 1.0 + 0.3 * (app % 5) as f64 + 0.15 * d as f64;
        *slot = base * (1.0 + 2.5 * mode as f64) + rng_offset;
    }
    c
}

fn jittered(center: &[f64; DIMENSIONS], rng: &mut StdRng, spread: f64) -> BehaviorVector {
    let mut values = *center;
    for v in values.iter_mut() {
        *v = (*v * (1.0 + spread * rng.gen_range(-1.0..1.0))).max(1e-3);
    }
    BehaviorVector::from_vec(&values)
}

fn far_outlier(center: &[f64; DIMENSIONS], rng: &mut StdRng) -> BehaviorVector {
    let mut values = *center;
    for v in values.iter_mut() {
        *v = *v * rng.gen_range(8.0..15.0) + 5.0;
    }
    BehaviorVector::from_vec(&values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn warm_and_cold_refresh_produce_equivalent_decision_streams(
        seed in 0u64..4096,
        batches in 4usize..12,
        batch_size in 2usize..8,
    ) {
        let app = AppId(seed % 7);
        let mut rng = StdRng::seed_from_u64(seed);
        let offset = rng.gen_range(0.0..0.5);

        // Identical repositories grown in identical increments.
        let mut repo = BehaviorRepository::new();
        let mut warm = WarningSystem::new(WarningConfig::default());
        let mut cold = WarningSystem::new(WarningConfig {
            cold_refit_interval: 1, // force a full cold refit on every refresh
            ..Default::default()
        });

        // Seed history: both operating points plus labelled interference.
        for i in 0..12u64 {
            let c = center(app.0, (i % 2) as usize, offset);
            repo.record_normal(app, jittered(&c, &mut rng, 0.01), i);
        }
        repo.record_interference(app, far_outlier(&center(app.0, 0, offset), &mut rng), 12);
        warm.refresh_model(app, &repo);
        cold.refresh_model(app, &repo);

        let mut total = 0usize;
        let mut divergent = 0usize;
        let mut epoch = 13u64;
        for _ in 0..batches {
            // Grow the repository, then refresh both systems: the warm one
            // refits from its previous mixture, the cold one from scratch.
            for _ in 0..batch_size {
                let c = center(app.0, rng.gen_range(0usize..2), offset);
                repo.record_normal(app, jittered(&c, &mut rng, 0.01), epoch);
                epoch += 1;
            }
            warm.refresh_model(app, &repo);
            cold.refresh_model(app, &repo);
            prop_assert!(!warm.in_conservative_mode(app));
            prop_assert!(!cold.in_conservative_mode(app));

            // Evaluation stream: inliers at both operating points plus far
            // outliers, the same points through both systems.
            for i in 0..8usize {
                let c = center(app.0, i % 2, offset);
                let probe = if i == 7 {
                    far_outlier(&c, &mut rng)
                } else {
                    jittered(&c, &mut rng, 0.01)
                };
                let dw = warm.evaluate(app, &probe, &[]);
                let dc = cold.evaluate(app, &probe, &[]);
                total += 1;
                if dw != dc {
                    divergent += 1;
                }
                if i == 7 {
                    // Detections are non-negotiable under either discipline.
                    prop_assert_eq!(dw, WarningDecision::SuspectInterference);
                    prop_assert_eq!(dc, WarningDecision::SuspectInterference);
                }
            }
        }
        // Documented bound: borderline points may flip, but at most 5% of
        // the stream (observed: 0 for separated operating points).
        prop_assert!(
            divergent * 20 <= total,
            "warm/cold decisions diverged on {}/{} evaluations",
            divergent,
            total
        );
        // Both disciplines performed one refit per batch (plus the seed
        // fit); the warm system actually exercised the warm path.
        let (warm_cold_fits, warm_warm_fits) = warm.refit_counts();
        let (cold_cold_fits, cold_warm_fits) = cold.refit_counts();
        prop_assert!(warm_warm_fits > 0, "warm system never warm-started");
        prop_assert_eq!(cold_warm_fits, 0);
        prop_assert_eq!(
            warm_cold_fits + warm_warm_fits,
            cold_cold_fits
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Refits fanned over the worker pool are **exactly** equivalent to the
    /// serial per-app refresh loop: same decisions on every probe and the
    /// same refit accounting, over randomized multi-app repositories.  This
    /// is a stronger contract than the warm-vs-cold bound above — the
    /// pooled sweep runs the *same* fits, merely on other threads.
    #[test]
    fn pooled_refresh_sweep_matches_serial_refresh_exactly(
        seed in 0u64..4096,
        app_count in 2usize..6,
        rounds in 2usize..6,
        workers in 1usize..4,
    ) {
        let apps: Vec<AppId> = (0..app_count as u64).map(AppId).collect();
        let pool = WorkerPool::new(workers);
        let mut rng = StdRng::seed_from_u64(seed);
        let offset = rng.gen_range(0.0..0.5);

        let mut repo = BehaviorRepository::new();
        let mut serial = WarningSystem::new(WarningConfig::default());
        let mut pooled = WarningSystem::new(WarningConfig::default());

        let mut epoch = 0u64;
        for round in 0..rounds {
            // Grow a staggered subset each round so some generations change
            // and others hit the O(1) short-circuit.
            for (i, &app) in apps.iter().enumerate() {
                if round == 0 || (round + i) % 2 == 0 {
                    for _ in 0..10 {
                        let c = center(app.0, (epoch % 2) as usize, offset);
                        repo.record_normal(app, jittered(&c, &mut rng, 0.01), epoch);
                        epoch += 1;
                    }
                }
            }
            serial.refresh_models(&apps, &repo, None);
            pooled.refresh_models(&apps, &repo, Some(&pool));
            prop_assert_eq!(
                serial.refit_counts(),
                pooled.refit_counts(),
                "round {}: refit accounting diverged",
                round
            );
            for &app in &apps {
                prop_assert_eq!(
                    serial.in_conservative_mode(app),
                    pooled.in_conservative_mode(app)
                );
                for mode in 0..2usize {
                    let c = center(app.0, mode, offset);
                    let inlier = jittered(&c, &mut rng, 0.01);
                    let outlier = far_outlier(&c, &mut rng);
                    prop_assert_eq!(
                        serial.evaluate(app, &inlier, &[]),
                        pooled.evaluate(app, &inlier, &[]),
                        "round {}: inlier decision diverged for {:?}",
                        round,
                        app
                    );
                    prop_assert_eq!(
                        serial.evaluate(app, &outlier, &[]),
                        pooled.evaluate(app, &outlier, &[]),
                        "round {}: outlier decision diverged for {:?}",
                        round,
                        app
                    );
                }
            }
        }
    }
}

/// The controller-facing regression: an unchanged repository generation
/// makes `refresh_model` free (no clone, no labelled extraction, no refit),
/// which is what lets the controller call it for every app every epoch.
#[test]
fn unchanged_generation_refresh_does_no_work_across_many_epochs() {
    let app = AppId(1);
    let mut rng = StdRng::seed_from_u64(7);
    let c = center(1, 0, 0.0);
    let mut repo = BehaviorRepository::new();
    for i in 0..20u64 {
        repo.record_normal(app, jittered(&c, &mut rng, 0.01), i);
    }
    let mut ws = WarningSystem::new(WarningConfig::default());
    for _ in 0..1000 {
        ws.refresh_model(app, &repo);
    }
    assert_eq!(
        ws.refit_counts(),
        (1, 0),
        "only the initial cold fit may run while the generation is unchanged"
    );
}
