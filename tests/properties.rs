//! Property-based tests on cross-crate invariants.
//!
//! These check the load-bearing assumptions DeepDive relies on, over randomly
//! generated demands and placements rather than hand-picked cases:
//!
//! * the hardware substrate always produces well-formed counters and bounded
//!   achieved fractions,
//! * normalized behaviours are invariant to pure load scaling (the paper's
//!   §4.1 normalization claim),
//! * adding a co-runner never *increases* a VM's achieved fraction, and
//! * the queueing model reacts monotonically to capacity.

use deepdive::metrics::BehaviorVector;
use hwsim::contention::{resolve_epoch, PlacedDemand};
use hwsim::{MachineSpec, ResourceDemand};
use proptest::prelude::*;
use queueing::events::{simulate_queue, Job};

/// Strategy generating a plausible, well-formed resource demand.
fn demand_strategy() -> impl Strategy<Value = ResourceDemand> {
    (
        1.0e8..4.0e9_f64, // instructions
        0.5..1.5_f64,     // base cpi
        1.0..512.0_f64,   // working set MiB
        1.0..60.0_f64,    // l1 mpki
        0.0..1.0_f64,     // locality
        0.0..40.0_f64,    // disk MiB
        0.0..80.0_f64,    // net MiB
    )
        .prop_map(|(instr, cpi, ws, l1, locality, disk, net)| {
            ResourceDemand::builder()
                .instructions(instr)
                .base_cpi(cpi)
                .working_set_mb(ws)
                .l1_mpki(l1)
                .llc_mpki_solo((l1 * 0.2).min(l1))
                .locality(locality)
                .parallelism(2.0)
                .disk_read_mb(disk)
                .net_tx_mb(net)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counters_are_well_formed_for_any_demand(demand in demand_strategy()) {
        let spec = MachineSpec::xeon_x5472();
        let out = resolve_epoch(&spec, &[PlacedDemand::new(1, demand, 2, 0)]);
        prop_assert!(out[0].counters.is_well_formed());
        prop_assert!(out[0].achieved_fraction > 0.0);
        prop_assert!(out[0].achieved_fraction <= 1.0);
        prop_assert!(BehaviorVector::from_counters(&out[0].counters).is_well_formed());
    }

    #[test]
    fn normalized_behaviour_is_load_invariant(demand in demand_strategy(), scale in 0.2..1.0_f64) {
        let spec = MachineSpec::xeon_x5472();
        // Only compare when neither run saturates the machine: saturation
        // legitimately changes per-instruction stalls.
        let full = resolve_epoch(&spec, &[PlacedDemand::new(1, demand.clone(), 2, 0)]);
        let scaled = resolve_epoch(&spec, &[PlacedDemand::new(1, demand.scaled_by_load(scale), 2, 0)]);
        prop_assume!(full[0].achieved_fraction > 0.999 && scaled[0].achieved_fraction > 0.999);
        let a = BehaviorVector::from_counters(&full[0].counters);
        let b = BehaviorVector::from_counters(&scaled[0].counters);
        // The metrics are not mathematically identical across loads — a busier
        // VM queues slightly longer on the (uncontended) memory bus — but the
        // deviation stays within the warning system's 10%-of-mean tolerance,
        // which is the property DeepDive actually needs.
        prop_assert!(
            a.max_relative_deviation(&b) < 0.15,
            "normalized behaviour moved by {} under pure load scaling",
            a.max_relative_deviation(&b)
        );
    }

    #[test]
    fn co_runners_never_speed_a_vm_up(victim in demand_strategy(), aggressor in demand_strategy()) {
        let spec = MachineSpec::xeon_x5472();
        let solo = resolve_epoch(&spec, &[PlacedDemand::new(1, victim.clone(), 2, 0)]);
        let shared = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, victim, 2, 0),
                PlacedDemand::new(2, aggressor, 2, 0),
            ],
        );
        prop_assert!(shared[0].achieved_fraction <= solo[0].achieved_fraction + 1e-9);
        prop_assert!(shared[0].counters.inst_retired <= solo[0].counters.inst_retired + 1e-3);
    }

    #[test]
    fn more_servers_never_increase_mean_reaction(
        njobs in 1usize..120,
        gap in 10.0..600.0_f64,
        service in 60.0..600.0_f64,
    ) {
        let jobs: Vec<Job> = (0..njobs)
            .map(|i| Job { arrival_s: i as f64 * gap, service_s: service })
            .collect();
        let few = simulate_queue(&jobs, 2);
        let many = simulate_queue(&jobs, 8);
        prop_assert!(many.mean_reaction_s() <= few.mean_reaction_s() + 1e-9);
        // Work conservation: the same total busy time either way.
        prop_assert!((many.total_busy_s() - few.total_busy_s()).abs() < 1e-6);
    }
}

#[test]
fn behaviour_of_a_vm_is_reproducible_across_identical_runs() {
    // Determinism end to end: identical seeds produce identical counters.
    let spec = MachineSpec::xeon_x5472();
    let demand = ResourceDemand::builder()
        .instructions(2.0e9)
        .working_set_mb(64.0)
        .l1_mpki(30.0)
        .llc_mpki_solo(4.0)
        .parallelism(2.0)
        .build();
    let a = resolve_epoch(&spec, &[PlacedDemand::new(1, demand.clone(), 2, 0)]);
    let b = resolve_epoch(&spec, &[PlacedDemand::new(1, demand, 2, 0)]);
    assert_eq!(a[0].counters, b[0].counters);
}
