//! Chaos suite: randomized fault + churn schedules through every engine.
//!
//! The fault plane's whole contract is that machine crashes, evacuations,
//! retries and repairs are *simulation inputs*, not sources of
//! nondeterminism or corruption.  These properties drive randomized
//! fault schedules against randomized session churn and assert, for every
//! schedule:
//!
//! * **Invariants hold after every epoch** — no VM resident on two
//!   machines or lost, id→index maps consistent, capacity accounting
//!   exact, parked VMs not resident, crashed machines empty
//!   ([`DatacenterService::audit`]).
//! * **Execution modes are bit-identical** — Serial, Sharded and Pooled
//!   stepping produce byte-identical report streams, stats, retry queues
//!   and final placements under the same fault schedule.
//! * **A disabled plane is inert** — attaching a fault plane whose rates
//!   are all zero reproduces the plane-less service trajectory byte for
//!   byte (the fault layer costs nothing when unused).

use cloudsim::faults::{FaultConfig, FaultPlane, Topology};
use cloudsim::service::{DatacenterService, ServiceConfig, ServiceStats};
use cloudsim::{ExecutionMode, VmEpochReport};
use proptest::prelude::*;

/// One run: build the service, attach the plane, step `epochs` epochs
/// auditing after each, and return the full trajectory.
fn run_chaos(
    mode: ExecutionMode,
    machines: usize,
    cluster_seed: u64,
    trace_seed: u64,
    plane: Option<FaultPlane>,
    epochs: u64,
) -> (Vec<Vec<VmEpochReport>>, ServiceStats, usize) {
    let stream = traces::hotmail_sessions(25_000.0, 0.01, trace_seed);
    let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(machines, cluster_seed), stream);
    svc.engine_mut().set_mode(mode);
    if let Some(plane) = plane {
        svc.set_fault_plane(plane);
    }
    let mut trajectory = Vec::new();
    for _ in 0..epochs {
        trajectory.push(svc.step_epoch());
        let findings = svc.audit();
        assert_eq!(findings, Vec::<String>::new(), "invariants violated");
    }
    (trajectory, svc.stats(), svc.parked())
}

/// Strategy over fault configurations from "calm" to "hostile" (rates far
/// above anything realistic, to force crash pile-ups and retry storms).
/// Correlated modes ride along: random topologies so small fleets span one
/// or several racks/domains, rack and domain outage streams, and planned
/// drains with short notice windows.  Rack/domain outages and maintenance
/// offline windows reuse the repair/outage window draws — the schedule
/// derivation is identical, only the KIND tag differs.
fn fault_config_strategy() -> impl Strategy<Value = FaultConfig> {
    let base = (
        0.0..0.05_f64, // machine crash rate per epoch
        1..6_u64,      // repair window min
        0..12_u64,     // repair window extra
        0.0..0.5_f64,  // migration failure rate
        0.0..0.02_f64, // sandbox outage rate
        1..4_u64,      // outage window min
        0..8_u64,      // outage window extra
    );
    let correlated = (
        1..4_usize,    // machines per rack
        1..3_usize,    // racks per power domain
        0.0..0.02_f64, // rack outage rate per epoch
        0.0..0.01_f64, // domain outage rate per epoch
        0.0..0.06_f64, // drain start rate per epoch
        1..4_u64,      // drain notice window
    );
    (base, correlated).prop_map(
        |(
            (crash, repair_min, repair_extra, migration, outage, outage_min, outage_extra),
            (machines_per_rack, racks_per_domain, rack, domain, drain, notice),
        )| {
            FaultConfig {
                machine_crash_per_epoch: crash,
                repair_epochs: (repair_min, repair_min + repair_extra),
                migration_failure: migration,
                sandbox_outage_per_epoch: outage,
                outage_epochs: (outage_min, outage_min + outage_extra),
                topology: Topology::new(machines_per_rack, racks_per_domain),
                rack_outage_per_epoch: rack,
                rack_outage_epochs: (repair_min, repair_min + repair_extra),
                domain_outage_per_epoch: domain,
                domain_outage_epochs: (outage_min, outage_min + outage_extra),
                machine_drain_per_epoch: drain,
                drain_notice_epochs: notice,
                maintenance_epochs: (repair_min, repair_min + repair_extra),
            }
        },
    )
}

proptest! {
    // Each case steps three full service runs; keep the count modest so
    // the suite stays inside the tier-1 budget.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serial, Sharded and Pooled stepping agree byte for byte on the
    /// entire trajectory — reports, stats, retry queue depth — under the
    /// same randomized fault + churn schedule, and every epoch of every
    /// mode passes the invariant audit.
    #[test]
    fn every_execution_mode_survives_chaos_bit_identically(
        config in fault_config_strategy(),
        fault_seed in 0..u64::MAX,
        cluster_seed in 0..1_000_u64,
        trace_seed in 0..1_000_u64,
        machines in 3..8_usize,
    ) {
        let plane = Some(FaultPlane::new(fault_seed, config));
        let epochs = 120;
        let serial = run_chaos(
            ExecutionMode::Serial, machines, cluster_seed, trace_seed, plane, epochs,
        );
        let sharded = run_chaos(
            ExecutionMode::Sharded { threads: 3 }, machines, cluster_seed, trace_seed, plane, epochs,
        );
        let pooled = run_chaos(
            ExecutionMode::Pooled { threads: 2 }, machines, cluster_seed, trace_seed, plane, epochs,
        );
        prop_assert_eq!(&serial, &sharded, "Serial and Sharded diverged");
        prop_assert_eq!(&serial, &pooled, "Serial and Pooled diverged");
        // Accounting sanity: every admitted VM is somewhere — departed,
        // resident, parked, or abandoned (an abandoned evacuee was admitted
        // once; its departure never fires).
        let (trajectory, stats, parked) = serial;
        let resident = trajectory.last().map_or(0, |r| r.len()) as u64;
        prop_assert!(stats.arrivals >= stats.departures);
        prop_assert!(
            stats.arrivals <= stats.departures + resident + parked as u64 + stats.abandonments,
            "VMs leaked: {:?} resident={} parked={}", stats, resident, parked
        );
    }

    /// A plane with all rates zero reproduces the plane-less trajectory
    /// byte for byte: the fault layer is free when disabled.
    #[test]
    fn a_disabled_plane_reproduces_the_fault_free_trajectory(
        fault_seed in 0..u64::MAX,
        cluster_seed in 0..1_000_u64,
        trace_seed in 0..1_000_u64,
        machines in 3..8_usize,
    ) {
        let disabled = Some(FaultPlane::new(fault_seed, FaultConfig::disabled()));
        let bare = run_chaos(
            ExecutionMode::Serial, machines, cluster_seed, trace_seed, None, 100,
        );
        let gated = run_chaos(
            ExecutionMode::Serial, machines, cluster_seed, trace_seed, disabled, 100,
        );
        prop_assert_eq!(bare, gated);
    }
}

/// One deterministic, always-run smoke of the nastiest corner: a fleet so
/// overloaded and crash-prone that evacuations, retries, abandonments and
/// repairs all fire — with the audit green throughout.
#[test]
fn a_hostile_schedule_exercises_every_fault_path() {
    let config = FaultConfig {
        machine_crash_per_epoch: 0.03,
        repair_epochs: (3, 10),
        migration_failure: 0.3,
        sandbox_outage_per_epoch: 0.01,
        outage_epochs: (4, 10),
        ..FaultConfig::disabled()
    };
    let (_, stats, _) = run_chaos(
        ExecutionMode::Serial,
        4,
        7,
        7,
        Some(FaultPlane::new(0xC0FFEE, config)),
        400,
    );
    assert!(
        stats.crashes > 0,
        "hostile schedule never crashed: {stats:?}"
    );
    assert!(stats.repairs > 0, "machines never repaired: {stats:?}");
    assert!(stats.down_machine_epochs > 0);
    assert!(
        stats.evacuations > 0 || stats.retries > 0,
        "crashes never displaced a VM: {stats:?}"
    );
}

/// The correlated corner of the hostile smoke: rack and domain outage
/// streams plus planned maintenance drains, all firing at once over a
/// two-rack/two-domain fleet.  Every mode agrees byte for byte, the audit
/// is green after every epoch, and both fault families leave fingerprints
/// in the stats (correlated windows fell machines; drains migrate VMs
/// gracefully during the notice window instead of crashing them).
#[test]
fn correlated_outages_and_drains_survive_chaos_bit_identically() {
    let config = FaultConfig {
        topology: Topology::new(2, 1),
        rack_outage_per_epoch: 0.01,
        rack_outage_epochs: (3, 8),
        domain_outage_per_epoch: 0.005,
        domain_outage_epochs: (4, 10),
        machine_drain_per_epoch: 0.02,
        drain_notice_epochs: 3,
        maintenance_epochs: (3, 8),
        migration_failure: 0.2,
        ..FaultConfig::disabled()
    };
    let plane = Some(FaultPlane::new(0xDECAF, config));
    let epochs = 400;
    let serial = run_chaos(ExecutionMode::Serial, 4, 11, 11, plane, epochs);
    let sharded = run_chaos(
        ExecutionMode::Sharded { threads: 3 },
        4,
        11,
        11,
        plane,
        epochs,
    );
    let pooled = run_chaos(
        ExecutionMode::Pooled { threads: 2 },
        4,
        11,
        11,
        plane,
        epochs,
    );
    assert_eq!(serial, sharded, "Serial and Sharded diverged");
    assert_eq!(serial, pooled, "Serial and Pooled diverged");

    let (_, stats, _) = serial;
    // Correlated windows: with no independent crash stream configured,
    // every hard down-edge here is a rack or domain outage.
    assert!(
        stats.crashes > 0,
        "correlated outages never felled a machine: {stats:?}"
    );
    assert!(stats.repairs > 0, "outage windows never ended: {stats:?}");
    // Drains: notice windows opened, machines went into maintenance, and
    // at least one resident VM was migrated off gracefully.
    assert!(stats.drains > 0, "no drain ever started: {stats:?}");
    assert!(
        stats.maintenance_windows > 0,
        "no drain reached its offline window: {stats:?}"
    );
    assert!(
        stats.drain_migrations > 0,
        "drains never migrated a resident VM: {stats:?}"
    );
    assert!(stats.draining_machine_epochs > 0);
}
