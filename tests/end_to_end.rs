//! Cross-crate integration tests: the full DeepDive pipeline driven through
//! the public API, from counter collection to detection, attribution and
//! migration.

use cloudsim::{
    Cluster, ClusterSeed, EpochEngine, ExecutionMode, PmId, Sandbox, Scheduler, Vm, VmId,
};
use deepdive::controller::{DeepDive, DeepDiveConfig, EpochEvent};
use deepdive::cpi_stack::Resource;
use hwsim::MachineSpec;
use workloads::{AppId, ClientEmulator, DataAnalytics, DataServing, MemoryStress, NetworkStress};

fn serving_vm(id: u64) -> Vm {
    Vm::new(
        VmId(id),
        Box::new(DataServing::with_defaults(AppId(1))),
        ClientEmulator::new(8_000.0, 4.0),
    )
}

fn run_epochs(
    cluster: &mut Cluster,
    deepdive: &mut DeepDive,
    engine: &EpochEngine,
    epochs: usize,
    load: f64,
) -> Vec<EpochEvent> {
    let mut events = Vec::new();
    for _ in 0..epochs {
        let reports = engine.step(cluster, |_| load);
        events.extend(deepdive.process_epoch(cluster, &reports));
    }
    events
}

#[test]
fn quiet_cloud_never_migrates_and_profiling_flattens() {
    let mut cluster = Cluster::homogeneous(3, MachineSpec::xeon_x5472(), Scheduler::default());
    for i in 0..3 {
        cluster.place_first_fit(serving_vm(i)).unwrap();
    }
    let mut deepdive = DeepDive::new(DeepDiveConfig::default(), Sandbox::xeon_pool(2));
    let engine = EpochEngine::serial(ClusterSeed::new(1));
    run_epochs(&mut cluster, &mut deepdive, &engine, 60, 0.7);
    let mid = deepdive.stats();
    run_epochs(&mut cluster, &mut deepdive, &engine, 60, 0.7);
    let end = deepdive.stats();

    assert_eq!(end.migrations, 0, "no interference, no migration");
    assert_eq!(end.interference_confirmed, 0);
    // Once normal behaviour is learned, the analyzer goes (nearly) silent —
    // the Fig. 12 plateau.
    assert!(
        end.analyzer_invocations - mid.analyzer_invocations <= 2,
        "analyzer kept firing on a quiet cloud: {end:?}"
    );
}

#[test]
fn cache_aggressor_is_detected_attributed_and_migrated_away() {
    let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
    cluster.place_on(PmId(0), serving_vm(1)).unwrap();
    let mut deepdive = DeepDive::new(
        DeepDiveConfig {
            synthetic_training_samples: 100,
            ..DeepDiveConfig::default()
        },
        Sandbox::xeon_pool(2),
    );
    let engine = EpochEngine::serial(ClusterSeed::new(2));
    run_epochs(&mut cluster, &mut deepdive, &engine, 50, 0.8);

    cluster
        .place_on(
            PmId(0),
            Vm::new(
                VmId(99),
                Box::new(MemoryStress::new(AppId(900), 512.0)),
                ClientEmulator::new(1.0, 1.0),
            ),
        )
        .unwrap();
    let events = run_epochs(&mut cluster, &mut deepdive, &engine, 40, 0.8);

    // Detection with a memory-subsystem culprit.
    let confirmed: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            EpochEvent::Analyzed { vm, result, .. }
                if *vm == VmId(1) && result.interference_confirmed =>
            {
                Some(result.clone())
            }
            _ => None,
        })
        .collect();
    assert!(
        !confirmed.is_empty(),
        "interference on the victim was never confirmed"
    );
    assert!(confirmed.iter().all(|r| matches!(
        r.culprit,
        Some(Resource::CacheMemory) | Some(Resource::MemoryBus)
    )));

    // Mitigation: the aggressor — not the victim — moves to the idle machine.
    assert_eq!(cluster.locate(VmId(99)), Some(PmId(1)));
    assert_eq!(cluster.locate(VmId(1)), Some(PmId(0)));
    assert!(deepdive.stats().migrations >= 1);

    // And once the aggressor is gone, the victim's performance recovers.
    let reports = engine.step(&mut cluster, |_| 0.8);
    let victim = reports.iter().find(|r| r.vm_id == VmId(1)).unwrap();
    assert!(
        victim.achieved_fraction > 0.9,
        "victim still degraded after mitigation"
    );
}

#[test]
fn network_interference_on_analytics_is_attributed_to_the_network() {
    let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
    cluster
        .place_on(
            PmId(0),
            Vm::new(
                VmId(1),
                Box::new(DataAnalytics::worker(AppId(3))),
                ClientEmulator::new(40.0, 400.0),
            ),
        )
        .unwrap();
    let mut deepdive = DeepDive::new(
        DeepDiveConfig {
            auto_migrate: false,
            analysis_cooldown: 5,
            ..DeepDiveConfig::default()
        },
        Sandbox::xeon_pool(2),
    );
    let engine = EpochEngine::serial(ClusterSeed::new(3));
    // Learn through several full map/shuffle/reduce cycles.
    run_epochs(&mut cluster, &mut deepdive, &engine, 60, 0.9);

    cluster
        .place_on(
            PmId(0),
            Vm::new(
                VmId(88),
                Box::new(NetworkStress::new(AppId(901), 700.0)),
                ClientEmulator::new(1.0, 1.0),
            ),
        )
        .unwrap();
    let events = run_epochs(&mut cluster, &mut deepdive, &engine, 36, 0.9);
    let culprits: Vec<Resource> = events
        .iter()
        .filter_map(|e| match e {
            EpochEvent::Analyzed { vm, result, .. }
                if *vm == VmId(1) && result.interference_confirmed =>
            {
                result.culprit
            }
            _ => None,
        })
        .collect();
    assert!(
        culprits.contains(&Resource::Network),
        "network was never blamed; culprits seen: {culprits:?}"
    );
}

#[test]
fn global_information_reduces_analyzer_invocations_for_shared_load_shifts() {
    // The same application on many VMs across machines; a simultaneous load
    // shift should not trigger per-VM analyses when global info is enabled.
    let build = |use_global: bool| {
        let mut cluster = Cluster::homogeneous(4, MachineSpec::xeon_x5472(), Scheduler::default());
        for i in 0..8 {
            cluster.place_first_fit(serving_vm(i)).unwrap();
        }
        let mut deepdive = DeepDive::new(
            DeepDiveConfig {
                use_global_information: use_global,
                auto_migrate: false,
                ..DeepDiveConfig::default()
            },
            Sandbox::xeon_pool(2),
        );
        let engine = EpochEngine::serial(ClusterSeed::new(4));
        run_epochs(&mut cluster, &mut deepdive, &engine, 40, 0.8);
        let before = deepdive.stats().analyzer_invocations;
        // Simultaneous, qualitative load shift on every instance.
        run_epochs(&mut cluster, &mut deepdive, &engine, 15, 0.25);
        deepdive.stats().analyzer_invocations - before
    };
    let with_global = build(true);
    let without_global = build(false);
    assert!(
        with_global <= without_global,
        "global information should never need more analyses ({with_global} vs {without_global})"
    );
}

#[test]
fn heterogeneous_fleet_detects_and_migrates_across_machine_models() {
    // A mixed rack (ROADMAP heterogeneous-fleet scenario): two Xeon X5472
    // machines extended with two Core i7/Nehalem nodes (the §4.4 port),
    // stepped sharded to exercise the parallel path end to end.
    //
    // The interference victim lives on an *i7* node: with the spec-aware
    // sandbox fleet there is no longer any reason to keep analyzed tenants
    // on hosts matching a hard-coded sandbox model (the pre-fleet versions
    // of this test did exactly that).  The analysis must replay in the i7
    // pool — no cross-model counter comparison — and detect the episode.
    let mut cluster = Cluster::heterogeneous(
        &[
            (MachineSpec::xeon_x5472(), 2),
            (MachineSpec::core_i7_nehalem(), 2),
        ],
        Scheduler::default(),
    );
    assert_eq!(
        cluster.machine(PmId(3)).unwrap().spec,
        MachineSpec::core_i7_nehalem(),
        "the i7 group must actually back the high-numbered machines"
    );
    // The analyzed tenant runs on i7 hardware; a second instance of the
    // same application runs on a Xeon node.
    cluster.place_on(PmId(2), serving_vm(1)).unwrap();
    cluster.place_on(PmId(0), serving_vm(2)).unwrap();

    // The fleet is derived from the cluster: one pool per machine model.
    let mut deepdive = DeepDive::for_cluster(DeepDiveConfig::default(), &cluster);
    assert_eq!(deepdive.sandbox_fleet().pools().len(), 2);
    let engine = EpochEngine::new(ClusterSeed::new(6), ExecutionMode::Sharded { threads: 2 });
    run_epochs(&mut cluster, &mut deepdive, &engine, 50, 0.8);

    // A cache/bus aggressor lands next to the i7-hosted victim.
    cluster
        .place_on(
            PmId(2),
            Vm::new(
                VmId(99),
                Box::new(MemoryStress::new(AppId(900), 512.0)),
                ClientEmulator::new(1.0, 1.0),
            ),
        )
        .unwrap();
    let events = run_epochs(&mut cluster, &mut deepdive, &engine, 40, 0.8);

    let stats = deepdive.stats();
    assert!(
        stats.interference_confirmed >= 1,
        "interference on the mixed fleet was never confirmed: {stats:?}"
    );
    assert_eq!(
        stats.sandbox_spec_fallbacks, 0,
        "an analysis compared counters across machine models: {stats:?}"
    );
    assert!(stats.migrations >= 1, "no mitigation happened: {stats:?}");
    // The aggressor left the victim's machine; the victims stayed put.
    assert_ne!(cluster.locate(VmId(99)), Some(PmId(2)));
    assert_eq!(cluster.locate(VmId(1)), Some(PmId(2)));
    assert_eq!(cluster.locate(VmId(2)), Some(PmId(0)));

    // Confirmed analyses of the afflicted i7 machine's tenants (victim or
    // aggressor — whichever the warning system escalated first) must also
    // attribute the episode to the memory subsystem: attribution runs on
    // the i7 pool's CPI stack, so a cross-model replay would skew it.
    // (The quantitative estimate-vs-ground-truth contract is pinned by
    // `tests/sandbox_fleet.rs`.)
    let confirmed_culprits: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            EpochEvent::Analyzed { vm, result, .. }
                if (*vm == VmId(1) || *vm == VmId(99)) && result.interference_confirmed =>
            {
                Some(result.culprit)
            }
            _ => None,
        })
        .collect();
    assert!(
        !confirmed_culprits.is_empty(),
        "no i7-hosted tenant was ever confirmed: {events:?}"
    );
    assert!(
        confirmed_culprits
            .iter()
            .all(|c| matches!(c, Some(Resource::CacheMemory) | Some(Resource::MemoryBus))),
        "memory aggressor blamed on the wrong resource: {confirmed_culprits:?}"
    );

    // Profiling time for the i7-hosted victim was booked against the i7
    // pool (the per-pool split the queueing experiments size farms from).
    let i7_name = MachineSpec::core_i7_nehalem().name;
    let i7_seconds: f64 = deepdive
        .profiling_seconds_by_pool()
        .filter(|(name, _)| *name == i7_name)
        .map(|(_, s)| s)
        .sum();
    assert!(i7_seconds > 0.0, "the i7 pool was never exercised");
}
