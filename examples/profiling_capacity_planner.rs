//! Profiling-farm capacity planner.
//!
//! "How many dedicated profiling servers do I need?" is the operational
//! question behind Figs. 13 and 14.  This example sweeps farm sizes for a
//! given VM-arrival rate and interference fraction, under both Poisson and
//! bursty lognormal arrivals, with and without global information, and
//! prints the smallest farm that keeps the mean reaction time under a target.
//!
//! Run with: `cargo run --release --example profiling_capacity_planner`

use queueing::scenarios::{reaction_time_curve, ScenarioConfig};
use traces::ArrivalModel;

const TARGET_REACTION_MINUTES: f64 = 5.0;
const INTERFERENCE_FRACTION: f64 = 0.2;

fn smallest_farm(model: ArrivalModel, popularity: Option<(usize, f64)>) -> Option<(usize, f64)> {
    for servers in 1..=32usize {
        let curve = reaction_time_curve(
            &ScenarioConfig {
                servers,
                arrival_model: model,
                popularity,
                ..Default::default()
            },
            &[INTERFERENCE_FRACTION],
        );
        if let Some(minutes) = curve[0].mean_reaction_minutes {
            if minutes <= TARGET_REACTION_MINUTES {
                return Some((servers, minutes));
            }
        }
    }
    None
}

fn main() {
    println!(
        "capacity planning for 1000 new VMs/day, {:.0}% undergoing interference, \
         target mean reaction time {TARGET_REACTION_MINUTES} min\n",
        INTERFERENCE_FRACTION * 100.0
    );
    type Scenario = (&'static str, ArrivalModel, Option<(usize, f64)>);
    let scenarios: [Scenario; 4] = [
        (
            "Poisson arrivals, local info only",
            ArrivalModel::Poisson,
            None,
        ),
        (
            "Poisson arrivals, with global info (Zipf α=1.5)",
            ArrivalModel::Poisson,
            Some((200, 1.5)),
        ),
        (
            "bursty lognormal arrivals, local info only",
            ArrivalModel::Lognormal { sigma: 2.0 },
            None,
        ),
        (
            "bursty lognormal arrivals, with global info (Zipf α=1.5)",
            ArrivalModel::Lognormal { sigma: 2.0 },
            Some((200, 1.5)),
        ),
    ];
    for (label, model, popularity) in scenarios {
        match smallest_farm(model, popularity) {
            Some((servers, minutes)) => println!(
                "{label:55} -> {servers} profiling server(s), mean reaction {minutes:.1} min"
            ),
            None => println!("{label:55} -> no farm size up to 32 servers meets the target"),
        }
    }
    println!(
        "\n(The paper reports that four servers suffice at a 20% interference rate, and that \
         global information roughly halves the requirement — compare the rows above.)"
    );
}
