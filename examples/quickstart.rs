//! Quickstart: detect and attribute interference between two co-located VMs.
//!
//! A Data Serving VM runs alone on a simulated Xeon server while DeepDive
//! learns its normal behaviour; a cache-thrashing aggressor then lands on the
//! same machine, DeepDive's warning system notices the unexplained deviation,
//! the analyzer confirms interference and pinpoints the culprit resource, and
//! the placement manager migrates the aggressor to an idle machine.
//!
//! Run with: `cargo run --example quickstart`

use cloudsim::{Cluster, ClusterSeed, EpochEngine, PmId, Scheduler, Vm, VmId};
use deepdive::controller::{DeepDive, DeepDiveConfig, EpochEvent};
use hwsim::MachineSpec;
use workloads::{AppId, ClientEmulator, DataServing, MemoryStress};

fn main() {
    // A tiny cloud: two Xeon X5472 machines, one Data Serving tenant.
    let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
    cluster
        .place_on(
            PmId(0),
            Vm::new(
                VmId(1),
                Box::new(DataServing::with_defaults(AppId(1))),
                ClientEmulator::new(8_000.0, 4.0),
            ),
        )
        .expect("machine 0 is empty");

    // The sandbox fleet is derived from the cluster: one pool per machine
    // model present (a single Xeon pool here).  On a mixed-hardware cluster
    // the same constructor adds a pool per model and routes each analysis
    // to the pool matching the victim's host.
    let mut deepdive = DeepDive::for_cluster(DeepDiveConfig::default(), &cluster);
    // One cluster seed drives every VM's demand stream; serial stepping is
    // plenty for two machines (Sharded mode would be bit-identical anyway).
    let engine = EpochEngine::serial(ClusterSeed::new(42));

    println!("== phase 1: learning normal behaviour (no interference) ==");
    for epoch in 0..50 {
        let reports = engine.step(&mut cluster, |_| 0.8);
        let events = deepdive.process_epoch(&mut cluster, &reports);
        for event in events {
            if let EpochEvent::Analyzed { vm, result, .. } = event {
                println!(
                    "epoch {epoch:3}: analyzer ran for {vm} -> degradation {:.1}% ({})",
                    result.degradation * 100.0,
                    if result.interference_confirmed {
                        "interference"
                    } else {
                        "normal"
                    }
                );
            }
        }
    }
    println!(
        "learned {} normal behaviours for the application; analyzer ran {} times\n",
        deepdive.repository().normal_count(AppId(1)),
        deepdive.stats().analyzer_invocations
    );

    println!("== phase 2: a cache-thrashing aggressor lands on the same machine ==");
    cluster
        .place_on(
            PmId(0),
            Vm::new(
                VmId(99),
                Box::new(MemoryStress::new(AppId(900), 512.0)),
                ClientEmulator::new(1.0, 1.0),
            ),
        )
        .expect("machine 0 still has two free cores");

    for epoch in 50..100 {
        let reports = engine.step(&mut cluster, |_| 0.8);
        let victim = reports.iter().find(|r| r.vm_id == VmId(1)).unwrap();
        let events = deepdive.process_epoch(&mut cluster, &reports);
        for event in events {
            match event {
                EpochEvent::Analyzed { vm, result, .. } if result.interference_confirmed => {
                    println!(
                        "epoch {epoch:3}: CONFIRMED interference on {vm}: degradation {:.1}%, culprit {:?} \
                         (victim latency this epoch: {:.1} ms)",
                        result.degradation * 100.0,
                        result.culprit.map(|r| r.label()),
                        victim.observation.latency_ms
                    );
                }
                EpochEvent::Migrated {
                    vm,
                    from,
                    to,
                    culprit,
                } => {
                    println!(
                        "epoch {epoch:3}: migrated {vm} from {from} to {to} to relieve the {} pressure",
                        culprit.label()
                    );
                }
                _ => {}
            }
        }
    }

    let stats = deepdive.stats();
    println!("\n== summary ==");
    println!("analyzer invocations : {}", stats.analyzer_invocations);
    println!("confirmed detections : {}", stats.interference_confirmed);
    println!("false alarms         : {}", stats.false_alarms);
    println!("migrations           : {}", stats.migrations);
    println!(
        "profiling time       : {:.1} min",
        stats.profiling_seconds / 60.0
    );
    println!(
        "aggressor now on     : {:?}",
        cluster.locate(VmId(99)).map(|pm| pm.to_string())
    );
}
