//! Placement advisor: use the synthetic benchmark to pick a destination for
//! an aggressive VM without migrating anything.
//!
//! The paper's placement manager (§4.3) never migrates speculatively: it
//! first mimics the candidate VM with a regression-trained synthetic
//! benchmark, runs the mimic on every candidate machine next to that
//! machine's existing tenants, and only then migrates to the machine where
//! interference did not reappear.  This example walks through exactly that
//! decision for a memory-hungry VM and three candidate machines.
//!
//! Run with: `cargo run --release --example placement_advisor`

use deepdive::metrics::BehaviorVector;
use deepdive::placement::{CandidateMachine, PlacementManager};
use deepdive::synthetic::SyntheticBenchmark;
use hwsim::contention::{resolve_epoch, PlacedDemand};
use hwsim::MachineSpec;
use rand::SeedableRng;
use workloads::{AppId, DataAnalytics, DataServing, MemoryStress, WebSearch, Workload};

fn main() {
    let spec = MachineSpec::xeon_x5472();
    println!("training the synthetic benchmark for {} ...", spec.name);
    let benchmark = SyntheticBenchmark::train(spec.clone(), 250, 7);
    println!("done (training MSE {:.3e})\n", benchmark.training_error());

    // The VM we need to place: a memory-stress-like tenant.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut aggressor = MemoryStress::new(AppId(900), 256.0);
    let aggressor_demand = aggressor.next_demand(1.0, &mut rng);
    let solo = resolve_epoch(
        &spec,
        &[PlacedDemand::new(0, aggressor_demand.clone(), 2, 0)],
    );
    let behavior = BehaviorVector::from_counters(&solo[0].counters);
    let inputs = benchmark.mimic(&behavior, aggressor_demand.instructions);
    println!("synthetic clone inputs mimicking the VM: {inputs:#?}\n");

    // Three candidate machines, each already hosting one cloud workload.
    let mut residents: Vec<(&str, Box<dyn Workload>)> = vec![
        (
            "candidate A (Data Serving)",
            Box::new(DataServing::with_defaults(AppId(1))),
        ),
        (
            "candidate B (Web Search)",
            Box::new(WebSearch::with_defaults(AppId(2))),
        ),
        (
            "candidate C (Data Analytics)",
            Box::new(DataAnalytics::worker(AppId(3))),
        ),
    ];
    let manager = PlacementManager::new(1.0);
    let clone_demand = inputs.demand();
    println!("predicted interference if the VM moved to each candidate:");
    let mut best: Option<(&str, f64)> = None;
    for (i, (name, workload)) in residents.iter_mut().enumerate() {
        let resident_demand = workload.next_demand(0.9, &mut rng);
        // Every candidate carries its own machine model; on a mixed fleet
        // the manager would predict against each destination's actual spec.
        let candidate = CandidateMachine {
            pm_id: cloudsim::PmId(10 + i as u64),
            spec: spec.clone(),
            resident_demands: vec![resident_demand],
            free_cores: 6,
        };
        let predicted = manager.predict_on_candidate(&clone_demand, 2, &candidate);
        println!(
            "  {name:32} -> {:.1}% worst-case slowdown",
            predicted * 100.0
        );
        if best.map(|(_, b)| predicted < b).unwrap_or(true) {
            best = Some((name, predicted));
        }
    }
    let (winner, predicted) = best.expect("three candidates evaluated");
    println!(
        "\nrecommendation: migrate to {winner} (predicted interference {:.1}%), \
         without ever test-migrating the real VM",
        predicted * 100.0
    );
}
