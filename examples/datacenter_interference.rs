//! A trace-driven datacenter run: diurnal load, episodic interference, and
//! DeepDive managing it end to end.
//!
//! A mixed fleet — three Xeon X5472 machines plus two Core i7/Nehalem nodes
//! (the paper's §4.4 port) — hosts Data Serving, Web Search and Data
//! Analytics VMs.  Client load follows a HotMail-style diurnal trace;
//! EC2-style interference episodes inject a memory-stress aggressor next to
//! a tenant, alternating between the Xeon-hosted Data Serving VM and the
//! i7-hosted Data Analytics worker.  DeepDive's spec-aware sandbox fleet
//! (one pool per machine model, derived from the cluster) routes each
//! analysis to the pool matching the victim's host, so both targets are
//! analyzed without cross-model counter bias; the run ends with a report of
//! detections, false alarms, migrations and the per-pool profiling
//! overhead.  Epochs are stepped by an `EpochEngine` honouring the
//! `CLOUDSIM_THREADS` knob (serial and sharded runs print identical
//! numbers).
//!
//! Run with: `cargo run --release --example datacenter_interference`

use cloudsim::{Cluster, ClusterSeed, EpochEngine, PmId, Scheduler, Vm, VmId};
use deepdive::controller::{DeepDive, DeepDiveConfig, EpochEvent};
use hwsim::MachineSpec;
use traces::{InterferenceSchedule, LoadTrace};
use workloads::{AppId, ClientEmulator, DataAnalytics, DataServing, MemoryStress, WebSearch};

const EPOCHS_PER_HOUR: usize = 4;

fn main() {
    // Three Xeon machines (pm-0..2) extended with two Core i7 nodes (pm-3,
    // pm-4): one datacenter generation does not retire when the next lands.
    let mut cluster = Cluster::heterogeneous(
        &[
            (MachineSpec::xeon_x5472(), 3),
            (MachineSpec::core_i7_nehalem(), 2),
        ],
        Scheduler::default(),
    );
    // Tenants: a key-value store, a search node and two analytics workers
    // (the analytics pair lands on the i7 nodes).  The sandbox fleet below
    // is derived from this cluster — one Xeon pool and one i7 pool — so
    // interference episodes can target tenants on either machine model and
    // every analysis replays on hardware matching the victim's host.
    cluster
        .place_on(
            PmId(0),
            Vm::new(
                VmId(1),
                Box::new(DataServing::with_defaults(AppId(1))),
                ClientEmulator::new(8_000.0, 4.0),
            ),
        )
        .unwrap();
    cluster
        .place_on(
            PmId(1),
            Vm::new(
                VmId(2),
                Box::new(WebSearch::with_defaults(AppId(2))),
                ClientEmulator::new(1_200.0, 25.0),
            ),
        )
        .unwrap();
    cluster
        .place_on(
            PmId(3),
            Vm::new(
                VmId(3),
                Box::new(DataAnalytics::worker(AppId(3))),
                ClientEmulator::new(40.0, 400.0),
            ),
        )
        .unwrap();
    cluster
        .place_on(
            PmId(4),
            Vm::new(
                VmId(4),
                Box::new(DataAnalytics::worker(AppId(3))),
                ClientEmulator::new(40.0, 400.0),
            ),
        )
        .unwrap();

    let trace = LoadTrace::diurnal(3, 0.3, 0.9, 7);
    let schedule = InterferenceSchedule::generate(3, 2, 2 * 3_600, 4 * 3_600, 11);
    println!(
        "three-day run on a {}-machine mixed Xeon+i7 fleet, {} interference episodes scheduled, \
         {:.0}% of the time under interference",
        cluster.machines().len(),
        schedule.episodes.len(),
        schedule.coverage() * 100.0
    );

    let config = DeepDiveConfig {
        analysis_window: 4,
        analysis_cooldown: 4,
        ..DeepDiveConfig::default()
    };
    // One sandbox pool per machine model in the cluster, selected by each
    // victim's host spec at analysis time.
    let mut deepdive = DeepDive::for_cluster(config, &cluster);
    println!(
        "sandbox fleet: {} pools ({})",
        deepdive.sandbox_fleet().pools().len(),
        deepdive
            .sandbox_fleet()
            .pools()
            .iter()
            .map(|p| p.spec.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    // CLOUDSIM_THREADS picks the execution mode; results are bit-identical
    // across serial and any shard count.
    let engine = EpochEngine::from_env(ClusterSeed::new(3));

    let mut aggressor_placed = false;
    let mut episodes_seen = 0usize;
    for hour in 0..72usize {
        let t = hour as u64 * 3_600;
        let load = trace.load_at_hour(hour);
        let episode = schedule.active_at(t);
        if episode.is_some() && !aggressor_placed {
            // Episodes alternate targets: the Xeon-hosted Data Serving VM
            // and the i7-hosted Data Analytics worker — the fleet analyzes
            // both without cross-model bias.  The target may have been
            // migrated during a previous episode; chase its current home.
            let target = if episodes_seen.is_multiple_of(2) {
                VmId(1)
            } else {
                VmId(3)
            };
            let home = cluster.locate(target).unwrap();
            if cluster
                .place_on(
                    home,
                    Vm::new(
                        VmId(99),
                        Box::new(MemoryStress::new(AppId(900), 384.0)),
                        ClientEmulator::new(1.0, 1.0),
                    ),
                )
                .is_ok()
            {
                aggressor_placed = true;
                episodes_seen += 1;
                println!(
                    "hour {hour:2}: interference episode begins (aggressor lands on {home}, \
                     next to {target})"
                );
            }
        } else if episode.is_none() && aggressor_placed {
            cluster.remove_vm(VmId(99));
            aggressor_placed = false;
            println!("hour {hour:2}: interference episode ends (aggressor terminated)");
        }
        for _ in 0..EPOCHS_PER_HOUR {
            let reports = engine.step(&mut cluster, |_| load);
            for event in deepdive.process_epoch(&mut cluster, &reports) {
                match event {
                    EpochEvent::Analyzed { vm, result, .. } if result.interference_confirmed => {
                        println!(
                            "hour {hour:2}:   detected interference on {vm} (degradation {:.0}%, culprit {:?})",
                            result.degradation * 100.0,
                            result.culprit.map(|r| r.label())
                        );
                    }
                    EpochEvent::Migrated { vm, from, to, .. } => {
                        println!("hour {hour:2}:   migrated {vm} from {from} to {to}");
                    }
                    _ => {}
                }
            }
        }
    }

    let stats = deepdive.stats();
    println!("\n== three-day summary ==");
    println!("analyzer invocations : {}", stats.analyzer_invocations);
    println!("confirmed detections : {}", stats.interference_confirmed);
    println!("false alarms         : {}", stats.false_alarms);
    println!("global-info matches  : {}", stats.global_matches);
    println!("migrations           : {}", stats.migrations);
    println!(
        "profiling time       : {:.1} min over 3 days",
        stats.profiling_seconds / 60.0
    );
    for (pool, seconds) in deepdive.profiling_seconds_by_pool() {
        println!("  {:32} : {:.1} min", pool, seconds / 60.0);
    }
    println!(
        "cross-model fallbacks: {} (0 = every analysis replayed on its host's model)",
        stats.sandbox_spec_fallbacks
    );
    println!(
        "repository footprint : {} bytes across {} applications",
        deepdive.repository().total_footprint_bytes(),
        deepdive.repository().known_apps().len()
    );
}
