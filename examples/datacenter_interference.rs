//! A trace-driven datacenter run: diurnal load, episodic interference, and
//! DeepDive managing it end to end.
//!
//! Five Xeon machines host Data Serving, Web Search and Data Analytics VMs.
//! Client load follows a HotMail-style diurnal trace; EC2-style interference
//! episodes inject a memory-stress aggressor next to the Data Serving VM.
//! DeepDive detects each episode, attributes it, and migrates the aggressor;
//! the run ends with a report of detections, false alarms, migrations and
//! profiling overhead.
//!
//! Run with: `cargo run --release --example datacenter_interference`

use cloudsim::{Cluster, PmId, Sandbox, Scheduler, Vm, VmId};
use deepdive::controller::{DeepDive, DeepDiveConfig, EpochEvent};
use hwsim::MachineSpec;
use rand::SeedableRng;
use traces::{InterferenceSchedule, LoadTrace};
use workloads::{AppId, ClientEmulator, DataAnalytics, DataServing, MemoryStress, WebSearch};

const EPOCHS_PER_HOUR: usize = 4;

fn main() {
    let mut cluster = Cluster::homogeneous(5, MachineSpec::xeon_x5472(), Scheduler::default());
    // Tenants: a key-value store, a search node and two analytics workers.
    cluster
        .place_on(
            PmId(0),
            Vm::new(
                VmId(1),
                Box::new(DataServing::with_defaults(AppId(1))),
                ClientEmulator::new(8_000.0, 4.0),
            ),
        )
        .unwrap();
    cluster
        .place_on(
            PmId(1),
            Vm::new(
                VmId(2),
                Box::new(WebSearch::with_defaults(AppId(2))),
                ClientEmulator::new(1_200.0, 25.0),
            ),
        )
        .unwrap();
    cluster
        .place_on(
            PmId(2),
            Vm::new(
                VmId(3),
                Box::new(DataAnalytics::worker(AppId(3))),
                ClientEmulator::new(40.0, 400.0),
            ),
        )
        .unwrap();
    cluster
        .place_on(
            PmId(2),
            Vm::new(
                VmId(4),
                Box::new(DataAnalytics::worker(AppId(3))),
                ClientEmulator::new(40.0, 400.0),
            ),
        )
        .unwrap();

    let trace = LoadTrace::diurnal(3, 0.3, 0.9, 7);
    let schedule = InterferenceSchedule::generate(3, 2, 2 * 3_600, 4 * 3_600, 11);
    println!(
        "three-day run, {} interference episodes scheduled, {:.0}% of the time under interference",
        schedule.episodes.len(),
        schedule.coverage() * 100.0
    );

    let config = DeepDiveConfig {
        analysis_window: 4,
        analysis_cooldown: 4,
        ..DeepDiveConfig::default()
    };
    let mut deepdive = DeepDive::new(config, Sandbox::xeon_pool(4));
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    let mut aggressor_placed = false;
    for hour in 0..72usize {
        let t = hour as u64 * 3_600;
        let load = trace.load_at_hour(hour);
        let episode = schedule.active_at(t);
        if episode.is_some() && !aggressor_placed {
            // The aggressor lands next to the Data Serving tenant.  It may have
            // been migrated elsewhere during a previous episode; start it fresh.
            let home = cluster.locate(VmId(1)).unwrap();
            if cluster
                .place_on(
                    home,
                    Vm::new(
                        VmId(99),
                        Box::new(MemoryStress::new(AppId(900), 384.0)),
                        ClientEmulator::new(1.0, 1.0),
                    ),
                )
                .is_ok()
            {
                aggressor_placed = true;
                println!("hour {hour:2}: interference episode begins (aggressor lands on {home})");
            }
        } else if episode.is_none() && aggressor_placed {
            cluster.remove_vm(VmId(99));
            aggressor_placed = false;
            println!("hour {hour:2}: interference episode ends (aggressor terminated)");
        }
        for _ in 0..EPOCHS_PER_HOUR {
            let reports = cluster.step_epoch(&|_| load, &mut rng);
            for event in deepdive.process_epoch(&mut cluster, &reports) {
                match event {
                    EpochEvent::Analyzed { vm, result, .. } if result.interference_confirmed => {
                        println!(
                            "hour {hour:2}:   detected interference on {vm} (degradation {:.0}%, culprit {:?})",
                            result.degradation * 100.0,
                            result.culprit.map(|r| r.label())
                        );
                    }
                    EpochEvent::Migrated { vm, from, to, .. } => {
                        println!("hour {hour:2}:   migrated {vm} from {from} to {to}");
                    }
                    _ => {}
                }
            }
        }
    }

    let stats = deepdive.stats();
    println!("\n== three-day summary ==");
    println!("analyzer invocations : {}", stats.analyzer_invocations);
    println!("confirmed detections : {}", stats.interference_confirmed);
    println!("false alarms         : {}", stats.false_alarms);
    println!("global-info matches  : {}", stats.global_matches);
    println!("migrations           : {}", stats.migrations);
    println!(
        "profiling time       : {:.1} min over 3 days",
        stats.profiling_seconds / 60.0
    );
    println!(
        "repository footprint : {} bytes across {} applications",
        deepdive.repository().total_footprint_bytes(),
        deepdive.repository().known_apps().len()
    );
}
