//! The three interfering workloads of §5.1.
//!
//! * [`MemoryStress`] — "inspired by the stress test introduced by Mars et
//!   al. [Bubble-Up]"; aggressively exercises the shared last-level cache and
//!   the memory controller.  Its single input is the desired working-set
//!   size, which the evaluation sweeps from 6 MB to 512 MB (§5.3).
//! * [`NetworkStress`] — `iperf`-style bidirectional UDP streams; the input
//!   is the desired throughput, swept from 50 to 700 Mbps.
//! * [`DiskStress`] — a file copier respecting a maximum transfer rate,
//!   swept from 1 to 10 MB/s.
//!
//! Each aggressor produces a *constant* demand (independent of the victim's
//! load), because in the paper the stress workloads run flat-out at their
//! configured intensity on a co-located VM.

use hwsim::ResourceDemand;
use rand::rngs::StdRng;

use crate::spec::{AppId, Workload, WorkloadKind};

/// Memory-subsystem aggressor (Bubble-Up-style stress kernel).
#[derive(Debug, Clone)]
pub struct MemoryStress {
    app_id: AppId,
    working_set_mb: f64,
}

impl MemoryStress {
    /// Creates the aggressor with the desired working-set size in MiB.
    ///
    /// # Panics
    /// Panics if the working set is not positive.
    pub fn new(app_id: AppId, working_set_mb: f64) -> Self {
        assert!(working_set_mb > 0.0, "working set must be positive");
        Self {
            app_id,
            working_set_mb,
        }
    }

    /// Working-set size in MiB.
    pub fn working_set_mb(&self) -> f64 {
        self.working_set_mb
    }
}

impl Workload for MemoryStress {
    fn name(&self) -> &str {
        "memory-stress"
    }

    fn app_id(&self) -> AppId {
        self.app_id
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::MemoryStress
    }

    fn next_demand(&mut self, _load: f64, _rng: &mut StdRng) -> ResourceDemand {
        // A pointer-chasing / streaming kernel: when the working set exceeds
        // the shared cache it misses on nearly every access even alone, and
        // its sheer access intensity evicts co-runners' lines.
        let cache_pressure = (self.working_set_mb / 128.0).min(1.0);
        ResourceDemand::builder()
            .instructions(2.5e9)
            .base_cpi(0.6)
            .mem_refs_per_instr(0.5)
            .l1_mpki(70.0)
            .llc_mpki_solo(3.0 + 45.0 * cache_pressure)
            .working_set_mb(self.working_set_mb)
            .locality(0.0)
            .branch_mpki(1.0)
            .parallelism(2.0)
            .build()
    }

    fn peak_request_rate(&self) -> f64 {
        1.0
    }

    fn demand_is_static_at(&self, _load: f64) -> bool {
        // Aggressors run flat-out at their configured intensity: the demand
        // ignores both the load and the RNG, so it is static at every load.
        true
    }
}

/// Network aggressor (`iperf` bidirectional UDP streams).
#[derive(Debug, Clone)]
pub struct NetworkStress {
    app_id: AppId,
    throughput_mbps: f64,
}

impl NetworkStress {
    /// Creates the aggressor with the desired throughput in **megabits** per
    /// second (matching the paper's 50–700 Mbps sweep).
    ///
    /// # Panics
    /// Panics if the throughput is not positive.
    pub fn new(app_id: AppId, throughput_mbps: f64) -> Self {
        assert!(throughput_mbps > 0.0, "throughput must be positive");
        Self {
            app_id,
            throughput_mbps,
        }
    }

    /// Configured throughput in megabits per second.
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_mbps
    }

    /// Configured throughput converted to MiB per second.
    pub fn throughput_mib_per_s(&self) -> f64 {
        self.throughput_mbps / 8.0
    }
}

impl Workload for NetworkStress {
    fn name(&self) -> &str {
        "network-stress"
    }

    fn app_id(&self) -> AppId {
        self.app_id
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::NetworkStress
    }

    fn next_demand(&mut self, _load: f64, _rng: &mut StdRng) -> ResourceDemand {
        let mib = self.throughput_mib_per_s();
        ResourceDemand::builder()
            .instructions(0.3e9)
            .base_cpi(0.8)
            .l1_mpki(8.0)
            .llc_mpki_solo(0.3)
            .working_set_mb(2.0)
            .parallelism(1.0)
            // Bidirectional streams: equal transmit and receive pressure.
            .net_tx_mb(mib)
            .net_rx_mb(mib)
            .build()
    }

    fn peak_request_rate(&self) -> f64 {
        1.0
    }

    fn demand_is_static_at(&self, _load: f64) -> bool {
        true
    }
}

/// Disk aggressor (rate-limited file copy).
#[derive(Debug, Clone)]
pub struct DiskStress {
    app_id: AppId,
    transfer_mb_per_s: f64,
}

impl DiskStress {
    /// Creates the aggressor with the maximum transfer rate in MiB/s
    /// (matching the paper's 1–10 MB/s sweep).
    ///
    /// # Panics
    /// Panics if the rate is not positive.
    pub fn new(app_id: AppId, transfer_mb_per_s: f64) -> Self {
        assert!(transfer_mb_per_s > 0.0, "transfer rate must be positive");
        Self {
            app_id,
            transfer_mb_per_s,
        }
    }

    /// Configured transfer rate in MiB/s.
    pub fn transfer_mb_per_s(&self) -> f64 {
        self.transfer_mb_per_s
    }
}

impl Workload for DiskStress {
    fn name(&self) -> &str {
        "disk-stress"
    }

    fn app_id(&self) -> AppId {
        self.app_id
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::DiskStress
    }

    fn next_demand(&mut self, _load: f64, _rng: &mut StdRng) -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(0.2e9)
            .base_cpi(0.8)
            .l1_mpki(10.0)
            .llc_mpki_solo(0.5)
            .working_set_mb(4.0)
            .parallelism(1.0)
            // A copy reads and writes the same volume.
            .disk_read_mb(self.transfer_mb_per_s)
            .disk_write_mb(self.transfer_mb_per_s)
            .disk_seq_fraction(1.0)
            .build()
    }

    fn peak_request_rate(&self) -> f64 {
        1.0
    }

    fn demand_is_static_at(&self, _load: f64) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn memory_stress_pressure_grows_with_working_set() {
        let mut small = MemoryStress::new(AppId(100), 6.0);
        let mut large = MemoryStress::new(AppId(100), 512.0);
        let mut r = rng();
        let d_small = small.next_demand(1.0, &mut r);
        let d_large = large.next_demand(1.0, &mut r);
        assert!(d_large.llc_mpki_solo > d_small.llc_mpki_solo);
        assert!(d_large.working_set_mb > d_small.working_set_mb);
        assert!(d_small.is_well_formed() && d_large.is_well_formed());
    }

    #[test]
    fn memory_stress_ignores_load_level() {
        let mut w = MemoryStress::new(AppId(100), 64.0);
        let mut r = rng();
        assert_eq!(w.next_demand(0.1, &mut r), w.next_demand(1.0, &mut r));
    }

    #[test]
    fn network_stress_converts_megabits_to_mib() {
        let w = NetworkStress::new(AppId(101), 700.0);
        assert!((w.throughput_mib_per_s() - 87.5).abs() < 1e-12);
        let mut r = rng();
        let d = w.clone().next_demand(1.0, &mut r);
        assert!((d.net_tx_mb - 87.5).abs() < 1e-12);
        assert!((d.net_rx_mb - 87.5).abs() < 1e-12);
    }

    #[test]
    fn network_stress_sweep_spans_paper_range() {
        let mut r = rng();
        let low = NetworkStress::new(AppId(101), 50.0).next_demand(1.0, &mut r);
        let high = NetworkStress::new(AppId(101), 700.0).next_demand(1.0, &mut r);
        assert!(high.net_total_mb() > 10.0 * low.net_total_mb());
    }

    #[test]
    fn disk_stress_reads_and_writes_the_configured_rate() {
        let mut w = DiskStress::new(AppId(102), 10.0);
        let mut r = rng();
        let d = w.next_demand(1.0, &mut r);
        assert_eq!(d.disk_read_mb, 10.0);
        assert_eq!(d.disk_write_mb, 10.0);
        assert!(d.is_well_formed());
    }

    #[test]
    fn kinds_identify_the_targeted_resource() {
        assert_eq!(
            MemoryStress::new(AppId(1), 8.0).kind(),
            WorkloadKind::MemoryStress
        );
        assert_eq!(
            NetworkStress::new(AppId(1), 50.0).kind(),
            WorkloadKind::NetworkStress
        );
        assert_eq!(
            DiskStress::new(AppId(1), 5.0).kind(),
            WorkloadKind::DiskStress
        );
    }

    #[test]
    #[should_panic(expected = "working set must be positive")]
    fn zero_working_set_is_rejected() {
        MemoryStress::new(AppId(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn zero_throughput_is_rejected() {
        NetworkStress::new(AppId(1), 0.0);
    }
}
