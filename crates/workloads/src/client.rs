//! Closed-loop client emulator.
//!
//! The paper's evaluation uses instrumented client emulators (YCSB for Data
//! Serving, Faban for Web Search, the Hadoop job driver for Data Analytics)
//! that "continuously report average performance, enabling us to compare the
//! client-reported degradations with those estimated by the analyzer"
//! (§5.3).  This module plays that role: it converts the fraction of the
//! offered work a VM actually completed (ground truth from `hwsim`) into the
//! throughput and latency a client would observe, and computes degradations
//! relative to a baseline.
//!
//! DeepDive itself never reads these numbers — they exist purely so the
//! benches can score DeepDive's estimates, exactly as in the paper.

use serde::{Deserialize, Serialize};

/// One epoch of client-side measurements for a VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientObservation {
    /// Requests (or tasks) per second the clients completed.
    pub throughput_rps: f64,
    /// Average request latency in milliseconds (or normalized task completion
    /// time for batch workloads).
    pub latency_ms: f64,
    /// Requests per second the clients offered.
    pub offered_rps: f64,
}

impl ClientObservation {
    /// Latency degradation of `self` relative to `baseline`, as a fraction
    /// (0.2 = 20% slower).  Negative values (faster than baseline) are
    /// clamped to zero.
    pub fn latency_degradation_vs(&self, baseline: &ClientObservation) -> f64 {
        if baseline.latency_ms <= 0.0 {
            return 0.0;
        }
        ((self.latency_ms - baseline.latency_ms) / baseline.latency_ms).max(0.0)
    }

    /// Throughput loss of `self` relative to `baseline`, as a fraction.
    pub fn throughput_loss_vs(&self, baseline: &ClientObservation) -> f64 {
        if baseline.throughput_rps <= 0.0 {
            return 0.0;
        }
        ((baseline.throughput_rps - self.throughput_rps) / baseline.throughput_rps).max(0.0)
    }
}

/// Client emulator for one VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientEmulator {
    /// Request rate the clients offer at load 1.0.
    pub peak_rps: f64,
    /// Service latency when the VM keeps up with the offered load, in ms.
    pub base_latency_ms: f64,
}

impl ClientEmulator {
    /// Creates an emulator for a service with the given peak request rate and
    /// uncontended latency.
    ///
    /// # Panics
    /// Panics if either parameter is not positive.
    pub fn new(peak_rps: f64, base_latency_ms: f64) -> Self {
        assert!(peak_rps > 0.0, "peak request rate must be positive");
        assert!(base_latency_ms > 0.0, "base latency must be positive");
        Self {
            peak_rps,
            base_latency_ms,
        }
    }

    /// Converts an epoch's offered load and achieved work fraction into the
    /// client-visible throughput and latency.
    ///
    /// When the VM completes everything (`achieved_fraction = 1`) clients see
    /// the base latency.  When the VM falls behind, the queue grows within
    /// the epoch and the average latency inflates inversely with the achieved
    /// fraction — the standard closed-loop saturation behaviour.
    pub fn observe(&self, offered_load: f64, achieved_fraction: f64) -> ClientObservation {
        let offered_load = offered_load.clamp(0.0, 1.0);
        let f = achieved_fraction.clamp(0.0, 1.0);
        let offered_rps = self.peak_rps * offered_load;
        let throughput_rps = offered_rps * f;
        let latency_ms = if f <= 1e-9 {
            // Nothing completed: report a large but finite latency.
            self.base_latency_ms * 1_000.0
        } else {
            self.base_latency_ms / f
        };
        ClientObservation {
            throughput_rps,
            latency_ms,
            offered_rps,
        }
    }

    /// The observation an unloaded, uncontended VM would produce at the given
    /// offered load — the baseline for degradation computations.
    pub fn baseline(&self, offered_load: f64) -> ClientObservation {
        self.observe(offered_load, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_speed_gives_base_latency_and_offered_throughput() {
        let c = ClientEmulator::new(1_000.0, 5.0);
        let obs = c.observe(0.8, 1.0);
        assert!((obs.throughput_rps - 800.0).abs() < 1e-9);
        assert!((obs.latency_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn falling_behind_inflates_latency_and_drops_throughput() {
        let c = ClientEmulator::new(1_000.0, 5.0);
        let degraded = c.observe(1.0, 0.5);
        let baseline = c.baseline(1.0);
        assert!((degraded.latency_ms - 10.0).abs() < 1e-9);
        assert!((degraded.throughput_rps - 500.0).abs() < 1e-9);
        assert!((degraded.latency_degradation_vs(&baseline) - 1.0).abs() < 1e-9);
        assert!((degraded.throughput_loss_vs(&baseline) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degradation_is_clamped_at_zero_when_faster_than_baseline() {
        let c = ClientEmulator::new(1_000.0, 5.0);
        let better = c.observe(1.0, 1.0);
        let worse = c.observe(1.0, 0.8);
        assert_eq!(better.latency_degradation_vs(&worse), 0.0);
        assert_eq!(better.throughput_loss_vs(&worse), 0.0);
    }

    #[test]
    fn zero_achieved_fraction_is_finite() {
        let c = ClientEmulator::new(1_000.0, 5.0);
        let obs = c.observe(1.0, 0.0);
        assert!(obs.latency_ms.is_finite());
        assert_eq!(obs.throughput_rps, 0.0);
    }

    #[test]
    fn twenty_percent_degradation_threshold_example() {
        // The paper labels performance crises as interference when the
        // client-reported degradation exceeds 20% (§5.1); verify the helper
        // expresses that naturally.
        let c = ClientEmulator::new(2_000.0, 8.0);
        let baseline = c.baseline(0.9);
        let slight = c.observe(0.9, 0.9);
        let severe = c.observe(0.9, 0.6);
        assert!(slight.latency_degradation_vs(&baseline) < 0.2);
        assert!(severe.latency_degradation_vs(&baseline) > 0.2);
    }

    #[test]
    #[should_panic(expected = "peak request rate must be positive")]
    fn zero_rate_is_rejected() {
        ClientEmulator::new(0.0, 1.0);
    }
}
