//! Web Search workload model (Nutch index serving driven by Faban, §5.1).
//!
//! The paper's Web Search workload is a single index-serving node holding a
//! 2-GB index, driven by a client emulator that varies word popularities and
//! the number of client sessions.  We model one query as a CPU-heavy scoring
//! pass over postings lists: popular words are served from the in-memory
//! cache of the index, unpopular words require reading postings from disk.
//! The word-popularity knob therefore shifts work between the CPU/cache and
//! the disk — the qualitative workload change DeepDive must *not* confuse
//! with interference.

use hwsim::ResourceDemand;
use rand::rngs::StdRng;

use crate::spec::{effective_load, AppId, Workload, WorkloadKind};

/// Instructions per search query (scoring, ranking, snippet generation).
const INSTRUCTIONS_PER_QUERY: f64 = 2_500_000.0;
/// Postings bytes read from disk for a query that misses the index cache, MiB.
const DISK_MB_PER_COLD_QUERY: f64 = 0.02;
/// Result page bytes per query, MiB.
const NET_MB_PER_QUERY: f64 = 1.0e-3;

/// Configuration knobs exposed by the Faban-style client.
#[derive(Debug, Clone, PartialEq)]
pub struct WebSearchConfig {
    /// Skew of word popularity in `[0, 1]`; high skew means most queries hit
    /// the in-memory portion of the index.
    pub word_popularity_skew: f64,
    /// Peak sustainable query rate (queries/second) of one VM.
    pub peak_qps: f64,
}

impl Default for WebSearchConfig {
    fn default() -> Self {
        Self {
            word_popularity_skew: 0.85,
            peak_qps: 1_200.0,
        }
    }
}

/// The Web Search (Nutch/Faban) workload model.
#[derive(Debug, Clone)]
pub struct WebSearch {
    app_id: AppId,
    config: WebSearchConfig,
}

impl WebSearch {
    /// Creates the workload with the given application identity and config.
    ///
    /// # Panics
    /// Panics if the popularity skew is outside `[0, 1]` or the peak rate is
    /// not positive.
    pub fn new(app_id: AppId, config: WebSearchConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.word_popularity_skew),
            "word popularity skew must be in [0, 1]"
        );
        assert!(config.peak_qps > 0.0, "peak query rate must be positive");
        Self { app_id, config }
    }

    /// Creates the workload with the default configuration.
    pub fn with_defaults(app_id: AppId) -> Self {
        Self::new(app_id, WebSearchConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &WebSearchConfig {
        &self.config
    }

    /// Fraction of queries whose postings are not resident in memory and must
    /// be read from disk.
    pub fn cold_query_fraction(&self) -> f64 {
        0.3 * (1.0 - self.config.word_popularity_skew) + 0.02
    }
}

impl Workload for WebSearch {
    fn name(&self) -> &str {
        "web-search"
    }

    fn app_id(&self) -> AppId {
        self.app_id
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::WebSearch
    }

    fn next_demand(&mut self, load: f64, rng: &mut StdRng) -> ResourceDemand {
        let load = effective_load(load, 0.02, rng);
        let qps = self.config.peak_qps * load;
        let cold = self.cold_query_fraction();
        ResourceDemand::builder()
            .instructions(qps * INSTRUCTIONS_PER_QUERY)
            .base_cpi(1.0)
            .mem_refs_per_instr(0.3)
            .l1_mpki(16.0 + 4.0 * (1.0 - self.config.word_popularity_skew))
            .llc_mpki_solo(0.8 + 0.6 * (1.0 - self.config.word_popularity_skew))
            .working_set_mb(6.0 + 6.0 * (1.0 - self.config.word_popularity_skew))
            .locality(0.75)
            .branch_mpki(7.0)
            .ifetch_mpki(0.8)
            .parallelism(2.0)
            .disk_read_mb(qps * cold * DISK_MB_PER_COLD_QUERY)
            .disk_seq_fraction(0.3)
            .net_tx_mb(qps * NET_MB_PER_QUERY * 0.8)
            .net_rx_mb(qps * NET_MB_PER_QUERY * 0.2)
            .build()
    }

    fn peak_request_rate(&self) -> f64 {
        self.config.peak_qps
    }

    fn demand_is_static_at(&self, load: f64) -> bool {
        // As for data serving: jitter scales the load, so an idle searcher
        // produces a config-constant demand every epoch.
        load <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn demand_scales_with_load_and_stays_well_formed() {
        let mut w = WebSearch::with_defaults(AppId(10));
        let mut r = rng();
        let half = w.next_demand(0.5, &mut r);
        let full = w.next_demand(1.0, &mut r);
        assert!(full.instructions > 1.8 * half.instructions);
        assert!(half.is_well_formed() && full.is_well_formed());
    }

    #[test]
    fn unpopular_words_shift_work_to_disk() {
        let hot = WebSearch::new(
            AppId(10),
            WebSearchConfig {
                word_popularity_skew: 1.0,
                ..Default::default()
            },
        );
        let cold = WebSearch::new(
            AppId(10),
            WebSearchConfig {
                word_popularity_skew: 0.0,
                ..Default::default()
            },
        );
        assert!(cold.cold_query_fraction() > hot.cold_query_fraction());
        let mut r = rng();
        let d_hot = hot.clone().next_demand(1.0, &mut r);
        let d_cold = cold.clone().next_demand(1.0, &mut r);
        assert!(d_cold.disk_read_mb > d_hot.disk_read_mb);
        assert!(d_cold.llc_mpki_solo > d_hot.llc_mpki_solo);
    }

    #[test]
    fn search_is_disk_sensitive_compared_to_data_serving() {
        // The evaluation pairs Web Search with the disk-stress aggressor; it
        // should indeed have meaningful disk reads at peak load.
        let mut w = WebSearch::with_defaults(AppId(10));
        let mut r = rng();
        let d = w.next_demand(1.0, &mut r);
        assert!(d.disk_read_mb > 0.1, "disk demand {}", d.disk_read_mb);
    }

    #[test]
    fn zero_load_produces_zero_work() {
        let mut w = WebSearch::with_defaults(AppId(10));
        let mut r = rng();
        let d = w.next_demand(0.0, &mut r);
        assert_eq!(d.instructions, 0.0);
        assert_eq!(d.disk_total_mb(), 0.0);
    }

    #[test]
    #[should_panic(expected = "word popularity")]
    fn invalid_skew_is_rejected() {
        WebSearch::new(
            AppId(1),
            WebSearchConfig {
                word_popularity_skew: -0.1,
                ..Default::default()
            },
        );
    }
}
