//! Data Serving workload model (Cassandra driven by YCSB clients, §5.1).
//!
//! The paper's Data Serving workload is a single Cassandra instance whose
//! clients vary both the key popularity and the read/write ratio.  We model
//! it as a latency-sensitive key-value server:
//!
//! * requests cost a fixed number of instructions with a memory-heavy,
//!   cache-friendly access pattern (the hot key set),
//! * key popularity controls the size of the hot set — flatter popularity
//!   means a larger working set and slightly more shared-cache misses,
//! * the write fraction adds commit-log style sequential disk writes, and
//! * every request ships a response over the network.
//!
//! These knobs generate the "different experimental settings" of Figure 4(a)
//! without changing what the workload fundamentally looks like to DeepDive.

use hwsim::ResourceDemand;
use rand::rngs::StdRng;

use crate::spec::{effective_load, AppId, Workload, WorkloadKind};

/// Instructions executed per key-value request.
const INSTRUCTIONS_PER_REQUEST: f64 = 400_000.0;
/// Response + replication bytes per request, in MiB.
const NET_MB_PER_REQUEST: f64 = 2.0e-3;
/// Commit-log bytes per write request, in MiB.
const DISK_MB_PER_WRITE: f64 = 4.0e-3;

/// Configuration knobs exposed by the YCSB-style client (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct DataServingConfig {
    /// Skew of the key popularity distribution in `[0, 1]`; 1.0 means a tiny
    /// hot set, 0.0 means uniformly popular keys (large working set).
    pub key_popularity_skew: f64,
    /// Fraction of requests that are writes in `[0, 1]`.
    pub write_fraction: f64,
    /// Peak sustainable request rate (requests/second) of one VM.
    pub peak_rps: f64,
}

impl Default for DataServingConfig {
    fn default() -> Self {
        Self {
            key_popularity_skew: 0.8,
            write_fraction: 0.05,
            peak_rps: 8_000.0,
        }
    }
}

/// The Data Serving (Cassandra/YCSB) workload model.
#[derive(Debug, Clone)]
pub struct DataServing {
    app_id: AppId,
    config: DataServingConfig,
}

impl DataServing {
    /// Creates the workload with the given application identity and config.
    ///
    /// # Panics
    /// Panics if a config fraction falls outside `[0, 1]` or the peak rate is
    /// not positive.
    pub fn new(app_id: AppId, config: DataServingConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.key_popularity_skew),
            "key popularity skew must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.write_fraction),
            "write fraction must be in [0, 1]"
        );
        assert!(config.peak_rps > 0.0, "peak request rate must be positive");
        Self { app_id, config }
    }

    /// Creates the workload with the default YCSB-like configuration.
    pub fn with_defaults(app_id: AppId) -> Self {
        Self::new(app_id, DataServingConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &DataServingConfig {
        &self.config
    }

    /// Working-set size implied by the key popularity: a highly skewed key
    /// distribution keeps a few MiB hot, a flat one touches tens of MiB.
    pub fn working_set_mb(&self) -> f64 {
        4.0 + (1.0 - self.config.key_popularity_skew) * 12.0
    }
}

impl Workload for DataServing {
    fn name(&self) -> &str {
        "data-serving"
    }

    fn app_id(&self) -> AppId {
        self.app_id
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::DataServing
    }

    fn next_demand(&mut self, load: f64, rng: &mut StdRng) -> ResourceDemand {
        let load = effective_load(load, 0.02, rng);
        let rps = self.config.peak_rps * load;
        let instructions = rps * INSTRUCTIONS_PER_REQUEST;
        let writes = rps * self.config.write_fraction;
        // Flatter key popularity also means slightly worse locality in the
        // shared cache (more distinct lines touched per request).
        let locality = 0.5 + 0.3 * self.config.key_popularity_skew;
        ResourceDemand::builder()
            .instructions(instructions)
            .base_cpi(0.9)
            .mem_refs_per_instr(0.35)
            .l1_mpki(22.0 + 6.0 * (1.0 - self.config.key_popularity_skew))
            .llc_mpki_solo(1.2 + 1.0 * (1.0 - self.config.key_popularity_skew))
            .working_set_mb(self.working_set_mb())
            .locality(locality)
            .branch_mpki(4.0)
            .ifetch_mpki(0.4)
            .parallelism(2.0)
            .disk_write_mb(writes * DISK_MB_PER_WRITE)
            .disk_seq_fraction(0.9)
            .net_tx_mb(rps * NET_MB_PER_REQUEST * 0.7)
            .net_rx_mb(rps * NET_MB_PER_REQUEST * 0.3)
            .build()
    }

    fn peak_request_rate(&self) -> f64 {
        self.config.peak_rps
    }

    fn demand_is_static_at(&self, load: f64) -> bool {
        // The jitter multiplies into the load, so at zero load every volume
        // term is exactly zero and the shape terms are config constants: the
        // demand is the same every epoch regardless of the RNG draws.
        load <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn demand_scales_with_load() {
        let mut w = DataServing::with_defaults(AppId(1));
        let mut r = rng();
        let low = w.next_demand(0.25, &mut r);
        let high = w.next_demand(1.0, &mut r);
        assert!(high.instructions > 3.0 * low.instructions);
        assert!(high.net_total_mb() > 3.0 * low.net_total_mb());
        // Per-instruction characteristics stay put (the normalization property).
        assert_eq!(low.l1_mpki, high.l1_mpki);
        assert_eq!(low.working_set_mb, high.working_set_mb);
    }

    #[test]
    fn key_popularity_controls_working_set_and_locality() {
        let skewed = DataServing::new(
            AppId(1),
            DataServingConfig {
                key_popularity_skew: 1.0,
                ..Default::default()
            },
        );
        let flat = DataServing::new(
            AppId(1),
            DataServingConfig {
                key_popularity_skew: 0.0,
                ..Default::default()
            },
        );
        assert!(flat.working_set_mb() > skewed.working_set_mb());
        let mut r = rng();
        let d_flat = flat.clone().next_demand(1.0, &mut r);
        let d_skew = skewed.clone().next_demand(1.0, &mut r);
        assert!(d_flat.llc_mpki_solo > d_skew.llc_mpki_solo);
        assert!(d_flat.locality < d_skew.locality);
    }

    #[test]
    fn write_fraction_adds_disk_traffic() {
        let read_only = DataServing::new(
            AppId(1),
            DataServingConfig {
                write_fraction: 0.0,
                ..Default::default()
            },
        );
        let write_heavy = DataServing::new(
            AppId(1),
            DataServingConfig {
                write_fraction: 0.5,
                ..Default::default()
            },
        );
        let mut r = rng();
        assert_eq!(
            read_only.clone().next_demand(1.0, &mut r).disk_total_mb(),
            0.0
        );
        assert!(write_heavy.clone().next_demand(1.0, &mut r).disk_total_mb() > 0.0);
    }

    #[test]
    fn demands_are_well_formed_across_load_range() {
        let mut w = DataServing::with_defaults(AppId(2));
        let mut r = rng();
        for load in [0.0, 0.1, 0.5, 0.9, 1.0, 1.5] {
            let d = w.next_demand(load, &mut r);
            assert!(d.is_well_formed(), "load {load} produced malformed demand");
        }
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn invalid_write_fraction_is_rejected() {
        DataServing::new(
            AppId(1),
            DataServingConfig {
                write_fraction: 1.5,
                ..Default::default()
            },
        );
    }
}
