//! Data Analytics workload model (Hadoop/Mahout Bayes classification, §5.1).
//!
//! The paper's Data Analytics workload runs a Mahout naive-Bayes
//! classification job over 35 GB of Wikipedia text on a nine-VM Hadoop
//! cluster.  What matters for DeepDive is the *phase structure*: worker VMs
//! alternate between
//!
//! * a **map** phase — CPU-heavy scanning of local input splits with disk
//!   reads,
//! * a **shuffle** phase — mappers push intermediate data to reducers; the
//!   `remote_fetch_fraction` knob controls how much of that data crosses the
//!   network (Figure 5's observation that network interference only shows up
//!   "when the mappers and reducers have to fetch data remotely"), and
//! * a **reduce** phase — CPU work plus output writes to disk.
//!
//! Each worker cycles deterministically through the three phases; the master
//! VM mostly coordinates (light CPU, light network).

use hwsim::ResourceDemand;
use rand::rngs::StdRng;

use crate::spec::{effective_load, AppId, Workload, WorkloadKind};

/// Role of a VM inside the Hadoop-style cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyticsRole {
    /// Worker VM running map/shuffle/reduce tasks.
    Worker,
    /// Master VM coordinating the job.
    Master,
}

/// Phase a worker is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyticsPhase {
    /// Scanning local splits (CPU + disk read).
    Map,
    /// Exchanging intermediate data (network).
    Shuffle,
    /// Aggregating and writing results (CPU + disk write).
    Reduce,
}

/// Configuration of the analytics job.
#[derive(Debug, Clone, PartialEq)]
pub struct DataAnalyticsConfig {
    /// Fraction of shuffle traffic that must be fetched over the network
    /// (vs. being node-local), in `[0, 1]`.
    pub remote_fetch_fraction: f64,
    /// Epochs spent in the map phase per cycle.
    pub map_epochs: usize,
    /// Epochs spent in the shuffle phase per cycle.
    pub shuffle_epochs: usize,
    /// Epochs spent in the reduce phase per cycle.
    pub reduce_epochs: usize,
    /// Nominal tasks per second at full load (used for throughput reporting).
    pub peak_tasks_per_second: f64,
}

impl Default for DataAnalyticsConfig {
    fn default() -> Self {
        Self {
            remote_fetch_fraction: 0.6,
            map_epochs: 6,
            shuffle_epochs: 3,
            reduce_epochs: 3,
            peak_tasks_per_second: 40.0,
        }
    }
}

/// The Data Analytics (Hadoop/Mahout) workload model for a single VM of the
/// cluster.
#[derive(Debug, Clone)]
pub struct DataAnalytics {
    app_id: AppId,
    role: AnalyticsRole,
    config: DataAnalyticsConfig,
    epoch_in_cycle: usize,
}

impl DataAnalytics {
    /// Creates a worker or master VM model of the analytics job.
    ///
    /// # Panics
    /// Panics if the remote-fetch fraction is outside `[0, 1]` or any phase
    /// length is zero.
    pub fn new(app_id: AppId, role: AnalyticsRole, config: DataAnalyticsConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.remote_fetch_fraction),
            "remote fetch fraction must be in [0, 1]"
        );
        assert!(
            config.map_epochs > 0 && config.shuffle_epochs > 0 && config.reduce_epochs > 0,
            "every phase needs at least one epoch"
        );
        assert!(
            config.peak_tasks_per_second > 0.0,
            "peak task rate must be positive"
        );
        Self {
            app_id,
            role,
            config,
            epoch_in_cycle: 0,
        }
    }

    /// Creates a worker with the default configuration.
    pub fn worker(app_id: AppId) -> Self {
        Self::new(
            app_id,
            AnalyticsRole::Worker,
            DataAnalyticsConfig::default(),
        )
    }

    /// Creates the master with the default configuration.
    pub fn master(app_id: AppId) -> Self {
        Self::new(
            app_id,
            AnalyticsRole::Master,
            DataAnalyticsConfig::default(),
        )
    }

    /// Phase the worker will execute on its next epoch.
    pub fn current_phase(&self) -> AnalyticsPhase {
        let c = &self.config;
        let cycle = c.map_epochs + c.shuffle_epochs + c.reduce_epochs;
        let pos = self.epoch_in_cycle % cycle;
        if pos < c.map_epochs {
            AnalyticsPhase::Map
        } else if pos < c.map_epochs + c.shuffle_epochs {
            AnalyticsPhase::Shuffle
        } else {
            AnalyticsPhase::Reduce
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DataAnalyticsConfig {
        &self.config
    }

    /// The VM's role.
    pub fn role(&self) -> AnalyticsRole {
        self.role
    }
}

impl Workload for DataAnalytics {
    fn name(&self) -> &str {
        match self.role {
            AnalyticsRole::Worker => "data-analytics-worker",
            AnalyticsRole::Master => "data-analytics-master",
        }
    }

    fn app_id(&self) -> AppId {
        self.app_id
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::DataAnalytics
    }

    fn next_demand(&mut self, load: f64, rng: &mut StdRng) -> ResourceDemand {
        let load = effective_load(load, 0.03, rng);
        if self.role == AnalyticsRole::Master {
            // The master provisions more memory/cores in the paper but does
            // light coordination work.
            return ResourceDemand::builder()
                .instructions(0.3e9 * load)
                .base_cpi(0.9)
                .working_set_mb(6.0)
                .l1_mpki(12.0)
                .llc_mpki_solo(0.5)
                .parallelism(2.0)
                .net_tx_mb(2.0 * load)
                .net_rx_mb(2.0 * load)
                .build();
        }

        let phase = self.current_phase();
        self.epoch_in_cycle = self.epoch_in_cycle.wrapping_add(1);
        let remote = self.config.remote_fetch_fraction;
        let demand = match phase {
            AnalyticsPhase::Map => ResourceDemand::builder()
                .instructions(3.5e9 * load)
                .base_cpi(0.85)
                .mem_refs_per_instr(0.32)
                .l1_mpki(20.0)
                .llc_mpki_solo(2.5)
                .working_set_mb(24.0)
                .locality(0.55)
                .branch_mpki(6.0)
                .parallelism(2.0)
                .disk_read_mb(30.0 * load)
                .disk_seq_fraction(0.9)
                .net_tx_mb(1.0 * load)
                .net_rx_mb(1.0 * load),
            AnalyticsPhase::Shuffle => ResourceDemand::builder()
                .instructions(1.0e9 * load)
                .base_cpi(0.9)
                .mem_refs_per_instr(0.3)
                .l1_mpki(14.0)
                .llc_mpki_solo(1.0)
                .working_set_mb(10.0)
                .locality(0.6)
                .parallelism(2.0)
                .net_tx_mb(45.0 * load * remote)
                .net_rx_mb(45.0 * load * remote)
                .disk_read_mb(8.0 * load * (1.0 - remote))
                .disk_seq_fraction(0.8),
            AnalyticsPhase::Reduce => ResourceDemand::builder()
                .instructions(2.5e9 * load)
                .base_cpi(0.9)
                .mem_refs_per_instr(0.3)
                .l1_mpki(18.0)
                .llc_mpki_solo(2.0)
                .working_set_mb(16.0)
                .locality(0.6)
                .parallelism(2.0)
                .disk_write_mb(20.0 * load)
                .disk_seq_fraction(0.95)
                .net_rx_mb(4.0 * load),
        };
        demand.build()
    }

    fn peak_request_rate(&self) -> f64 {
        self.config.peak_tasks_per_second
    }

    fn demand_is_static_at(&self, load: f64) -> bool {
        // The master is stateless and load-scaled, so it is static when
        // idle.  A worker is **never** static: `next_demand` advances
        // `epoch_in_cycle`, and the map/shuffle/reduce phase changes the
        // demand's shape terms even at zero load — skipping it would both
        // freeze the phase clock and replay the wrong phase.
        self.role == AnalyticsRole::Master && load <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn worker_cycles_through_phases_in_order() {
        let mut w = DataAnalytics::worker(AppId(5));
        let c = w.config().clone();
        let mut phases = Vec::new();
        let mut r = rng();
        for _ in 0..(c.map_epochs + c.shuffle_epochs + c.reduce_epochs) {
            phases.push(w.current_phase());
            w.next_demand(1.0, &mut r);
        }
        assert_eq!(phases[0], AnalyticsPhase::Map);
        assert_eq!(phases[c.map_epochs], AnalyticsPhase::Shuffle);
        assert_eq!(
            phases[c.map_epochs + c.shuffle_epochs],
            AnalyticsPhase::Reduce
        );
        // After a full cycle we are back at Map.
        assert_eq!(w.current_phase(), AnalyticsPhase::Map);
    }

    #[test]
    fn shuffle_phase_is_network_heavy_when_fetching_remotely() {
        let mut remote = DataAnalytics::new(
            AppId(5),
            AnalyticsRole::Worker,
            DataAnalyticsConfig {
                remote_fetch_fraction: 1.0,
                ..Default::default()
            },
        );
        let mut local = DataAnalytics::new(
            AppId(5),
            AnalyticsRole::Worker,
            DataAnalyticsConfig {
                remote_fetch_fraction: 0.0,
                ..Default::default()
            },
        );
        let mut r = rng();
        // Advance both into the shuffle phase.
        for _ in 0..remote.config().map_epochs {
            remote.next_demand(1.0, &mut r);
            local.next_demand(1.0, &mut r);
        }
        assert_eq!(remote.current_phase(), AnalyticsPhase::Shuffle);
        let d_remote = remote.next_demand(1.0, &mut r);
        let d_local = local.next_demand(1.0, &mut r);
        assert!(d_remote.net_total_mb() > 50.0);
        assert_eq!(d_local.net_total_mb(), 0.0);
    }

    #[test]
    fn map_reads_disk_and_reduce_writes_disk() {
        let mut w = DataAnalytics::worker(AppId(5));
        let mut r = rng();
        let map = w.next_demand(1.0, &mut r);
        assert!(map.disk_read_mb > 0.0 && map.disk_write_mb == 0.0);
        for _ in 0..(w.config().map_epochs - 1 + w.config().shuffle_epochs) {
            w.next_demand(1.0, &mut r);
        }
        assert_eq!(w.current_phase(), AnalyticsPhase::Reduce);
        let reduce = w.next_demand(1.0, &mut r);
        assert!(reduce.disk_write_mb > 0.0 && reduce.disk_read_mb == 0.0);
    }

    #[test]
    fn master_is_lightweight() {
        let mut m = DataAnalytics::master(AppId(5));
        let mut w = DataAnalytics::worker(AppId(5));
        let mut r = rng();
        let dm = m.next_demand(1.0, &mut r);
        let dw = w.next_demand(1.0, &mut r);
        assert!(dm.instructions < dw.instructions / 5.0);
        assert_eq!(dm.disk_total_mb(), 0.0);
    }

    #[test]
    fn demands_are_well_formed_in_every_phase() {
        let mut w = DataAnalytics::worker(AppId(5));
        let mut r = rng();
        for _ in 0..24 {
            assert!(w.next_demand(0.8, &mut r).is_well_formed());
        }
    }

    #[test]
    #[should_panic(expected = "remote fetch fraction")]
    fn invalid_remote_fraction_is_rejected() {
        DataAnalytics::new(
            AppId(1),
            AnalyticsRole::Worker,
            DataAnalyticsConfig {
                remote_fetch_fraction: 2.0,
                ..Default::default()
            },
        );
    }
}
