#![forbid(unsafe_code)]
//! # workloads — cloud and stress workload models
//!
//! The paper evaluates DeepDive with three CloudSuite workloads (§5.1):
//!
//! * **Data Serving** — one Cassandra key-value store instance driven by
//!   YCSB clients with varying key popularity and read/write ratio,
//! * **Web Search** — a Nutch index-serving node with a 2-GB index, driven
//!   by the Faban client emulator with varying word popularity and session
//!   counts, and
//! * **Data Analytics** — a nine-VM Hadoop/Mahout Bayes-classification job
//!   over 35 GB of Wikipedia data,
//!
//! plus three *interfering* workloads (§5.1): a memory-stress kernel in the
//! style of Bubble-Up, `iperf` bidirectional UDP streams, and a disk-stress
//! file copier, each with a tunable intensity.
//!
//! Neither CloudSuite nor the original client emulators can run inside this
//! reproduction, so each workload is modelled as a generator of per-epoch
//! [`hwsim::ResourceDemand`]s whose *normalized* counter signature is stable
//! across load intensities (the property DeepDive's warning system relies
//! on) while qualitative knobs (popularity, read/write mix, remote-fetch
//! fraction) move the signature slightly — giving the same clustering
//! structure as the paper's Figure 4.
//!
//! * [`spec`] — the [`spec::Workload`] trait and application identities.
//! * [`data_serving`], [`web_search`], [`data_analytics`] — the three cloud
//!   workloads.
//! * [`stress`] — the three tunable aggressors.
//! * [`client`] — closed-loop client emulator producing the client-visible
//!   throughput/latency ground truth used by the evaluation.

pub mod client;
pub mod data_analytics;
pub mod data_serving;
pub mod spec;
pub mod stress;
pub mod web_search;

pub use client::{ClientEmulator, ClientObservation};
pub use data_analytics::DataAnalytics;
pub use data_serving::DataServing;
pub use spec::{AppId, Workload, WorkloadKind};
pub use stress::{DiskStress, MemoryStress, NetworkStress};
pub use web_search::WebSearch;
