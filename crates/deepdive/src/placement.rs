//! The VM-placement manager (§4.3).
//!
//! Once the analyzer confirms interference and names a culprit resource, the
//! placement manager:
//!
//! 1. selects the VM that uses the culprit resource most aggressively on the
//!    affected machine (the paper's default mitigation policy),
//! 2. runs a synthetic clone of that VM on every candidate destination
//!    machine — *without* migrating anything — to predict how much
//!    interference the move would cause there, and
//! 3. recommends the destination with the least predicted interference, or
//!    nothing if every candidate would be worse than an operator-set limit.
//!
//! Candidate evaluation works on the candidates' most recent per-VM demand
//! snapshots: placing the clone's demand next to them and resolving one
//! epoch of contention is exactly "running the benchmark for a short time on
//! another machine (with other VMs present)".
//!
//! Each [`CandidateMachine`] carries its own [`MachineSpec`], so on a
//! heterogeneous cluster the clone is evaluated against every destination's
//! *actual* hardware model — a memory-bus hog predicts far worse on an
//! FSB-attached Xeon than on a QuickPath i7, and the manager sees that.

use cloudsim::{PmId, Topology, VmId};
use hwsim::contention::{resolve_epoch, PlacedDemand};
use hwsim::{CounterSnapshot, MachineSpec, ResourceDemand};
use serde::{Deserialize, Serialize};

use crate::cpi_stack::Resource;
use crate::metrics::BehaviorVector;
use crate::synthetic::SyntheticBenchmark;

/// A VM on the interference-afflicted machine, as seen by the placement
/// manager: its latest counters (for the aggressiveness ranking) and its
/// latest behaviour (for the synthetic clone).
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentVm {
    /// The VM.
    pub vm_id: VmId,
    /// Its most recent counter snapshot.
    pub counters: CounterSnapshot,
    /// Its most recent normalized behaviour.
    pub behavior: BehaviorVector,
    /// Its most recent intrinsic demand (used when the VM stays put and a
    /// clone is evaluated next to it).
    pub demand: ResourceDemand,
    /// vCPUs allocated to the VM.
    pub vcpus: usize,
}

/// A candidate destination machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateMachine {
    /// The machine.
    pub pm_id: PmId,
    /// The machine's hardware model — interference is predicted against the
    /// destination's own spec, not some fleet-wide constant.
    pub spec: MachineSpec,
    /// Latest demands of the VMs already hosted there.
    pub resident_demands: Vec<ResourceDemand>,
    /// Free cores available for the incoming VM.
    pub free_cores: usize,
}

/// Predicted outcome of migrating the aggressor to one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidatePrediction {
    /// The candidate machine.
    pub pm_id: PmId,
    /// Predicted interference on the destination: the largest fractional
    /// slowdown among the clone and the VMs already resident there.
    pub predicted_interference: f64,
}

/// The placement manager's recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementDecision {
    /// The VM selected for migration (most aggressive on the culprit).
    pub vm_to_migrate: VmId,
    /// The chosen destination, or `None` when every candidate would suffer
    /// more than the acceptable interference limit.
    pub destination: Option<PmId>,
    /// Predictions for every evaluated candidate (sorted by machine id).
    pub predictions: Vec<CandidatePrediction>,
}

/// The placement manager.
#[derive(Debug, Clone)]
pub struct PlacementManager {
    /// Maximum predicted interference the manager accepts at a destination.
    pub acceptable_interference: f64,
    /// Failure-domain spread preference: with `Some(topology)`, acceptable
    /// destinations in a *different* power domain than the afflicted
    /// machine win over same-domain ones (interference still breaks ties
    /// within each group).  `None` picks purely by predicted interference.
    pub spread: Option<Topology>,
}

impl PlacementManager {
    /// Creates a placement manager.  The manager is machine-model agnostic:
    /// every prediction resolves contention against the candidate machine's
    /// own [`MachineSpec`].
    ///
    /// # Panics
    /// Panics if the acceptable-interference limit is not a fraction in
    /// `(0, 1]`.
    pub fn new(acceptable_interference: f64) -> Self {
        assert!(
            acceptable_interference > 0.0 && acceptable_interference <= 1.0,
            "acceptable interference must be a fraction in (0, 1]"
        );
        Self {
            acceptable_interference,
            spread: None,
        }
    }

    /// Enables the failure-domain spread preference under `topology`.
    pub fn with_spread(mut self, topology: Topology) -> Self {
        self.spread = Some(topology);
        self
    }

    /// Ranks a VM's aggressiveness on a resource from its normalized
    /// behaviour.
    ///
    /// Normalizing by instructions retired matters here: when a shared
    /// resource saturates, every co-located VM ends up with roughly the same
    /// *absolute* throughput on that resource (they share it), so absolute
    /// counters cannot tell victim from culprit.  Per-instruction pressure
    /// can: the aggressor hammers the resource on every instruction it
    /// retires, the victim does not.
    pub fn aggressiveness(behavior: &BehaviorVector, resource: Resource) -> f64 {
        // Dimension indices follow `metrics::DIMENSION_NAMES`.
        match resource {
            Resource::Core => behavior.values[0],        // cpi
            Resource::CacheMemory => behavior.values[2], // llc_lines_in_pki
            Resource::MemoryBus => behavior.values[6],   // bus_outstanding_pki
            Resource::Disk => behavior.values[8],        // disk_stall_s_per_gi
            Resource::Network => behavior.values[9],     // net_stall_s_per_gi
        }
    }

    /// Selects the most aggressive VM on the culprit resource.
    ///
    /// # Panics
    /// Panics if `residents` is empty.
    pub fn select_aggressor(residents: &[ResidentVm], culprit: Resource) -> VmId {
        assert!(!residents.is_empty(), "no resident VMs to choose from");
        residents
            .iter()
            .max_by(|a, b| {
                Self::aggressiveness(&a.behavior, culprit)
                    .partial_cmp(&Self::aggressiveness(&b.behavior, culprit))
                    .expect("finite aggressiveness")
            })
            .map(|v| v.vm_id)
            .expect("non-empty residents")
    }

    /// Predicts the interference the aggressor's synthetic clone would cause
    /// on one candidate machine: place the clone next to the candidate's
    /// residents, resolve one epoch *on the candidate's own hardware model*,
    /// and report the worst fractional slowdown relative to each workload
    /// running uncontended there.
    pub fn predict_on_candidate(
        &self,
        clone_demand: &ResourceDemand,
        clone_vcpus: usize,
        candidate: &CandidateMachine,
    ) -> f64 {
        let spec = &candidate.spec;
        // Baselines: every demand resolved alone on an idle machine of the
        // candidate's model.
        let solo_fraction = |demand: &ResourceDemand, vcpus: usize| -> f64 {
            resolve_epoch(spec, &[PlacedDemand::new(0, demand.clone(), vcpus, 0)])[0]
                .achieved_fraction
        };

        let mut placements = Vec::with_capacity(candidate.resident_demands.len() + 1);
        let mut baselines = Vec::with_capacity(candidate.resident_demands.len() + 1);
        for (i, demand) in candidate.resident_demands.iter().enumerate() {
            placements.push(PlacedDemand::new(
                i as u64,
                demand.clone(),
                2,
                (i / 2) % spec.cache_groups().max(1),
            ));
            baselines.push(solo_fraction(demand, 2));
        }
        let clone_slot = placements.len();
        placements.push(PlacedDemand::new(
            u64::MAX,
            clone_demand.clone(),
            clone_vcpus,
            (clone_slot / 2) % spec.cache_groups().max(1),
        ));
        baselines.push(solo_fraction(clone_demand, clone_vcpus));

        let outcomes = resolve_epoch(spec, &placements);
        outcomes
            .iter()
            .zip(&baselines)
            .map(|(o, &solo)| {
                if solo <= 0.0 {
                    0.0
                } else {
                    ((solo - o.achieved_fraction) / solo).max(0.0)
                }
            })
            .fold(0.0, f64::max)
    }

    /// Full placement decision for a confirmed interference case.
    ///
    /// * `residents` — the VMs on the afflicted machine.
    /// * `culprit` — the resource the analyzer blamed.
    /// * `source` — the afflicted machine itself (the migration source;
    ///   only consulted by the spread preference).
    /// * `candidates` — possible destination machines (the afflicted machine
    ///   itself must not be among them).
    /// * `benchmark` — the trained synthetic benchmark for this server type.
    pub fn decide(
        &self,
        residents: &[ResidentVm],
        culprit: Resource,
        source: PmId,
        candidates: &[CandidateMachine],
        benchmark: &SyntheticBenchmark,
    ) -> PlacementDecision {
        let aggressor_id = Self::select_aggressor(residents, culprit);
        let aggressor = residents
            .iter()
            .find(|r| r.vm_id == aggressor_id)
            .expect("aggressor is a resident");

        // Build the synthetic clone that mimics the aggressor at its
        // *demanded* work rate. The counters' inst_retired is throttled by
        // the very contention that triggered this decision, so pinning the
        // clone to it would underestimate the load the VM brings to an
        // uncontended destination.
        let clone_inputs = benchmark.mimic(&aggressor.behavior, aggressor.demand.instructions);
        let clone_demand = clone_inputs.demand();

        let mut predictions: Vec<CandidatePrediction> = candidates
            .iter()
            .filter(|c| c.free_cores >= aggressor.vcpus)
            .map(|c| CandidatePrediction {
                pm_id: c.pm_id,
                predicted_interference: self.predict_on_candidate(
                    &clone_demand,
                    aggressor.vcpus,
                    c,
                ),
            })
            .collect();
        predictions.sort_by_key(|p| p.pm_id);

        let best_of = |preds: &mut dyn Iterator<Item = &CandidatePrediction>| {
            preds
                .min_by(|a, b| {
                    a.predicted_interference
                        .partial_cmp(&b.predicted_interference)
                        .expect("finite predictions")
                })
                .filter(|p| p.predicted_interference <= self.acceptable_interference)
                .map(|p| p.pm_id)
        };
        // With a spread topology, an acceptable destination outside the
        // source's power domain beats any same-domain one — the migration
        // doubles as a failure-domain spread move.  Fall back to the plain
        // minimum when no cross-domain candidate is acceptable.
        let destination = match &self.spread {
            Some(topology) => {
                let source_domain = topology.domain_of(source);
                best_of(
                    &mut predictions
                        .iter()
                        .filter(|p| topology.domain_of(p.pm_id) != source_domain),
                )
                .or_else(|| best_of(&mut predictions.iter()))
            }
            None => best_of(&mut predictions.iter()),
        };

        PlacementDecision {
            vm_to_migrate: aggressor_id,
            destination,
            predictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::ResourceDemand;
    use workloads::AppId;

    fn counters_with(llc: f64, net_stall: f64, disk_stall: f64) -> CounterSnapshot {
        CounterSnapshot {
            cpu_unhalted: 3.0e9,
            inst_retired: 2.0e9,
            l2_lines_in: llc,
            net_stall_seconds: net_stall,
            disk_stall_seconds: disk_stall,
            bus_tran_any: llc,
            ..CounterSnapshot::zero()
        }
    }

    fn quiet_demand() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(1.0e9)
            .working_set_mb(4.0)
            .l1_mpki(12.0)
            .llc_mpki_solo(0.5)
            .parallelism(2.0)
            .build()
    }

    fn busy_memory_demand() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.5e9)
            .working_set_mb(512.0)
            .l1_mpki(70.0)
            .llc_mpki_solo(45.0)
            .locality(0.0)
            .parallelism(2.0)
            .build()
    }

    fn resident(id: u64, counters: CounterSnapshot) -> ResidentVm {
        ResidentVm {
            vm_id: VmId(id),
            behavior: BehaviorVector::from_counters(&counters),
            counters,
            demand: quiet_demand(),
            vcpus: 2,
        }
    }

    fn manager() -> PlacementManager {
        PlacementManager::new(0.15)
    }

    fn xeon_candidate(
        id: u64,
        resident_demands: Vec<ResourceDemand>,
        free_cores: usize,
    ) -> CandidateMachine {
        CandidateMachine {
            pm_id: PmId(id),
            spec: MachineSpec::xeon_x5472(),
            resident_demands,
            free_cores,
        }
    }

    #[test]
    fn aggressor_selection_follows_the_culprit_resource() {
        let cache_hog = resident(1, counters_with(5.0e7, 0.0, 0.0));
        let net_hog = resident(2, counters_with(1.0e6, 0.6, 0.0));
        let disk_hog = resident(3, counters_with(1.0e6, 0.0, 0.7));
        let residents = vec![cache_hog, net_hog, disk_hog];
        assert_eq!(
            PlacementManager::select_aggressor(&residents, Resource::CacheMemory),
            VmId(1)
        );
        assert_eq!(
            PlacementManager::select_aggressor(&residents, Resource::Network),
            VmId(2)
        );
        assert_eq!(
            PlacementManager::select_aggressor(&residents, Resource::Disk),
            VmId(3)
        );
    }

    #[test]
    fn prediction_is_low_on_an_empty_machine_and_high_on_a_loaded_one() {
        let m = manager();
        let clone_demand = busy_memory_demand();
        let empty = xeon_candidate(1, vec![], 8);
        let loaded = xeon_candidate(2, vec![busy_memory_demand(), quiet_demand()], 4);
        let empty_pred = m.predict_on_candidate(&clone_demand, 2, &empty);
        let loaded_pred = m.predict_on_candidate(&clone_demand, 2, &loaded);
        assert!(empty_pred < 0.05, "empty machine prediction {empty_pred}");
        assert!(
            loaded_pred > empty_pred,
            "loaded {loaded_pred} vs empty {empty_pred}"
        );
    }

    #[test]
    fn prediction_respects_the_candidate_machine_model() {
        // The same memory-bus-hungry clone lands next to the same resident
        // on a Xeon (FSB) and an i7 (QuickPath) candidate.  The two machine
        // models must yield materially different predictions — on the Xeon
        // the *solo* baseline is already FSB-throttled, so the relative
        // extra slowdown is far smaller than on the i7, whose clean solo
        // baseline exposes the full cache/bus contention.  A spec-blind
        // manager would report the same number for both.
        let m = manager();
        let clone_demand = busy_memory_demand();
        let residents = vec![busy_memory_demand()];
        let xeon = xeon_candidate(1, residents.clone(), 6);
        let i7 = CandidateMachine {
            pm_id: PmId(2),
            spec: MachineSpec::core_i7_nehalem(),
            resident_demands: residents,
            free_cores: 6,
        };
        let on_xeon = m.predict_on_candidate(&clone_demand, 2, &xeon);
        let on_i7 = m.predict_on_candidate(&clone_demand, 2, &i7);
        assert!(
            (on_xeon - on_i7).abs() > 0.05,
            "spec-blind prediction: xeon {on_xeon} vs i7 {on_i7}"
        );
    }

    #[test]
    fn decision_prefers_the_least_interfering_destination() {
        let m = manager();
        let benchmark = SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 120, 3);
        // The aggressor is a cache hog; the victim is quiet.
        let spec = MachineSpec::xeon_x5472();
        let contended = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, quiet_demand(), 2, 0),
                PlacedDemand::new(2, busy_memory_demand(), 2, 0),
            ],
        );
        let residents = vec![
            ResidentVm {
                vm_id: VmId(1),
                counters: contended[0].counters,
                behavior: BehaviorVector::from_counters(&contended[0].counters),
                demand: quiet_demand(),
                vcpus: 2,
            },
            ResidentVm {
                vm_id: VmId(2),
                counters: contended[1].counters,
                behavior: BehaviorVector::from_counters(&contended[1].counters),
                demand: busy_memory_demand(),
                vcpus: 2,
            },
        ];
        let candidates = vec![
            xeon_candidate(10, vec![busy_memory_demand(), busy_memory_demand()], 4),
            xeon_candidate(11, vec![], 8),
        ];
        let decision = m.decide(
            &residents,
            Resource::CacheMemory,
            PmId(0),
            &candidates,
            &benchmark,
        );
        assert_eq!(
            decision.vm_to_migrate,
            VmId(2),
            "the cache hog must be selected"
        );
        assert_eq!(
            decision.destination,
            Some(PmId(11)),
            "the idle machine wins"
        );
        assert_eq!(decision.predictions.len(), 2);
    }

    #[test]
    fn decision_declines_when_every_candidate_is_bad() {
        let m = PlacementManager::new(0.01);
        let benchmark = SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 120, 3);
        let residents = vec![resident(1, counters_with(5.0e7, 0.0, 0.0))];
        let candidates = vec![xeon_candidate(
            10,
            vec![
                busy_memory_demand(),
                busy_memory_demand(),
                busy_memory_demand(),
            ],
            2,
        )];
        let decision = m.decide(
            &residents,
            Resource::CacheMemory,
            PmId(0),
            &candidates,
            &benchmark,
        );
        assert_eq!(decision.destination, None);
    }

    #[test]
    fn candidates_without_capacity_are_skipped() {
        let m = manager();
        let benchmark = SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 120, 3);
        let residents = vec![resident(1, counters_with(5.0e7, 0.0, 0.0))];
        let candidates = vec![xeon_candidate(10, vec![quiet_demand()], 0)];
        let decision = m.decide(
            &residents,
            Resource::CacheMemory,
            PmId(0),
            &candidates,
            &benchmark,
        );
        assert!(decision.predictions.is_empty());
        assert_eq!(decision.destination, None);
    }

    #[test]
    fn spread_prefers_an_acceptable_cross_domain_destination() {
        // Machines 0..4 are power domain 0, 4..8 domain 1 (one machine per
        // rack, four racks per domain).  The source is machine 0; both
        // candidates are idle (equally acceptable), but machine 5 sits in
        // the other domain.
        let topology = Topology::new(1, 4);
        let benchmark = SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 120, 3);
        let residents = vec![resident(1, counters_with(5.0e7, 0.0, 0.0))];
        let candidates = vec![xeon_candidate(1, vec![], 8), xeon_candidate(5, vec![], 8)];
        let plain = manager().decide(
            &residents,
            Resource::CacheMemory,
            PmId(0),
            &candidates,
            &benchmark,
        );
        assert_eq!(
            plain.destination,
            Some(PmId(1)),
            "spread off: lowest machine id wins the interference tie"
        );
        let spread = manager().with_spread(topology).decide(
            &residents,
            Resource::CacheMemory,
            PmId(0),
            &candidates,
            &benchmark,
        );
        assert_eq!(
            spread.vm_to_migrate, plain.vm_to_migrate,
            "spread only reorders destinations"
        );
        assert_eq!(
            spread.destination,
            Some(PmId(5)),
            "spread on: the cross-domain candidate wins"
        );
        // With no cross-domain candidate at all, the preference falls back
        // to the plain minimum instead of declining.
        let same_domain = vec![xeon_candidate(1, vec![], 8)];
        let fallback = manager().with_spread(topology).decide(
            &residents,
            Resource::CacheMemory,
            PmId(0),
            &same_domain,
            &benchmark,
        );
        assert_eq!(fallback.destination, Some(PmId(1)));
    }

    #[test]
    #[should_panic(expected = "no resident VMs")]
    fn empty_residents_rejected() {
        PlacementManager::select_aggressor(&[], Resource::Disk);
    }

    #[test]
    #[should_panic(expected = "acceptable interference")]
    fn invalid_limit_rejected() {
        PlacementManager::new(0.0);
    }

    #[test]
    fn synthetic_clone_uses_app_namespace_for_identity() {
        // Smoke-check that the clone built by the benchmark carries the app
        // identity it was asked to impersonate.
        let benchmark = SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 120, 3);
        let target = BehaviorVector::from_counters(&counters_with(5.0e7, 0.0, 0.0));
        let clone = benchmark.clone_for(AppId(42), &target, 2.0e9);
        assert_eq!(workloads::Workload::app_id(&clone), AppId(42));
    }
}
