//! The interference analyzer (§4.2, Algorithm 2).
//!
//! When the warning system cannot explain a behaviour, the analyzer obtains
//! ground truth: it clones the VM into the sandbox, replays the duplicated
//! request stream (recorded by the proxy), and compares the *instructions
//! retired per second* in production against isolation:
//!
//! ```text
//! Degradation = 1 − Inst_production / Inst_isolation
//! ```
//!
//! If the degradation stays below the operator-defined performance
//! threshold, the alarm was false: the production behaviour is genuinely
//! normal (e.g. a workload change) and is added to the repository.  If it
//! exceeds the threshold, the analyzer builds the augmented CPI stack for
//! both environments, attributes the degradation to the culprit resource,
//! and hands the case to the placement manager.
//!
//! The analyzer itself is machine-model agnostic: every analysis interprets
//! counters with the datasheet constants of the sandbox pool it is handed,
//! because the comparison is only sound when the clone runs on the same
//! hardware model as the production host.  On heterogeneous clusters the
//! controller routes each analysis to the matching pool of a
//! [`cloudsim::SandboxFleet`]; handing the analyzer a pool of a *different*
//! model (the old single-pool path) silently biases the estimate — e.g. an
//! i7-hosted victim replayed in a Xeon sandbox under-detects whenever the
//! i7 is the faster machine for the workload.

use cloudsim::sandbox::Sandbox;
use cloudsim::VmId;
use hwsim::{CounterSnapshot, ResourceDemand};
use serde::{Deserialize, Serialize};

use crate::cpi_stack::{CpiStack, Resource};
use crate::metrics::BehaviorVector;

/// Outcome of one analyzer invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisResult {
    /// The VM that was analyzed.
    pub vm_id: VmId,
    /// Estimated performance degradation in `[0, 1]` (0.3 = the VM retires
    /// 30% fewer instructions per unit time than in isolation).
    pub degradation: f64,
    /// True when the degradation exceeded the operator threshold, i.e. real
    /// interference was confirmed.
    pub interference_confirmed: bool,
    /// Per-resource degradation factors (`Factor_r` of §4.2).
    pub factors: Vec<(Resource, f64)>,
    /// The dominant culprit resource when interference was confirmed.
    pub culprit: Option<Resource>,
    /// The mean behaviour observed in isolation — a verified normal
    /// behaviour the warning system can learn from.
    pub isolation_behavior: BehaviorVector,
    /// Per-epoch isolation behaviours over the replayed window; the analyzer
    /// hands the warning system this whole *set* of normal behaviours
    /// (the "set of normal VM behaviors S" of §4.1).
    pub isolation_behaviors: Vec<BehaviorVector>,
    /// The behaviour observed in production (useful as a cannot-link
    /// constraint when interference was confirmed).
    pub production_behavior: BehaviorVector,
    /// Sandbox time consumed by this analysis, in seconds (cloning overhead
    /// plus the replayed window).
    pub profiling_seconds: f64,
}

/// The interference analyzer.
#[derive(Debug, Clone)]
pub struct InterferenceAnalyzer {
    /// Operator-defined performance threshold: degradations below this are
    /// treated as acceptable / false alarms (§4.2).
    pub performance_threshold: f64,
}

impl InterferenceAnalyzer {
    /// Creates an analyzer.
    ///
    /// # Panics
    /// Panics if the threshold is not a fraction in `(0, 1)`.
    pub fn new(performance_threshold: f64) -> Self {
        assert!(
            performance_threshold > 0.0 && performance_threshold < 1.0,
            "performance threshold must be a fraction in (0, 1)"
        );
        Self {
            performance_threshold,
        }
    }

    /// Runs the full analysis for one VM.
    ///
    /// * `production_counters` — the per-epoch counters observed in
    ///   production over the analysis window.
    /// * `replayed_demands` — the request stream recorded by the proxy for
    ///   the same window (what the sandbox clone executes).
    /// * `sandbox` — the sandboxed environment to run the clone in.  Its
    ///   machine model supplies the datasheet constants for both CPI stacks,
    ///   so it must match the victim's production host for the comparison to
    ///   be unbiased (the controller guarantees this on spec-matched
    ///   fleets).
    /// * `vcpus` — the VM's vCPU allocation (the clone gets the same).
    ///
    /// # Panics
    /// Panics if the production window is empty.
    pub fn analyze(
        &self,
        vm_id: VmId,
        production_counters: &[CounterSnapshot],
        replayed_demands: &[ResourceDemand],
        sandbox: &Sandbox,
        vcpus: usize,
    ) -> AnalysisResult {
        assert!(
            !production_counters.is_empty(),
            "analysis needs at least one production epoch"
        );
        assert!(
            !replayed_demands.is_empty(),
            "analysis needs a recorded request stream to replay"
        );

        // Ground truth: run the clone in isolation on the duplicated stream.
        let isolation = sandbox.run_in_isolation(vm_id, replayed_demands, vcpus);

        // Average counters over both windows.
        let production_mean = mean_counters(production_counters);
        let isolation_mean = isolation.mean_counters();

        // Degradation from the instructions-retired rates (§4.2).
        let inst_prod = production_mean.inst_retired;
        let inst_iso = isolation_mean.inst_retired;
        let degradation = if inst_iso <= 0.0 {
            0.0
        } else {
            (1.0 - inst_prod / inst_iso).clamp(0.0, 1.0)
        };

        // Augmented CPI stacks and per-resource factors, interpreted with
        // the sandbox pool's machine model (== the host's on matched fleets).
        let stack_prod = CpiStack::from_counters(&production_mean, &sandbox.spec);
        let stack_iso = CpiStack::from_counters(&isolation_mean, &sandbox.spec);
        let factors = CpiStack::degradation_factors(&stack_prod, &stack_iso);
        let interference_confirmed = degradation >= self.performance_threshold;
        let culprit = if interference_confirmed {
            CpiStack::dominant_culprit(&stack_prod, &stack_iso).map(|(r, _)| r)
        } else {
            None
        };

        AnalysisResult {
            vm_id,
            degradation,
            interference_confirmed,
            factors,
            culprit,
            isolation_behavior: BehaviorVector::from_counters(&isolation_mean),
            isolation_behaviors: isolation
                .counters
                .iter()
                .map(BehaviorVector::from_counters)
                .collect(),
            production_behavior: BehaviorVector::from_counters(&production_mean),
            profiling_seconds: isolation.profiling_seconds,
        }
    }
}

/// Element-wise mean of a slice of counter snapshots.
fn mean_counters(counters: &[CounterSnapshot]) -> CounterSnapshot {
    if counters.is_empty() {
        return CounterSnapshot::zero();
    }
    counters
        .iter()
        .fold(CounterSnapshot::zero(), |acc, c| acc.add(c))
        .scale(1.0 / counters.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::contention::{resolve_epoch, PlacedDemand};
    use hwsim::MachineSpec;

    fn victim_demand() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e9)
            .working_set_mb(8.0)
            .l1_mpki(25.0)
            .llc_mpki_solo(1.0)
            .locality(0.3)
            .parallelism(2.0)
            .build()
    }

    fn cache_aggressor() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.5e9)
            .working_set_mb(512.0)
            .l1_mpki(70.0)
            .llc_mpki_solo(45.0)
            .locality(0.0)
            .parallelism(2.0)
            .build()
    }

    fn production_counters(with_aggressor: bool, epochs: usize) -> Vec<CounterSnapshot> {
        let spec = MachineSpec::xeon_x5472();
        let mut placements = vec![PlacedDemand::new(1, victim_demand(), 2, 0)];
        if with_aggressor {
            placements.push(PlacedDemand::new(2, cache_aggressor(), 2, 0));
        }
        (0..epochs)
            .map(|_| resolve_epoch(&spec, &placements)[0].counters)
            .collect()
    }

    fn analyzer() -> InterferenceAnalyzer {
        InterferenceAnalyzer::new(0.15)
    }

    #[test]
    fn interference_is_confirmed_and_attributed() {
        let sandbox = Sandbox::xeon_pool(2);
        let result = analyzer().analyze(
            VmId(1),
            &production_counters(true, 5),
            &vec![victim_demand(); 5],
            &sandbox,
            2,
        );
        assert!(
            result.interference_confirmed,
            "degradation {}",
            result.degradation
        );
        assert!(result.degradation > 0.15);
        assert!(
            matches!(
                result.culprit,
                Some(Resource::CacheMemory) | Some(Resource::MemoryBus)
            ),
            "culprit {:?}",
            result.culprit
        );
        assert!(result.profiling_seconds > 0.0);
        assert!(result.isolation_behavior.is_well_formed());
    }

    #[test]
    fn clean_production_is_a_false_alarm() {
        let sandbox = Sandbox::xeon_pool(2);
        let result = analyzer().analyze(
            VmId(1),
            &production_counters(false, 5),
            &vec![victim_demand(); 5],
            &sandbox,
            2,
        );
        assert!(!result.interference_confirmed);
        assert!(
            result.degradation < 0.1,
            "degradation {}",
            result.degradation
        );
        assert_eq!(result.culprit, None);
    }

    #[test]
    fn degradation_estimate_tracks_ground_truth_loss() {
        // Ground truth: achieved fraction of the victim under interference.
        let spec = MachineSpec::xeon_x5472();
        let contended = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, victim_demand(), 2, 0),
                PlacedDemand::new(2, cache_aggressor(), 2, 0),
            ],
        );
        let truth = 1.0 - contended[0].achieved_fraction;

        let sandbox = Sandbox::xeon_pool(2);
        let result = analyzer().analyze(
            VmId(1),
            &production_counters(true, 5),
            &vec![victim_demand(); 5],
            &sandbox,
            2,
        );
        let error = (result.degradation - truth).abs();
        assert!(
            error < 0.10,
            "estimated {} vs ground truth {} (error {error})",
            result.degradation,
            truth
        );
    }

    #[test]
    fn isolation_behavior_matches_uncontended_production() {
        // The behaviour learned from the sandbox must look like the VM's own
        // uncontended behaviour, so the warning system can reuse it.
        let sandbox = Sandbox::xeon_pool(2);
        let result = analyzer().analyze(
            VmId(1),
            &production_counters(false, 3),
            &vec![victim_demand(); 3],
            &sandbox,
            2,
        );
        let deviation = result
            .production_behavior
            .max_relative_deviation(&result.isolation_behavior);
        assert!(deviation < 0.1, "deviation {deviation}");
    }

    #[test]
    #[should_panic(expected = "at least one production epoch")]
    fn empty_production_window_rejected() {
        let sandbox = Sandbox::xeon_pool(1);
        analyzer().analyze(VmId(1), &[], &[victim_demand()], &sandbox, 2);
    }

    #[test]
    #[should_panic(expected = "performance threshold")]
    fn invalid_threshold_rejected() {
        InterferenceAnalyzer::new(1.5);
    }
}
