//! Normalized behaviour vectors — DeepDive's view of a VM.
//!
//! The warning system reasons about VMs as points in an N-dimensional metric
//! space (§4.1, Fig. 3).  A [`BehaviorVector`] is one such point: a fixed set
//! of dimensions derived from the Table 1 counters, each normalized by the
//! amount of work performed (instructions retired) so that pure
//! load-intensity changes do not move the point.

use hwsim::CounterSnapshot;
use serde::{Deserialize, Serialize};

/// Names of the metric-space dimensions, in vector order.
pub const DIMENSION_NAMES: [&str; 10] = [
    "cpi",
    "l1_misses_pki",
    "llc_lines_in_pki",
    "mem_loads_pki",
    "stall_cycles_pki",
    "bus_transactions_pki",
    "bus_outstanding_pki",
    "branch_misses_pki",
    "disk_stall_s_per_gi",
    "net_stall_s_per_gi",
];

/// Number of dimensions in the metric space.
pub const DIMENSIONS: usize = DIMENSION_NAMES.len();

/// A VM behaviour: one point in DeepDive's normalized metric space.
///
/// `Copy`: the vector is a small fixed-size array, so the controller's
/// steady-state epoch path can pass behaviours around without heap traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorVector {
    /// The dimension values, in [`DIMENSION_NAMES`] order.
    pub values: [f64; DIMENSIONS],
}

impl BehaviorVector {
    /// Derives the behaviour vector from a raw counter snapshot.
    ///
    /// Counts become per-kilo-instruction rates; I/O stall seconds become
    /// seconds per billion instructions; the first dimension is the plain
    /// CPI.  An idle snapshot (no instructions retired) maps to the origin.
    pub fn from_counters(counters: &CounterSnapshot) -> Self {
        if counters.inst_retired <= 0.0 {
            return Self {
                values: [0.0; DIMENSIONS],
            };
        }
        let pki = |v: f64| v * 1_000.0 / counters.inst_retired;
        let per_gi = |v: f64| v * 1.0e9 / counters.inst_retired;
        Self {
            values: [
                counters.cpi(),
                pki(counters.l1d_repl),
                pki(counters.l2_lines_in),
                pki(counters.mem_load),
                pki(counters.resource_stalls),
                pki(counters.bus_tran_any),
                pki(counters.bus_req_out),
                pki(counters.br_miss_pred),
                per_gi(counters.disk_stall_seconds),
                per_gi(counters.net_stall_seconds),
            ],
        }
    }

    /// The dimension values as a `Vec`, for the clustering code.
    pub fn to_vec(&self) -> Vec<f64> {
        self.values.to_vec()
    }

    /// Builds a behaviour from a plain vector.
    ///
    /// # Panics
    /// Panics if `values` does not have exactly [`DIMENSIONS`] entries.
    pub fn from_vec(values: &[f64]) -> Self {
        assert_eq!(
            values.len(),
            DIMENSIONS,
            "behaviour vector needs {DIMENSIONS} dimensions"
        );
        let mut out = [0.0; DIMENSIONS];
        out.copy_from_slice(values);
        Self { values: out }
    }

    /// Element-wise mean of a set of behaviours; the origin for an empty set.
    pub fn mean_of(behaviors: &[BehaviorVector]) -> Self {
        if behaviors.is_empty() {
            return Self {
                values: [0.0; DIMENSIONS],
            };
        }
        let mut sums = [0.0; DIMENSIONS];
        for b in behaviors {
            for (s, v) in sums.iter_mut().zip(&b.values) {
                *s += v;
            }
        }
        for s in sums.iter_mut() {
            *s /= behaviors.len() as f64;
        }
        Self { values: sums }
    }

    /// Largest relative per-dimension deviation between two behaviours,
    /// using `other` as the reference (with a small floor to keep
    /// near-zero dimensions from exploding).
    pub fn max_relative_deviation(&self, other: &BehaviorVector) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs() / b.abs().max(0.05))
            .fold(0.0, f64::max)
    }

    /// Euclidean distance to another behaviour.
    pub fn distance(&self, other: &BehaviorVector) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Approximate serialized footprint in bytes (used for the §5.5 memory
    /// overhead accounting: one f64 per dimension).
    pub fn footprint_bytes(&self) -> usize {
        DIMENSIONS * std::mem::size_of::<f64>()
    }

    /// True when every dimension is finite and non-negative.
    pub fn is_well_formed(&self) -> bool {
        self.values.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters(scale: f64) -> CounterSnapshot {
        CounterSnapshot {
            cpu_unhalted: 3.0e9 * scale,
            inst_retired: 2.0e9 * scale,
            l1d_repl: 5.0e7 * scale,
            l2_ifetch: 1.0e6 * scale,
            l2_lines_in: 4.0e6 * scale,
            mem_load: 5.6e8 * scale,
            resource_stalls: 9.0e8 * scale,
            bus_tran_any: 5.0e6 * scale,
            bus_trans_ifetch: 4.0e5 * scale,
            bus_tran_brd: 4.0e6 * scale,
            bus_req_out: 1.2e9 * scale,
            br_miss_pred: 8.0e6 * scale,
            disk_stall_seconds: 0.02 * scale,
            net_stall_seconds: 0.04 * scale,
        }
    }

    #[test]
    fn vector_has_documented_dimensionality() {
        let b = BehaviorVector::from_counters(&sample_counters(1.0));
        assert_eq!(b.to_vec().len(), DIMENSIONS);
        assert_eq!(DIMENSION_NAMES.len(), DIMENSIONS);
        assert!(b.is_well_formed());
    }

    #[test]
    fn normalization_makes_load_scaling_invisible() {
        let half = BehaviorVector::from_counters(&sample_counters(0.5));
        let full = BehaviorVector::from_counters(&sample_counters(1.0));
        assert!(
            half.distance(&full) < 1e-9,
            "distance {}",
            half.distance(&full)
        );
    }

    #[test]
    fn idle_counters_map_to_origin() {
        let b = BehaviorVector::from_counters(&CounterSnapshot::zero());
        assert!(b.values.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn cpi_is_first_dimension() {
        let b = BehaviorVector::from_counters(&sample_counters(1.0));
        assert!((b.values[0] - 1.5).abs() < 1e-12);
        assert_eq!(DIMENSION_NAMES[0], "cpi");
    }

    #[test]
    fn mean_of_behaviors_averages_dimensions() {
        let a = BehaviorVector::from_vec(&[1.0; DIMENSIONS]);
        let b = BehaviorVector::from_vec(&[3.0; DIMENSIONS]);
        let m = BehaviorVector::mean_of(&[a, b]);
        assert!(m.values.iter().all(|v| (*v - 2.0).abs() < 1e-12));
        assert_eq!(BehaviorVector::mean_of(&[]).values, [0.0; DIMENSIONS]);
    }

    #[test]
    fn max_relative_deviation_flags_the_changed_dimension() {
        let base = BehaviorVector::from_counters(&sample_counters(1.0));
        let mut shifted = base;
        shifted.values[2] *= 4.0; // quadruple the LLC miss rate
        assert!(shifted.max_relative_deviation(&base) >= 3.0);
        assert!(base.max_relative_deviation(&base) < 1e-12);
    }

    #[test]
    fn footprint_matches_dimension_count() {
        let b = BehaviorVector::from_counters(&sample_counters(1.0));
        assert_eq!(b.footprint_bytes(), DIMENSIONS * 8);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn from_vec_rejects_wrong_length() {
        BehaviorVector::from_vec(&[1.0, 2.0]);
    }
}
