//! DeepDive driving a live, churning datacenter.
//!
//! The controller loop in [`crate::controller`] assumes somebody else
//! steps the cluster and hands it reports.  [`ManagedDatacenter`] is that
//! somebody at datacenter scale: it owns a
//! [`cloudsim::service::DatacenterService`] (VM sessions arriving, idling
//! and departing per a trace, stepped by the sparse epoch engine) and a
//! [`DeepDive`] controller, and closes the loop each epoch —
//!
//! 1. the service applies due arrivals/idles/departures and steps one
//!    epoch, producing the per-VM reports;
//! 2. the controller's warning system sweeps the reports, analyzes
//!    suspects in the sandbox and (optionally) migrates confirmed victims;
//! 3. every machine a migration freed is reported back to the service's
//!    placement hints, so the next arrival finds the hole without a scan.
//!
//! The composition stays deterministic end to end: the service is
//! bit-reproducible by construction and the controller is a pure function
//! of the report stream and its own seed.

use cloudsim::service::{DatacenterService, ServiceStats};
use cloudsim::VmEpochReport;

use crate::controller::{DeepDive, DeepDiveConfig, DeepDiveStats, EpochEvent};

/// A churning datacenter with the DeepDive control loop on top.
pub struct ManagedDatacenter {
    service: DatacenterService,
    controller: DeepDive,
}

impl ManagedDatacenter {
    /// Wraps a datacenter service with a controller built for its fleet
    /// (one sandbox pool per machine model, as
    /// [`DeepDive::for_cluster`] derives).
    pub fn new(service: DatacenterService, config: DeepDiveConfig) -> Self {
        let controller = DeepDive::for_cluster(config, service.cluster());
        Self {
            service,
            controller,
        }
    }

    /// Attaches one shared fault plane to **both** layers: the service
    /// sweeps its machine crash/repair windows, the controller degrades
    /// around its sandbox outages and transient migration failures.  The
    /// plane is `Copy`, so both sides read the same counter-derived
    /// schedule; a disabled plane is byte-for-byte inert.
    pub fn set_fault_plane(&mut self, plane: cloudsim::FaultPlane) {
        self.service.set_fault_plane(plane);
        self.controller.set_fault_plane(plane);
    }

    /// The datacenter front end.
    pub fn service(&self) -> &DatacenterService {
        &self.service
    }

    /// The DeepDive controller.
    pub fn controller(&self) -> &DeepDive {
        &self.controller
    }

    /// Service-side counters (arrivals, departures, rejections, VM-epochs).
    pub fn service_stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// Controller-side counters (warnings, analyses, migrations).
    pub fn controller_stats(&self) -> DeepDiveStats {
        self.controller.stats()
    }

    /// One closed-loop epoch: churn, step, sweep, mitigate.  Returns the
    /// controller's events alongside the epoch's reports.
    pub fn step_epoch(&mut self) -> (Vec<VmEpochReport>, Vec<EpochEvent>) {
        let reports = self.service.step_epoch();
        let events = self
            .controller
            .process_epoch(self.service.cluster_mut(), &reports);
        for event in &events {
            if let EpochEvent::Migrated { from, .. } = event {
                // The migration left a hole on the source machine; keep
                // the service's placement hints warm so the next arrival
                // lands there without rescanning the fleet.
                self.service.note_capacity_freed(*from);
            }
        }
        (reports, events)
    }

    /// Runs `epochs` closed-loop epochs, discarding per-epoch output.
    pub fn run_epochs(&mut self, epochs: u64) -> (ServiceStats, DeepDiveStats) {
        for _ in 0..epochs {
            self.step_epoch();
        }
        (self.service.stats(), self.controller.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::service::ServiceConfig;
    use traces::VmSession;

    fn busy_sessions(count: usize) -> Vec<VmSession> {
        (0..count)
            .map(|i| VmSession {
                arrival_s: i as f64 * 0.25,
                lifetime_s: 400.0,
                active_load: 0.85,
                app_rank: 1 + i % 3,
            })
            .collect()
    }

    #[test]
    fn the_closed_loop_runs_and_keeps_both_sides_consistent() {
        let service = DatacenterService::new(ServiceConfig::xeon_fleet(4, 21), busy_sessions(10));
        let mut dc = ManagedDatacenter::new(service, DeepDiveConfig::default());
        let (service_stats, controller_stats) = dc.run_epochs(40);
        assert_eq!(service_stats.arrivals, 10);
        assert_eq!(service_stats.rejections, 0);
        assert!(service_stats.vm_epochs > 0);
        assert!(
            controller_stats.evaluations > 0,
            "the warning system must sweep every epoch"
        );
        // Whatever the controller did, the cluster and service agree on
        // who is resident.
        assert_eq!(dc.service().cluster().vm_count(), 10);
    }

    #[test]
    fn the_fault_plane_reaches_both_layers_and_the_loop_survives_chaos() {
        use cloudsim::faults::{FaultConfig, FaultPlane};

        let service = DatacenterService::new(ServiceConfig::xeon_fleet(4, 33), busy_sessions(10));
        let mut dc = ManagedDatacenter::new(service, DeepDiveConfig::default());
        dc.set_fault_plane(FaultPlane::new(11, FaultConfig::light()));
        assert!(dc.service().fault_plane().is_some());
        assert!(dc.controller().fault_plane().is_some());
        let (service_stats, _) = dc.run_epochs(300);
        assert!(
            service_stats.crashes > 0,
            "light faults must crash a machine"
        );
        assert_eq!(
            dc.service().audit(),
            Vec::<String>::new(),
            "chaos must not corrupt the cluster"
        );
    }

    #[test]
    fn the_managed_loop_is_deterministic() {
        let run = || {
            let service = DatacenterService::new(ServiceConfig::xeon_fleet(3, 5), busy_sessions(8));
            let mut dc = ManagedDatacenter::new(service, DeepDiveConfig::default());
            let mut log = Vec::new();
            for _ in 0..30 {
                let (reports, events) = dc.step_epoch();
                log.push((reports, events.len()));
            }
            (log, dc.service_stats(), dc.controller_stats())
        };
        assert_eq!(run(), run());
    }
}
