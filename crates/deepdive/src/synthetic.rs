//! The synthetic benchmark (§4.3).
//!
//! To evaluate a migration *without actually migrating*, DeepDive runs "a
//! novel synthetic benchmark that can mimic the behavior of an arbitrary VM":
//! a collection of loops exercising cache, memory, disk and network whose
//! iteration counts are chosen so that the benchmark reproduces the metric
//! values collected from the real VM.  Training the mapping from benchmark
//! inputs to metric values is done once per server type with "a standard
//! regression algorithm"; mimicking a VM then amounts to inverting that
//! mapping for the VM's observed metrics.
//!
//! In this reproduction the "loops" are a parameterized
//! [`hwsim::ResourceDemand`] generator ([`BenchmarkInputs`]), the training
//! runs are solo executions on the target machine model, the regression is
//! [`analytics::LinearRegression`], and the inversion is the bounded
//! least-squares search in [`analytics::regression::invert_inputs`].

use analytics::regression::{invert_inputs, LinearRegression};
use cloudsim::pool::{split_balanced, WorkerPool};
use cloudsim::rngs::splitmix64;
use hwsim::contention::{resolve_epoch, EpochOutcome, PlacedDemand};
use hwsim::{EpochResolver, MachineSpec, ResourceDemand, EPOCH_SECONDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use workloads::{AppId, Workload, WorkloadKind};

use crate::metrics::BehaviorVector;

/// Tunable knobs of the synthetic benchmark — the inputs whose values the
/// training phase learns to map onto metric values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkInputs {
    /// Instructions executed per epoch (the compute loop's iteration count).
    pub instructions: f64,
    /// Working-set size touched by the memory loop, in MiB.
    pub working_set_mb: f64,
    /// Memory-access aggressiveness in `[0, 1]` (how many of the loop's
    /// accesses miss the private caches).
    pub memory_intensity: f64,
    /// Disk transfer rate exercised by the I/O loop, in MiB per epoch.
    pub disk_mb: f64,
    /// Network transfer rate exercised by the communication thread, in MiB
    /// per epoch (split evenly between send and receive).
    pub net_mb: f64,
    /// Number of parallel loop threads.
    pub parallelism: f64,
}

impl BenchmarkInputs {
    /// Bounds of the input space used for both training and inversion:
    /// `(min, max)` per field in declaration order.
    pub const BOUNDS: [(f64, f64); 6] = [
        (0.1e9, 6.0e9), // instructions
        (1.0, 512.0),   // working set MiB
        (0.0, 1.0),     // memory intensity
        (0.0, 60.0),    // disk MiB / epoch
        (0.0, 120.0),   // net MiB / epoch
        (1.0, 2.0),     // parallelism
    ];

    /// The inputs as a vector (training/inversion representation).
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.instructions,
            self.working_set_mb,
            self.memory_intensity,
            self.disk_mb,
            self.net_mb,
            self.parallelism,
        ]
    }

    /// Builds inputs from the vector representation.
    ///
    /// # Panics
    /// Panics if `v` does not have six entries.
    pub fn from_vec(v: &[f64]) -> Self {
        assert_eq!(v.len(), 6, "benchmark inputs have six knobs");
        Self {
            instructions: v[0],
            working_set_mb: v[1],
            memory_intensity: v[2],
            disk_mb: v[3],
            net_mb: v[4],
            parallelism: v[5],
        }
    }

    /// The resource demand the benchmark's loops generate per epoch for these
    /// input values.
    pub fn demand(&self) -> ResourceDemand {
        let intensity = self.memory_intensity.clamp(0.0, 1.0);
        let cache_pressure = (self.working_set_mb / 128.0).min(1.0);
        ResourceDemand::builder()
            .instructions(self.instructions.max(0.0))
            .base_cpi(0.7)
            .mem_refs_per_instr(0.25 + 0.35 * intensity)
            .l1_mpki(5.0 + 65.0 * intensity)
            .llc_mpki_solo(0.5 + 42.0 * intensity * cache_pressure)
            .working_set_mb(self.working_set_mb.max(1.0))
            .locality((1.0 - intensity).clamp(0.0, 1.0))
            .branch_mpki(3.0)
            .parallelism(self.parallelism.clamp(1.0, 8.0))
            .disk_read_mb(self.disk_mb.max(0.0) * 0.5)
            .disk_write_mb(self.disk_mb.max(0.0) * 0.5)
            .disk_seq_fraction(0.7)
            .net_tx_mb(self.net_mb.max(0.0) * 0.5)
            .net_rx_mb(self.net_mb.max(0.0) * 0.5)
            .build()
    }
}

/// A trained synthetic benchmark for one server type.
#[derive(Debug, Clone)]
pub struct SyntheticBenchmark {
    /// The machine model the benchmark was trained for.
    pub spec: MachineSpec,
    model: LinearRegression,
    training_error: f64,
}

impl SyntheticBenchmark {
    /// Trains the benchmark for a server type (§4.3's once-per-server-type
    /// training phase): samples the input space, runs each sample solo on the
    /// machine model, and fits inputs → normalized metrics.
    ///
    /// Training samples are independent solo resolves, so they run on
    /// scoped threads: `DEEPDIVE_TRAIN_THREADS` selects the width (default:
    /// all available cores).  Each sample draws from its own counter-derived
    /// RNG stream — a pure function of `(seed, sample index)`, the same
    /// SplitMix64 construction as `cloudsim::ClusterSeed` — so the fitted
    /// model is **bit-identical for any thread count**.
    ///
    /// # Panics
    /// Panics if `samples` is smaller than the number of input knobs.
    pub fn train(spec: MachineSpec, samples: usize, seed: u64) -> Self {
        Self::train_with_threads(spec, samples, seed, trainer_threads())
    }

    /// [`Self::train`] with an explicit thread count (1 = serial).  Output
    /// is bit-identical across thread counts; the env-driven default lives
    /// in [`Self::train`].
    pub fn train_with_threads(
        spec: MachineSpec,
        samples: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert!(samples >= 8, "training needs at least a handful of samples");
        let threads = threads.clamp(1, samples);
        let mut inputs = vec![Vec::new(); samples];
        let mut outputs = vec![Vec::new(); samples];
        if threads == 1 {
            // One resolver serves every training run: each sample is a solo
            // resolve on the same machine model, so all scratch is shared.
            let mut resolver = EpochResolver::new(spec.clone());
            let mut outcomes = Vec::with_capacity(1);
            for (index, (input, output)) in inputs.iter_mut().zip(outputs.iter_mut()).enumerate() {
                (*input, *output) = resolve_sample(seed, index, &mut resolver, &mut outcomes);
            }
        } else {
            // Contiguous sample chunks on scoped threads, merged in index
            // order by construction (each thread writes its own chunk).
            let chunk = samples.div_ceil(threads);
            let spec_ref = &spec;
            std::thread::scope(|scope| {
                for (t, (input_chunk, output_chunk)) in inputs
                    .chunks_mut(chunk)
                    .zip(outputs.chunks_mut(chunk))
                    .enumerate()
                {
                    scope.spawn(move || {
                        let mut resolver = EpochResolver::new(spec_ref.clone());
                        let mut outcomes = Vec::with_capacity(1);
                        let base = t * chunk;
                        for (offset, (input, output)) in input_chunk
                            .iter_mut()
                            .zip(output_chunk.iter_mut())
                            .enumerate()
                        {
                            (*input, *output) =
                                resolve_sample(seed, base + offset, &mut resolver, &mut outcomes);
                        }
                    });
                }
            });
        }
        let model = LinearRegression::fit(&inputs, &outputs, 1e-6);
        let training_error = model.mse(&inputs, &outputs);
        Self {
            spec,
            model,
            training_error,
        }
    }

    /// [`Self::train`] running its sample resolves on a persistent
    /// [`WorkerPool`] instead of freshly spawned scoped threads — the form
    /// the DeepDive controller uses so lazy in-episode training rides the
    /// epoch engine's pool rather than paying thread churn.
    ///
    /// Bit-identical to every other training path: each sample is a pure
    /// function of `(seed, index)`, and balanced contiguous chunks preserve
    /// index order no matter which worker resolves them.
    ///
    /// # Panics
    /// Panics if `samples` is smaller than the number of input knobs.
    pub fn train_with_pool(
        spec: MachineSpec,
        samples: usize,
        seed: u64,
        pool: &WorkerPool,
    ) -> Self {
        assert!(samples >= 8, "training needs at least a handful of samples");
        let lanes = pool.lanes().clamp(1, samples);
        if lanes <= 1 {
            return Self::train_with_threads(spec, samples, seed, 1);
        }
        let mut inputs = vec![Vec::new(); samples];
        let mut outputs = vec![Vec::new(); samples];
        {
            let spec_ref = &spec;
            // Equal-length slices split the same way yield index-aligned
            // chunk pairs; each job owns one pair plus its base offset.
            let input_chunks = split_balanced(&mut inputs, lanes);
            let output_chunks = split_balanced(&mut outputs, lanes);
            let mut base = 0usize;
            let jobs: Vec<_> = input_chunks
                .into_iter()
                .zip(output_chunks)
                .map(|(input_chunk, output_chunk)| {
                    let start = base;
                    base += input_chunk.len();
                    move || {
                        let mut resolver = EpochResolver::new(spec_ref.clone());
                        let mut outcomes = Vec::with_capacity(1);
                        for (offset, (input, output)) in input_chunk
                            .iter_mut()
                            .zip(output_chunk.iter_mut())
                            .enumerate()
                        {
                            (*input, *output) =
                                resolve_sample(seed, start + offset, &mut resolver, &mut outcomes);
                        }
                    }
                })
                .collect();
            pool.scatter(jobs);
        }
        let model = LinearRegression::fit(&inputs, &outputs, 1e-6);
        let training_error = model.mse(&inputs, &outputs);
        Self {
            spec,
            model,
            training_error,
        }
    }

    /// The fitted inputs → metrics regression (exposed so determinism tests
    /// can compare trainings bit-for-bit).
    pub fn model(&self) -> &LinearRegression {
        &self.model
    }

    /// Runs the benchmark with given inputs alone on the machine model and
    /// returns the observed normalized behaviour.
    pub fn run_solo(spec: &MachineSpec, inputs: &BenchmarkInputs) -> BehaviorVector {
        let vcpus = inputs.parallelism.ceil().max(1.0) as usize;
        let out = resolve_epoch(spec, &[PlacedDemand::new(0, inputs.demand(), vcpus, 0)]);
        BehaviorVector::from_counters(&out[0].counters)
    }

    /// Mean squared error of the trained regression on its own training set
    /// (useful as a sanity check on the fit quality).
    pub fn training_error(&self) -> f64 {
        self.training_error
    }

    /// Finds benchmark inputs that mimic a target behaviour — the learned
    /// inverse mapping of §4.3.
    ///
    /// `instructions_per_epoch` is the work rate observed on the real VM
    /// (e.g. its latest `inst_retired`). The behaviour vector is normalized
    /// per instruction, so the amount of work is *not* recoverable from it —
    /// yet it determines how much load the clone puts on shared resources,
    /// and therefore how much interference it suffers and causes. The clone
    /// must replay the real VM's rate, so that knob is pinned rather than
    /// searched.
    ///
    /// The regression inversion gives a good starting point; a short direct
    /// refinement against the machine model then compensates for the
    /// non-linearities (cache-capacity and bus-saturation knees) that a
    /// linear model cannot capture.  The paper notes that "more
    /// sophisticated workload synthesizers" exist but are unnecessary; this
    /// cheap refinement plays that role.
    pub fn mimic(&self, target: &BehaviorVector, instructions_per_epoch: f64) -> BenchmarkInputs {
        let mut bounds = BenchmarkInputs::BOUNDS;
        let pinned = instructions_per_epoch.clamp(bounds[0].0, bounds[0].1);
        bounds[0] = (pinned, pinned);
        let (raw, _err) = invert_inputs(&self.model, &target.to_vec(), &bounds, 80);
        self.refine(BenchmarkInputs::from_vec(&raw), target, &bounds, 12)
    }

    /// Coordinate-descent refinement of benchmark inputs directly against the
    /// machine model, minimizing the worst-dimension relative deviation from
    /// the target behaviour.
    fn refine(
        &self,
        start: BenchmarkInputs,
        target: &BehaviorVector,
        bounds: &[(f64, f64); 6],
        rounds: usize,
    ) -> BenchmarkInputs {
        // The refinement probes the machine model dozens of times; one
        // resolver shared across all probes keeps them allocation-free.
        let mut resolver = EpochResolver::new(self.spec.clone());
        let mut outcomes = Vec::with_capacity(1);
        let mut objective = |inputs: &BenchmarkInputs| -> f64 {
            run_solo_with(&mut resolver, inputs, &mut outcomes).max_relative_deviation(target)
        };
        let mut current = start.to_vec();
        let mut best = objective(&BenchmarkInputs::from_vec(&current));
        for round in 0..rounds {
            let scale = 0.5_f64.powi(round as i32 / 2);
            let mut improved = false;
            for dim in 0..current.len() {
                let (lo, hi) = bounds[dim];
                let step = (hi - lo) * 0.25 * scale;
                for candidate in [
                    (current[dim] - step).clamp(lo, hi),
                    (current[dim] + step).clamp(lo, hi),
                ] {
                    let mut trial = current.clone();
                    trial[dim] = candidate;
                    let err = objective(&BenchmarkInputs::from_vec(&trial));
                    if err + 1e-12 < best {
                        best = err;
                        current = trial;
                        improved = true;
                    }
                }
            }
            if !improved && scale < 0.1 {
                break;
            }
        }
        BenchmarkInputs::from_vec(&current)
    }

    /// Convenience: mimic a target behaviour at the observed work rate and
    /// wrap the result in a [`SyntheticClone`] workload that can be placed on
    /// a candidate machine.
    pub fn clone_for(
        &self,
        app: AppId,
        target: &BehaviorVector,
        instructions_per_epoch: f64,
    ) -> SyntheticClone {
        SyntheticClone::new(app, self.mimic(target, instructions_per_epoch))
    }
}

/// Trainer width: `DEEPDIVE_TRAIN_THREADS` if set (minimum 1), otherwise
/// every available core.
fn trainer_threads() -> usize {
    std::env::var("DEEPDIVE_TRAIN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|t| t.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Draws and resolves one training sample from its own counter-derived
/// stream: a pure function of `(seed, index)`, independent of the thread it
/// runs on and of every other sample.
fn resolve_sample(
    seed: u64,
    index: usize,
    resolver: &mut EpochResolver,
    outcomes: &mut Vec<EpochOutcome>,
) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(index as u64)));
    let raw: Vec<f64> = BenchmarkInputs::BOUNDS
        .iter()
        .map(|(lo, hi)| rng.gen_range(*lo..=*hi))
        .collect();
    let sample = BenchmarkInputs::from_vec(&raw);
    let behavior = run_solo_with(resolver, &sample, outcomes);
    (raw, behavior.to_vec())
}

/// Solo run of the benchmark through a reusable resolver — the hot-path form
/// of [`SyntheticBenchmark::run_solo`] used by training and refinement.
fn run_solo_with(
    resolver: &mut EpochResolver,
    inputs: &BenchmarkInputs,
    outcomes: &mut Vec<EpochOutcome>,
) -> BehaviorVector {
    let vcpus = inputs.parallelism.ceil().max(1.0) as usize;
    resolver.resolve_into(
        &[PlacedDemand::new(0, inputs.demand(), vcpus, 0)],
        EPOCH_SECONDS,
        outcomes,
    );
    BehaviorVector::from_counters(&outcomes[0].counters)
}

/// A workload that replays a fixed set of benchmark inputs each epoch — the
/// synthetic stand-in for a real VM during placement evaluation.
#[derive(Debug, Clone)]
pub struct SyntheticClone {
    app_id: AppId,
    inputs: BenchmarkInputs,
}

impl SyntheticClone {
    /// Creates a clone for the given application identity and inputs.
    pub fn new(app_id: AppId, inputs: BenchmarkInputs) -> Self {
        Self { app_id, inputs }
    }

    /// The benchmark inputs the clone replays.
    pub fn inputs(&self) -> &BenchmarkInputs {
        &self.inputs
    }
}

impl Workload for SyntheticClone {
    fn name(&self) -> &str {
        "synthetic-clone"
    }

    fn app_id(&self) -> AppId {
        self.app_id
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::SyntheticClone
    }

    fn next_demand(&mut self, _load: f64, _rng: &mut StdRng) -> ResourceDemand {
        // The benchmark runs its loops flat-out regardless of client load.
        self.inputs.demand()
    }

    fn peak_request_rate(&self) -> f64 {
        1.0
    }

    fn demand_is_static_at(&self, _load: f64) -> bool {
        // Replays fixed inputs regardless of load and RNG.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> SyntheticBenchmark {
        SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 200, 7)
    }

    fn memory_heavy_inputs() -> BenchmarkInputs {
        BenchmarkInputs {
            instructions: 2.0e9,
            working_set_mb: 256.0,
            memory_intensity: 0.8,
            disk_mb: 0.0,
            net_mb: 0.0,
            parallelism: 2.0,
        }
    }

    fn io_heavy_inputs() -> BenchmarkInputs {
        BenchmarkInputs {
            instructions: 0.5e9,
            working_set_mb: 8.0,
            memory_intensity: 0.1,
            disk_mb: 30.0,
            net_mb: 80.0,
            parallelism: 1.0,
        }
    }

    #[test]
    fn inputs_round_trip_through_vec() {
        let i = memory_heavy_inputs();
        assert_eq!(BenchmarkInputs::from_vec(&i.to_vec()), i);
    }

    #[test]
    fn demand_reflects_the_knobs() {
        let mem = memory_heavy_inputs().demand();
        let io = io_heavy_inputs().demand();
        assert!(mem.llc_mpki_solo > io.llc_mpki_solo);
        assert!(io.disk_total_mb() > mem.disk_total_mb());
        assert!(io.net_total_mb() > mem.net_total_mb());
        assert!(mem.is_well_formed() && io.is_well_formed());
    }

    #[test]
    fn mimic_recovers_behaviour_of_known_inputs() {
        // Generate a target behaviour from known inputs, ask the benchmark to
        // mimic it, and check the mimicked behaviour is close (Fig. 10's
        // ~10% average error bound is the reference point).
        let bench = trained();
        for target_inputs in [memory_heavy_inputs(), io_heavy_inputs()] {
            let target = SyntheticBenchmark::run_solo(&bench.spec, &target_inputs);
            let mimicked_inputs = bench.mimic(&target, target_inputs.instructions);
            let mimicked = SyntheticBenchmark::run_solo(&bench.spec, &mimicked_inputs);
            let deviation = mimicked.max_relative_deviation(&target);
            assert!(
                deviation < 0.6,
                "mimicked behaviour deviates {deviation} from target ({target_inputs:?})"
            );
        }
    }

    #[test]
    fn mimicked_inputs_respect_bounds() {
        let bench = trained();
        let target = SyntheticBenchmark::run_solo(&bench.spec, &memory_heavy_inputs());
        let inputs = bench
            .mimic(&target, memory_heavy_inputs().instructions)
            .to_vec();
        for (v, (lo, hi)) in inputs.iter().zip(&BenchmarkInputs::BOUNDS) {
            assert!(v >= lo && v <= hi, "input {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn clone_is_a_constant_workload() {
        let mut clone = SyntheticClone::new(AppId(77), memory_heavy_inputs());
        let mut rng = StdRng::seed_from_u64(1);
        let a = clone.next_demand(0.1, &mut rng);
        let b = clone.next_demand(1.0, &mut rng);
        assert_eq!(a, b);
        assert_eq!(clone.kind(), WorkloadKind::SyntheticClone);
        assert_eq!(clone.app_id(), AppId(77));
    }

    #[test]
    fn parallel_training_is_bit_identical_across_thread_counts() {
        let spec = MachineSpec::xeon_x5472();
        let serial = SyntheticBenchmark::train_with_threads(spec.clone(), 64, 11, 1);
        for threads in [2usize, 8] {
            let parallel = SyntheticBenchmark::train_with_threads(spec.clone(), 64, 11, threads);
            assert_eq!(
                serial.model(),
                parallel.model(),
                "{threads}-thread training diverged from serial"
            );
            assert_eq!(
                serial.training_error().to_bits(),
                parallel.training_error().to_bits()
            );
        }
    }

    #[test]
    fn pool_training_is_bit_identical_to_serial() {
        let spec = MachineSpec::xeon_x5472();
        let serial = SyntheticBenchmark::train_with_threads(spec.clone(), 64, 11, 1);
        for workers in [0usize, 1, 3] {
            let pool = WorkerPool::new(workers);
            let pooled = SyntheticBenchmark::train_with_pool(spec.clone(), 64, 11, &pool);
            assert_eq!(
                serial.model(),
                pooled.model(),
                "{workers}-worker pool training diverged from serial"
            );
            assert_eq!(
                serial.training_error().to_bits(),
                pooled.training_error().to_bits()
            );
        }
    }

    #[test]
    fn thread_counts_beyond_sample_count_are_clamped() {
        let spec = MachineSpec::xeon_x5472();
        let narrow = SyntheticBenchmark::train_with_threads(spec.clone(), 8, 5, 1);
        let wide = SyntheticBenchmark::train_with_threads(spec, 8, 5, 64);
        assert_eq!(narrow.model(), wide.model());
    }

    #[test]
    fn training_error_is_reported_and_finite() {
        let bench = trained();
        assert!(bench.training_error().is_finite());
        assert!(bench.training_error() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "handful of samples")]
    fn too_few_training_samples_rejected() {
        SyntheticBenchmark::train(MachineSpec::xeon_x5472(), 2, 1);
    }
}
