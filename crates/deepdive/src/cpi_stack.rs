//! The augmented CPI stack — root-cause attribution from counters alone.
//!
//! Section 4.2: the analyzer "estimates a breakdown of the various run-time
//! stall components of the server":
//!
//! ```text
//! T_overall = T_core + T_off_core        (CPI analysis, hardware counters)
//!           + T_disk + T_net             (system-level statistics)
//! ```
//!
//! and attributes the degradation to individual resources via
//!
//! ```text
//! Factor_r = (T_r^production − T_r^isolation) / T_overall^production
//! ```
//!
//! Everything here is computed *from the Table 1 counters only* — the same
//! estimation a real deployment would perform — so the benches can check the
//! estimated attribution against the simulator's ground-truth breakdown
//! (Fig. 6) without the estimator ever peeking at it.

use hwsim::{CounterSnapshot, MachineSpec};
use serde::{Deserialize, Serialize};

/// Server resources DeepDive can blame for interference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// In-core execution (not a shared resource; listed for completeness).
    Core,
    /// Shared last-level cache and memory (the "L2 miss" component).
    CacheMemory,
    /// Memory interconnect queueing (the "FSB"/"QPI" component).
    MemoryBus,
    /// Disk.
    Disk,
    /// Network interface.
    Network,
}

impl Resource {
    /// All attributable resources in display order.
    pub const ALL: [Resource; 5] = [
        Resource::Core,
        Resource::CacheMemory,
        Resource::MemoryBus,
        Resource::Disk,
        Resource::Network,
    ];

    /// Human-readable label matching the paper's Fig. 6 legend.
    pub fn label(&self) -> &'static str {
        match self {
            Resource::Core => "Core",
            Resource::CacheMemory => "L2 miss",
            Resource::MemoryBus => "FSB",
            Resource::Disk => "Disk",
            Resource::Network => "Net",
        }
    }
}

/// Estimated per-resource time breakdown for one VM over one monitoring
/// window, in seconds of (possibly overlapping) stall/execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpiStack {
    /// Seconds executing on the core (including private-cache hits).
    pub core_seconds: f64,
    /// Seconds stalled on shared-cache misses at the base memory latency.
    pub cache_memory_seconds: f64,
    /// Extra seconds stalled on interconnect queueing.
    pub memory_bus_seconds: f64,
    /// Seconds stalled on disk I/O.
    pub disk_seconds: f64,
    /// Seconds stalled on network I/O.
    pub net_seconds: f64,
}

impl CpiStack {
    /// Estimates the stack from a counter snapshot.
    ///
    /// The estimation uses only counter values plus two machine constants an
    /// operator would read off the datasheet (clock frequency and the
    /// uncontended memory latency) — mirroring how the paper's port to the
    /// Core i7 required "designing a new performance model starting fresh
    /// from the CPU/server datasheets" (§4.4).
    pub fn from_counters(counters: &CounterSnapshot, spec: &MachineSpec) -> Self {
        let clock = spec.clock_hz;
        // Off-core stall cycles are reported directly by resource_stalls.
        let off_core_cycles = counters.resource_stalls;
        // Core time: everything unhalted that was not an off-core stall.
        let core_cycles = (counters.cpu_unhalted - off_core_cycles).max(0.0);
        // Split off-core into "shared cache / memory at base latency" and
        // "interconnect queueing": on an idle interconnect the observed
        // misses (l2_lines_in) would have cost the base memory latency each,
        // and L1 misses that hit the shared cache cost the LLC hit latency;
        // anything beyond that within the off-core stalls is queueing delay
        // on the congested bus.
        let base_memory_cycles = counters.l2_lines_in * spec.memory_latency_cycles;
        let llc_hit_cycles = counters.l1d_repl * spec.shared_cache_hit_cycles;
        let cache_memory_cycles = off_core_cycles.min(base_memory_cycles + llc_hit_cycles);
        let bus_cycles = (off_core_cycles - cache_memory_cycles).max(0.0);

        Self {
            core_seconds: core_cycles / clock,
            cache_memory_seconds: cache_memory_cycles / clock,
            memory_bus_seconds: bus_cycles / clock,
            disk_seconds: counters.disk_stall_seconds,
            net_seconds: counters.net_stall_seconds,
        }
    }

    /// Total time represented by the stack.
    pub fn total_seconds(&self) -> f64 {
        self.core_seconds
            + self.cache_memory_seconds
            + self.memory_bus_seconds
            + self.disk_seconds
            + self.net_seconds
    }

    /// Component value for a resource.
    pub fn component(&self, resource: Resource) -> f64 {
        match resource {
            Resource::Core => self.core_seconds,
            Resource::CacheMemory => self.cache_memory_seconds,
            Resource::MemoryBus => self.memory_bus_seconds,
            Resource::Disk => self.disk_seconds,
            Resource::Network => self.net_seconds,
        }
    }

    /// Stalled cycles per instruction per component (the Fig. 6 y-axis),
    /// given the instruction count of the window.
    pub fn per_instruction(&self, clock_hz: f64, instructions: f64) -> Vec<(Resource, f64)> {
        Resource::ALL
            .iter()
            .map(|r| {
                let cpi = if instructions > 0.0 {
                    self.component(*r) * clock_hz / instructions
                } else {
                    0.0
                };
                (*r, cpi)
            })
            .collect()
    }

    /// The paper's degradation factors: per-resource share of the production
    /// window explained by *growth* relative to isolation.
    ///
    /// `Factor_r = (T_r^prod − T_r^iso) / T_overall^prod`, clamped at zero.
    pub fn degradation_factors(
        production: &CpiStack,
        isolation: &CpiStack,
    ) -> Vec<(Resource, f64)> {
        let total = production.total_seconds().max(f64::MIN_POSITIVE);
        Resource::ALL
            .iter()
            .map(|r| {
                let delta = (production.component(*r) - isolation.component(*r)).max(0.0);
                (*r, delta / total)
            })
            .collect()
    }

    /// The resource with the largest degradation factor, ignoring the core
    /// component (a VM doing more useful work on its own core is never the
    /// *shared-resource* culprit the placement manager should act on).
    pub fn dominant_culprit(
        production: &CpiStack,
        isolation: &CpiStack,
    ) -> Option<(Resource, f64)> {
        Self::degradation_factors(production, isolation)
            .into_iter()
            .filter(|(r, _)| *r != Resource::Core)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite factors"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::contention::{resolve_epoch, PlacedDemand};
    use hwsim::ResourceDemand;

    fn spec() -> MachineSpec {
        MachineSpec::xeon_x5472()
    }

    fn victim_demand() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e9)
            .working_set_mb(8.0)
            .l1_mpki(25.0)
            .llc_mpki_solo(1.0)
            .locality(0.3)
            .parallelism(2.0)
            .disk_read_mb(5.0)
            .net_tx_mb(10.0)
            .build()
    }

    fn stack_for(colocated: Option<ResourceDemand>) -> (CpiStack, f64) {
        let mut placements = vec![PlacedDemand::new(1, victim_demand(), 2, 0)];
        if let Some(agg) = colocated {
            placements.push(PlacedDemand::new(2, agg, 2, 0));
        }
        let out = resolve_epoch(&spec(), &placements);
        (
            CpiStack::from_counters(&out[0].counters, &spec()),
            out[0].counters.inst_retired,
        )
    }

    #[test]
    fn stack_components_are_finite_and_nonnegative() {
        let (stack, _) = stack_for(None);
        for r in Resource::ALL {
            assert!(stack.component(r).is_finite());
            assert!(stack.component(r) >= 0.0);
        }
        assert!(stack.total_seconds() > 0.0);
    }

    #[test]
    fn cache_aggressor_is_blamed_on_the_memory_subsystem() {
        let (isolation, _) = stack_for(None);
        let aggressor = ResourceDemand::builder()
            .instructions(2.5e9)
            .working_set_mb(512.0)
            .l1_mpki(70.0)
            .llc_mpki_solo(45.0)
            .locality(0.0)
            .parallelism(2.0)
            .build();
        let (production, _) = stack_for(Some(aggressor));
        let culprit = CpiStack::dominant_culprit(&production, &isolation).unwrap();
        assert!(
            matches!(culprit.0, Resource::CacheMemory | Resource::MemoryBus),
            "expected a memory-subsystem culprit, got {:?}",
            culprit
        );
        assert!(culprit.1 > 0.0);
    }

    /// Network-heavy victim (think Data Analytics in its shuffle phase),
    /// which is the workload class the paper pairs with the network stress.
    fn network_victim_demand() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(1.0e9)
            .working_set_mb(8.0)
            .l1_mpki(14.0)
            .llc_mpki_solo(1.0)
            .parallelism(2.0)
            .net_tx_mb(45.0)
            .net_rx_mb(45.0)
            .build()
    }

    #[test]
    fn network_aggressor_is_blamed_on_the_network() {
        let spec = spec();
        let aggressor = ResourceDemand::builder()
            .instructions(0.3e9)
            .net_tx_mb(85.0)
            .net_rx_mb(85.0)
            .build();
        let iso_out = resolve_epoch(
            &spec,
            &[PlacedDemand::new(1, network_victim_demand(), 2, 0)],
        );
        let prod_out = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, network_victim_demand(), 2, 0),
                PlacedDemand::new(2, aggressor, 2, 1),
            ],
        );
        let isolation = CpiStack::from_counters(&iso_out[0].counters, &spec);
        let production = CpiStack::from_counters(&prod_out[0].counters, &spec);
        let culprit = CpiStack::dominant_culprit(&production, &isolation).unwrap();
        assert_eq!(
            culprit.0,
            Resource::Network,
            "factors: {:?}",
            CpiStack::degradation_factors(&production, &isolation)
        );
    }

    #[test]
    fn disk_aggressor_is_blamed_on_the_disk() {
        let (isolation, _) = stack_for(None);
        let aggressor = ResourceDemand::builder()
            .instructions(0.2e9)
            .disk_read_mb(60.0)
            .disk_write_mb(60.0)
            .disk_seq_fraction(1.0)
            .build();
        let (production, _) = stack_for(Some(aggressor));
        let culprit = CpiStack::dominant_culprit(&production, &isolation).unwrap();
        assert_eq!(culprit.0, Resource::Disk);
    }

    #[test]
    fn no_interference_yields_negligible_factors() {
        let (a, _) = stack_for(None);
        let (b, _) = stack_for(None);
        let factors = CpiStack::degradation_factors(&a, &b);
        for (_, f) in factors {
            assert!(f < 0.05, "unexpected degradation factor {f}");
        }
    }

    #[test]
    fn per_instruction_breakdown_has_all_components() {
        let (stack, inst) = stack_for(None);
        let cpis = stack.per_instruction(spec().clock_hz, inst);
        assert_eq!(cpis.len(), Resource::ALL.len());
        assert!(cpis.iter().all(|(_, v)| v.is_finite() && *v >= 0.0));
        // Core execution dominates an uncontended CPU-bound victim.
        assert!(cpis[0].1 > 0.0);
    }

    #[test]
    fn labels_match_figure_6_legend() {
        assert_eq!(Resource::CacheMemory.label(), "L2 miss");
        assert_eq!(Resource::MemoryBus.label(), "FSB");
        assert_eq!(Resource::Core.label(), "Core");
    }
}
