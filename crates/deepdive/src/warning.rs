//! The warning system (§4.1, Algorithm 1).
//!
//! The warning system is DeepDive's cheap, always-on first line: every epoch
//! it reads each VM's normalized behaviour and decides between three
//! outcomes that mirror Figure 3 of the paper:
//!
//! * the behaviour falls inside a learned *normal* cluster — no action
//!   (Fig. 3a);
//! * the behaviour is new, but most other VMs running the same application
//!   moved the same way at the same time — a workload change, extend the
//!   set of normal behaviours and do not escalate (Fig. 3b);
//! * the behaviour is far from both — suspect interference and invoke the
//!   analyzer (Fig. 3c).
//!
//! Clusters and per-metric thresholds `MT` come from the constrained EM fit
//! in the `analytics` crate, re-fit whenever the repository gains new
//! verified behaviours.  Before any verified behaviour exists the system
//! runs in the paper's *conservative mode*: everything escalates, which
//! bootstraps learning and guarantees no interference goes undetected.
//!
//! ## Incremental refresh
//!
//! [`WarningSystem::refresh_model`] is built to be called every epoch for
//! every application and still cost nothing in the steady state:
//!
//! * the repository keeps a per-application **generation counter**, so an
//!   unchanged repository short-circuits the refresh in O(1) — no clone, no
//!   labelled-point extraction, no fit;
//! * when the repository *did* grow, the refit is **warm-started** from the
//!   previous model's mixture components
//!   ([`analytics::constrained::fit_constrained_warm`]), converging in a
//!   handful of EM iterations instead of a full from-scratch fit;
//! * every [`WarningConfig::cold_refit_interval`]-th refit of an
//!   application's model falls back to a full k-means++-seeded cold fit, so
//!   warm-start drift cannot accumulate indefinitely;
//! * applications are mutually independent, so when several need a refit in
//!   the same epoch [`WarningSystem::refresh_models`] fans the fits out over
//!   a persistent [`WorkerPool`] — each fit is a pure function of the
//!   repository snapshot and the previous model, so the pooled sweep is
//!   bit-identical to refreshing each application serially in order.

use std::collections::HashMap;

use analytics::constrained::{
    fit_constrained, fit_constrained_warm, ConstrainedModel, LabelledBehaviour,
};
use cloudsim::pool::WorkerPool;
use workloads::AppId;

use crate::metrics::BehaviorVector;
use crate::repository::BehaviorRepository;

/// EM iteration budget for warm-started refits.  Warm starts resume from the
/// previous local optimum, so a handful of iterations suffices (cold fits
/// budget 100).
const WARM_REFIT_ITERS: usize = 10;

/// Outcome of the warning system's per-epoch check for one VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarningDecision {
    /// Behaviour matches a learned normal cluster (Fig. 3a).
    NormalLocal,
    /// Behaviour is new but shared by most peers running the same code —
    /// treated as a workload change (Fig. 3b).
    NormalGlobal,
    /// Behaviour is unexplained: invoke the interference analyzer (Fig. 3c).
    SuspectInterference,
    /// No knowledge about this application yet: conservative mode, invoke the
    /// analyzer to start learning.
    Bootstrap,
}

impl WarningDecision {
    /// True when the decision requires invoking the interference analyzer.
    pub fn triggers_analyzer(&self) -> bool {
        matches!(
            self,
            WarningDecision::SuspectInterference | WarningDecision::Bootstrap
        )
    }
}

/// Configuration of the warning system.
#[derive(Debug, Clone, PartialEq)]
pub struct WarningConfig {
    /// Number of mixture components fitted per application.
    pub clusters_per_app: usize,
    /// σ-multiplier used to derive the metric thresholds `MT`.
    pub sigma_multiplier: f64,
    /// Minimum number of verified normal behaviours before leaving
    /// conservative mode.
    pub min_behaviors_for_clustering: usize,
    /// Fraction of peers that must exhibit the same new behaviour for the
    /// global check to call it a workload change.
    pub global_quorum: f64,
    /// Maximum relative deviation between this VM's behaviour and a peer's
    /// for them to count as "behaving similarly".
    pub global_similarity: f64,
    /// Seed for the clustering initialization.
    pub seed: u64,
    /// Refits per application between full cold refits: after
    /// `cold_refit_interval - 1` consecutive warm-started refits the next
    /// one re-fits from a fresh k-means++ initialization, bounding how far
    /// warm-start drift can accumulate.  `1` (or `0`) disables warm starts
    /// entirely — every refit is cold, the pre-incremental behaviour.
    pub cold_refit_interval: u64,
}

impl Default for WarningConfig {
    fn default() -> Self {
        Self {
            clusters_per_app: 3,
            sigma_multiplier: 3.0,
            min_behaviors_for_clustering: 8,
            global_quorum: 0.6,
            global_similarity: 0.25,
            seed: 0xDEE9_D1DE,
            cold_refit_interval: 32,
        }
    }
}

/// One application's fitted model plus the bookkeeping that drives the
/// incremental refresh.
#[derive(Debug)]
struct AppModel {
    model: ConstrainedModel,
    /// Repository generation the model was fitted at; an equal generation
    /// means the model is current and the refresh is a no-op.
    generation: u64,
    /// Consecutive warm-started refits since the last cold fit.
    warm_refits_since_cold: u64,
}

/// The warning system: per-application cluster models plus the decision
/// procedure of Algorithm 1.
#[derive(Debug)]
pub struct WarningSystem {
    config: WarningConfig,
    models: HashMap<u64, AppModel>,
    /// Reused labelled-point buffer for refits (the only refresh scratch).
    labelled_scratch: Vec<analytics::constrained::LabelledBehaviour>,
    /// Full from-scratch fits performed (bookkeeping for tests/benches).
    cold_refits: u64,
    /// Warm-started fits performed.
    warm_refits: u64,
}

impl WarningSystem {
    /// Creates a warning system with the given configuration.
    pub fn new(config: WarningConfig) -> Self {
        assert!(config.clusters_per_app > 0, "need at least one cluster");
        assert!(
            config.sigma_multiplier > 0.0,
            "sigma multiplier must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.global_quorum),
            "quorum must be a fraction"
        );
        Self {
            config,
            models: HashMap::new(),
            labelled_scratch: Vec::new(),
            cold_refits: 0,
            warm_refits: 0,
        }
    }

    /// Creates a warning system with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(WarningConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &WarningConfig {
        &self.config
    }

    /// Re-fits the cluster model for an application from the repository if
    /// the repository has changed since the last fit.
    ///
    /// O(1) when the application's repository generation is unchanged (the
    /// steady-state epoch path — no clone, no refit).  When the repository
    /// did change, the refit is warm-started from the previous model, with a
    /// full cold refit every [`WarningConfig::cold_refit_interval`] refits to
    /// bound warm-start drift.  The generation check also means churn in a
    /// repository that is *at capacity* (length constant, contents rotating)
    /// correctly triggers refits — the pre-generation length check went
    /// permanently stale there.
    pub fn refresh_model(&mut self, app: AppId, repository: &BehaviorRepository) {
        let behaviors = repository.behaviors(app);
        if behaviors.len() < self.config.min_behaviors_for_clustering {
            self.models.remove(&app.0);
            return;
        }
        let generation = behaviors.generation();
        if self
            .models
            .get(&app.0)
            .is_some_and(|m| m.generation == generation)
        {
            return; // Model is current: O(1) refresh.
        }
        behaviors.labelled_into(&mut self.labelled_scratch);
        let (model, warm_refits_since_cold) = fit_app(
            &self.config,
            self.models.get(&app.0),
            &self.labelled_scratch,
            app,
        );
        self.install(app, model, generation, warm_refits_since_cold);
    }

    /// Refreshes every application in `apps`, fanning the actual EM fits out
    /// over `pool` when one is available and more than one application needs
    /// refitting this epoch.
    ///
    /// Bit-identical to calling [`WarningSystem::refresh_model`] for each
    /// app in order: each fit is a pure function of that application's
    /// repository snapshot, its previous model and the config — applications
    /// share no state — and results are installed (and refit counters
    /// bumped) serially in input order.  The O(1) generation short-circuit
    /// runs in a serial planning pass first, so the steady-state epoch sweep
    /// still costs nothing and never touches the pool.
    pub fn refresh_models(
        &mut self,
        apps: &[AppId],
        repository: &BehaviorRepository,
        pool: Option<&WorkerPool>,
    ) {
        let pool = match pool {
            Some(pool) if pool.lanes() > 1 => pool,
            _ => {
                for &app in apps {
                    self.refresh_model(app, repository);
                }
                return;
            }
        };
        // Planning pass (serial, O(1) per unchanged app): drop
        // under-populated models, skip current generations, collect refits.
        let mut pending: Vec<(AppId, u64)> = Vec::new();
        for &app in apps {
            let behaviors = repository.behaviors(app);
            if behaviors.len() < self.config.min_behaviors_for_clustering {
                self.models.remove(&app.0);
                continue;
            }
            let generation = behaviors.generation();
            if self
                .models
                .get(&app.0)
                .is_some_and(|m| m.generation == generation)
            {
                continue;
            }
            pending.push((app, generation));
        }
        match pending.as_slice() {
            [] => {}
            [(app, _)] => self.refresh_model(*app, repository), // keep the scratch path
            _ => {
                let models = &self.models;
                let config = &self.config;
                let jobs: Vec<_> = pending
                    .iter()
                    .map(|&(app, generation)| {
                        move || {
                            let mut labelled: Vec<LabelledBehaviour> = Vec::new();
                            repository.behaviors(app).labelled_into(&mut labelled);
                            let (model, warm) = fit_app(config, models.get(&app.0), &labelled, app);
                            (app, generation, model, warm)
                        }
                    })
                    .collect();
                let fitted = pool.scatter(jobs);
                for (app, generation, model, warm_refits_since_cold) in fitted {
                    self.install(app, model, generation, warm_refits_since_cold);
                }
            }
        }
    }

    /// Installs a fitted model and updates the refit counters.
    fn install(
        &mut self,
        app: AppId,
        model: ConstrainedModel,
        generation: u64,
        warm_refits_since_cold: u64,
    ) {
        if warm_refits_since_cold == 0 {
            self.cold_refits += 1;
        } else {
            self.warm_refits += 1;
        }
        self.models.insert(
            app.0,
            AppModel {
                model,
                generation,
                warm_refits_since_cold,
            },
        );
    }

    /// `(cold, warm)` refit counts since construction — lets tests and
    /// benches verify that unchanged generations perform no work and that
    /// the warm/cold cadence follows the configured interval.
    pub fn refit_counts(&self) -> (u64, u64) {
        (self.cold_refits, self.warm_refits)
    }

    /// True when the application is still in conservative (bootstrap) mode.
    pub fn in_conservative_mode(&self, app: AppId) -> bool {
        !self.models.contains_key(&app.0)
    }

    /// Algorithm 1: classifies one VM's current behaviour.
    ///
    /// * `behavior` — the VM's normalized behaviour this epoch.
    /// * `peers` — the current behaviours of *other* VMs running the same
    ///   application (across all PMs), used for the global check.
    pub fn evaluate(
        &self,
        app: AppId,
        behavior: &BehaviorVector,
        peers: &[BehaviorVector],
    ) -> WarningDecision {
        let Some(state) = self.models.get(&app.0) else {
            return WarningDecision::Bootstrap;
        };
        // Local check: does the behaviour match a learned normal cluster
        // within the per-metric thresholds MT?
        if state.model.accepts(&behavior.values) {
            return WarningDecision::NormalLocal;
        }
        // Global check: are most peers deviating in the same way right now?
        if !peers.is_empty() {
            let similar = peers
                .iter()
                .filter(|p| behavior.max_relative_deviation(p) <= self.config.global_similarity)
                .count();
            let quorum = (peers.len() as f64 * self.config.global_quorum).ceil() as usize;
            if similar >= quorum.max(1) {
                return WarningDecision::NormalGlobal;
            }
        }
        WarningDecision::SuspectInterference
    }

    /// Number of applications with a fitted (non-conservative) model.
    pub fn modeled_apps(&self) -> usize {
        self.models.len()
    }
}

/// One application's refit, as a pure function of the config, the previous
/// model and the labelled snapshot — shared by the serial and pooled refresh
/// paths so they cannot drift apart.
fn fit_app(
    config: &WarningConfig,
    prev: Option<&AppModel>,
    labelled: &[LabelledBehaviour],
    app: AppId,
) -> (ConstrainedModel, u64) {
    let warm_source = prev.filter(|m| {
        m.warm_refits_since_cold + 1 < config.cold_refit_interval && m.model.mixture.k() > 0
    });
    match warm_source {
        Some(prev) => (
            fit_constrained_warm(
                labelled,
                &prev.model.mixture,
                config.sigma_multiplier,
                WARM_REFIT_ITERS,
            ),
            prev.warm_refits_since_cold + 1,
        ),
        None => (
            fit_constrained(
                labelled,
                config.clusters_per_app,
                config.sigma_multiplier,
                config.seed ^ app.0,
            ),
            0,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DIMENSIONS;

    fn behavior(cpi: f64, llc: f64) -> BehaviorVector {
        let mut v = vec![0.5; DIMENSIONS];
        v[0] = cpi;
        v[2] = llc;
        BehaviorVector::from_vec(&v)
    }

    /// Repository with a tight cluster of normal behaviours around
    /// (cpi=1.5, llc=0.5) and one labelled interference point far away.
    fn trained_repository(app: AppId) -> BehaviorRepository {
        let mut repo = BehaviorRepository::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            repo.record_normal(app, behavior(1.5 + jitter, 0.5 + jitter), i);
        }
        repo.record_interference(app, behavior(4.0, 6.0), 99);
        repo
    }

    #[test]
    fn unknown_app_starts_in_conservative_mode() {
        let ws = WarningSystem::with_defaults();
        let d = ws.evaluate(AppId(1), &behavior(1.5, 0.5), &[]);
        assert_eq!(d, WarningDecision::Bootstrap);
        assert!(d.triggers_analyzer());
        assert!(ws.in_conservative_mode(AppId(1)));
    }

    #[test]
    fn learned_behaviour_is_accepted_locally() {
        let app = AppId(1);
        let repo = trained_repository(app);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        assert!(!ws.in_conservative_mode(app));
        let d = ws.evaluate(app, &behavior(1.51, 0.52), &[]);
        assert_eq!(d, WarningDecision::NormalLocal);
        assert!(!d.triggers_analyzer());
    }

    #[test]
    fn interference_like_behaviour_is_escalated() {
        let app = AppId(1);
        let repo = trained_repository(app);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        let d = ws.evaluate(app, &behavior(4.0, 6.0), &[]);
        assert_eq!(d, WarningDecision::SuspectInterference);
    }

    #[test]
    fn global_quorum_downgrades_shared_deviations_to_workload_change() {
        let app = AppId(1);
        let repo = trained_repository(app);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        // A new behaviour well outside the learned clusters...
        let new_behavior = behavior(2.6, 1.8);
        // ...but most peers look exactly the same right now (a request-mix
        // change hitting every instance of the application).
        let peers = vec![
            behavior(2.62, 1.81),
            behavior(2.58, 1.79),
            behavior(2.61, 1.8),
        ];
        assert_eq!(
            ws.evaluate(app, &new_behavior, &peers),
            WarningDecision::NormalGlobal
        );
        // If only a minority of peers deviates the same way, it is suspicious.
        let minority = vec![behavior(2.6, 1.8), behavior(1.5, 0.5), behavior(1.5, 0.5)];
        assert_eq!(
            ws.evaluate(app, &new_behavior, &minority),
            WarningDecision::SuspectInterference
        );
    }

    #[test]
    fn refresh_is_a_no_op_until_new_data_arrives() {
        let app = AppId(1);
        let repo = trained_repository(app);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        let before = ws.modeled_apps();
        ws.refresh_model(app, &repo);
        assert_eq!(ws.modeled_apps(), before);
    }

    #[test]
    fn unchanged_generation_performs_no_refit() {
        let app = AppId(1);
        let mut repo = trained_repository(app);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        assert_eq!(ws.refit_counts(), (1, 0), "first refresh is a cold fit");
        // Any number of refreshes against an unchanged repository is free.
        for _ in 0..100 {
            ws.refresh_model(app, &repo);
        }
        assert_eq!(ws.refit_counts(), (1, 0), "unchanged generation refitted");
        // New data ⇒ exactly one (warm) refit.
        repo.record_normal(app, behavior(1.52, 0.51), 100);
        ws.refresh_model(app, &repo);
        ws.refresh_model(app, &repo);
        assert_eq!(ws.refit_counts(), (1, 1));
    }

    #[test]
    fn cold_refit_interval_bounds_consecutive_warm_refits() {
        let app = AppId(1);
        let mut repo = trained_repository(app);
        let mut ws = WarningSystem::new(WarningConfig {
            cold_refit_interval: 4,
            ..Default::default()
        });
        for i in 0..12u64 {
            ws.refresh_model(app, &repo);
            repo.record_normal(app, behavior(1.5, 0.5), 200 + i);
        }
        let (cold, warm) = ws.refit_counts();
        // Cadence: cold, warm, warm, warm, cold, ... — 3 of 12 are cold.
        assert_eq!((cold, warm), (3, 9));
    }

    #[test]
    fn interval_of_one_disables_warm_starts() {
        let app = AppId(1);
        let mut repo = trained_repository(app);
        let mut ws = WarningSystem::new(WarningConfig {
            cold_refit_interval: 1,
            ..Default::default()
        });
        for i in 0..5u64 {
            ws.refresh_model(app, &repo);
            repo.record_normal(app, behavior(1.5, 0.5), 200 + i);
        }
        assert_eq!(ws.refit_counts(), (5, 0));
    }

    #[test]
    fn capacity_churn_still_triggers_refits() {
        // Regression: the pre-generation staleness check compared entry
        // *counts*, so a repository at capacity (length constant, contents
        // rotating) never refreshed its model again.
        let app = AppId(3);
        let mut repo = BehaviorRepository::with_capacity(16);
        for i in 0..16u64 {
            repo.record_normal(app, behavior(1.5, 0.5), i);
        }
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        let before = ws.refit_counts();
        // The store is full: every further record evicts one entry and the
        // length stays 16, but the contents move to a new operating point.
        for i in 0..16u64 {
            repo.record_normal(app, behavior(2.5 + i as f64 * 0.01, 1.5), 100 + i);
            ws.refresh_model(app, &repo);
        }
        let after = ws.refit_counts();
        assert!(
            after.0 + after.1 > before.0 + before.1,
            "full-capacity churn never refitted: {before:?} -> {after:?}"
        );
        // And the model actually tracked the move.
        assert_eq!(
            ws.evaluate(app, &behavior(2.58, 1.5), &[]),
            WarningDecision::NormalLocal
        );
    }

    #[test]
    fn too_few_behaviours_keep_conservative_mode() {
        let app = AppId(2);
        let mut repo = BehaviorRepository::new();
        for i in 0..3 {
            repo.record_normal(app, behavior(1.5, 0.5), i);
        }
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        assert!(ws.in_conservative_mode(app));
        assert_eq!(
            ws.evaluate(app, &behavior(1.5, 0.5), &[]),
            WarningDecision::Bootstrap
        );
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        WarningSystem::new(WarningConfig {
            clusters_per_app: 0,
            ..Default::default()
        });
    }

    /// Grows `apps` distinct applications' histories in `repo` by one batch.
    fn grow(repo: &mut BehaviorRepository, apps: &[AppId], round: u64) {
        for (i, &app) in apps.iter().enumerate() {
            for j in 0..3u64 {
                let jitter = ((round + j + i as u64) % 5) as f64 * 0.01;
                repo.record_normal(
                    app,
                    behavior(1.5 + 0.2 * i as f64 + jitter, 0.5 + jitter),
                    round * 10 + j,
                );
            }
        }
    }

    #[test]
    fn pooled_refresh_is_bit_identical_to_serial_refresh() {
        let apps: Vec<AppId> = (0..6).map(AppId).collect();
        let pool = WorkerPool::new(3);
        let mut repo = BehaviorRepository::new();
        let mut serial = WarningSystem::with_defaults();
        let mut pooled = WarningSystem::with_defaults();
        for round in 0..8u64 {
            grow(&mut repo, &apps, round);
            serial.refresh_models(&apps, &repo, None);
            pooled.refresh_models(&apps, &repo, Some(&pool));
            assert_eq!(
                serial.refit_counts(),
                pooled.refit_counts(),
                "round {round}: refit accounting diverged"
            );
            // Identical decisions on a probe sweep per app — model
            // equivalence as the rest of the system observes it.
            for (i, &app) in apps.iter().enumerate() {
                assert_eq!(
                    serial.in_conservative_mode(app),
                    pooled.in_conservative_mode(app)
                );
                for probe in [
                    behavior(1.5 + 0.2 * i as f64, 0.5),
                    behavior(3.0 + 0.2 * i as f64, 4.0),
                    behavior(9.0, 9.0),
                ] {
                    assert_eq!(
                        serial.evaluate(app, &probe, &[]),
                        pooled.evaluate(app, &probe, &[]),
                        "round {round}: decision diverged for {app:?}"
                    );
                }
            }
        }
        let (_, warm) = pooled.refit_counts();
        assert!(warm > 0, "sweep never exercised the warm path");
    }

    #[test]
    fn pooled_refresh_keeps_the_generation_short_circuit() {
        let apps = [AppId(1), AppId(2)];
        let pool = WorkerPool::new(2);
        let mut repo = BehaviorRepository::new();
        grow(&mut repo, &apps, 0);
        grow(&mut repo, &apps, 1);
        grow(&mut repo, &apps, 2);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_models(&apps, &repo, Some(&pool));
        let fitted = ws.refit_counts();
        for _ in 0..100 {
            ws.refresh_models(&apps, &repo, Some(&pool));
        }
        assert_eq!(ws.refit_counts(), fitted, "unchanged generations refitted");
    }
}
