//! The warning system (§4.1, Algorithm 1).
//!
//! The warning system is DeepDive's cheap, always-on first line: every epoch
//! it reads each VM's normalized behaviour and decides between three
//! outcomes that mirror Figure 3 of the paper:
//!
//! * the behaviour falls inside a learned *normal* cluster — no action
//!   (Fig. 3a);
//! * the behaviour is new, but most other VMs running the same application
//!   moved the same way at the same time — a workload change, extend the
//!   set of normal behaviours and do not escalate (Fig. 3b);
//! * the behaviour is far from both — suspect interference and invoke the
//!   analyzer (Fig. 3c).
//!
//! Clusters and per-metric thresholds `MT` come from the constrained EM fit
//! in the `analytics` crate, re-fit whenever the repository gains new
//! verified behaviours.  Before any verified behaviour exists the system
//! runs in the paper's *conservative mode*: everything escalates, which
//! bootstraps learning and guarantees no interference goes undetected.

use std::collections::HashMap;

use analytics::constrained::{fit_constrained, ConstrainedModel};
use workloads::AppId;

use crate::metrics::BehaviorVector;
use crate::repository::BehaviorRepository;

/// Outcome of the warning system's per-epoch check for one VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarningDecision {
    /// Behaviour matches a learned normal cluster (Fig. 3a).
    NormalLocal,
    /// Behaviour is new but shared by most peers running the same code —
    /// treated as a workload change (Fig. 3b).
    NormalGlobal,
    /// Behaviour is unexplained: invoke the interference analyzer (Fig. 3c).
    SuspectInterference,
    /// No knowledge about this application yet: conservative mode, invoke the
    /// analyzer to start learning.
    Bootstrap,
}

impl WarningDecision {
    /// True when the decision requires invoking the interference analyzer.
    pub fn triggers_analyzer(&self) -> bool {
        matches!(
            self,
            WarningDecision::SuspectInterference | WarningDecision::Bootstrap
        )
    }
}

/// Configuration of the warning system.
#[derive(Debug, Clone, PartialEq)]
pub struct WarningConfig {
    /// Number of mixture components fitted per application.
    pub clusters_per_app: usize,
    /// σ-multiplier used to derive the metric thresholds `MT`.
    pub sigma_multiplier: f64,
    /// Minimum number of verified normal behaviours before leaving
    /// conservative mode.
    pub min_behaviors_for_clustering: usize,
    /// Fraction of peers that must exhibit the same new behaviour for the
    /// global check to call it a workload change.
    pub global_quorum: f64,
    /// Maximum relative deviation between this VM's behaviour and a peer's
    /// for them to count as "behaving similarly".
    pub global_similarity: f64,
    /// Seed for the clustering initialization.
    pub seed: u64,
}

impl Default for WarningConfig {
    fn default() -> Self {
        Self {
            clusters_per_app: 3,
            sigma_multiplier: 3.0,
            min_behaviors_for_clustering: 8,
            global_quorum: 0.6,
            global_similarity: 0.25,
            seed: 0xDEE9_D1DE,
        }
    }
}

/// The warning system: per-application cluster models plus the decision
/// procedure of Algorithm 1.
#[derive(Debug)]
pub struct WarningSystem {
    config: WarningConfig,
    models: HashMap<u64, ConstrainedModel>,
    /// Number of repository entries the model for each app was fitted on,
    /// used to decide when a re-fit is needed.
    fitted_on: HashMap<u64, usize>,
}

impl WarningSystem {
    /// Creates a warning system with the given configuration.
    pub fn new(config: WarningConfig) -> Self {
        assert!(config.clusters_per_app > 0, "need at least one cluster");
        assert!(
            config.sigma_multiplier > 0.0,
            "sigma multiplier must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.global_quorum),
            "quorum must be a fraction"
        );
        Self {
            config,
            models: HashMap::new(),
            fitted_on: HashMap::new(),
        }
    }

    /// Creates a warning system with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(WarningConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &WarningConfig {
        &self.config
    }

    /// Re-fits the cluster model for an application from the repository if
    /// the repository has grown since the last fit.
    pub fn refresh_model(&mut self, app: AppId, repository: &BehaviorRepository) {
        let behaviors = repository.behaviors(app);
        let n = behaviors.len();
        if n < self.config.min_behaviors_for_clustering {
            self.models.remove(&app.0);
            self.fitted_on.remove(&app.0);
            return;
        }
        if self.fitted_on.get(&app.0) == Some(&n) {
            return; // Model is current.
        }
        let model = fit_constrained(
            &behaviors.labelled(),
            self.config.clusters_per_app,
            self.config.sigma_multiplier,
            self.config.seed ^ app.0,
        );
        self.models.insert(app.0, model);
        self.fitted_on.insert(app.0, n);
    }

    /// True when the application is still in conservative (bootstrap) mode.
    pub fn in_conservative_mode(&self, app: AppId) -> bool {
        !self.models.contains_key(&app.0)
    }

    /// Algorithm 1: classifies one VM's current behaviour.
    ///
    /// * `behavior` — the VM's normalized behaviour this epoch.
    /// * `peers` — the current behaviours of *other* VMs running the same
    ///   application (across all PMs), used for the global check.
    pub fn evaluate(
        &self,
        app: AppId,
        behavior: &BehaviorVector,
        peers: &[BehaviorVector],
    ) -> WarningDecision {
        let Some(model) = self.models.get(&app.0) else {
            return WarningDecision::Bootstrap;
        };
        // Local check: does the behaviour match a learned normal cluster
        // within the per-metric thresholds MT?
        if model.accepts(&behavior.to_vec()) {
            return WarningDecision::NormalLocal;
        }
        // Global check: are most peers deviating in the same way right now?
        if !peers.is_empty() {
            let similar = peers
                .iter()
                .filter(|p| behavior.max_relative_deviation(p) <= self.config.global_similarity)
                .count();
            let quorum = (peers.len() as f64 * self.config.global_quorum).ceil() as usize;
            if similar >= quorum.max(1) {
                return WarningDecision::NormalGlobal;
            }
        }
        WarningDecision::SuspectInterference
    }

    /// Number of applications with a fitted (non-conservative) model.
    pub fn modeled_apps(&self) -> usize {
        self.models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DIMENSIONS;

    fn behavior(cpi: f64, llc: f64) -> BehaviorVector {
        let mut v = vec![0.5; DIMENSIONS];
        v[0] = cpi;
        v[2] = llc;
        BehaviorVector::from_vec(&v)
    }

    /// Repository with a tight cluster of normal behaviours around
    /// (cpi=1.5, llc=0.5) and one labelled interference point far away.
    fn trained_repository(app: AppId) -> BehaviorRepository {
        let mut repo = BehaviorRepository::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            repo.record_normal(app, behavior(1.5 + jitter, 0.5 + jitter), i);
        }
        repo.record_interference(app, behavior(4.0, 6.0), 99);
        repo
    }

    #[test]
    fn unknown_app_starts_in_conservative_mode() {
        let ws = WarningSystem::with_defaults();
        let d = ws.evaluate(AppId(1), &behavior(1.5, 0.5), &[]);
        assert_eq!(d, WarningDecision::Bootstrap);
        assert!(d.triggers_analyzer());
        assert!(ws.in_conservative_mode(AppId(1)));
    }

    #[test]
    fn learned_behaviour_is_accepted_locally() {
        let app = AppId(1);
        let repo = trained_repository(app);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        assert!(!ws.in_conservative_mode(app));
        let d = ws.evaluate(app, &behavior(1.51, 0.52), &[]);
        assert_eq!(d, WarningDecision::NormalLocal);
        assert!(!d.triggers_analyzer());
    }

    #[test]
    fn interference_like_behaviour_is_escalated() {
        let app = AppId(1);
        let repo = trained_repository(app);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        let d = ws.evaluate(app, &behavior(4.0, 6.0), &[]);
        assert_eq!(d, WarningDecision::SuspectInterference);
    }

    #[test]
    fn global_quorum_downgrades_shared_deviations_to_workload_change() {
        let app = AppId(1);
        let repo = trained_repository(app);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        // A new behaviour well outside the learned clusters...
        let new_behavior = behavior(2.6, 1.8);
        // ...but most peers look exactly the same right now (a request-mix
        // change hitting every instance of the application).
        let peers = vec![
            behavior(2.62, 1.81),
            behavior(2.58, 1.79),
            behavior(2.61, 1.8),
        ];
        assert_eq!(
            ws.evaluate(app, &new_behavior, &peers),
            WarningDecision::NormalGlobal
        );
        // If only a minority of peers deviates the same way, it is suspicious.
        let minority = vec![behavior(2.6, 1.8), behavior(1.5, 0.5), behavior(1.5, 0.5)];
        assert_eq!(
            ws.evaluate(app, &new_behavior, &minority),
            WarningDecision::SuspectInterference
        );
    }

    #[test]
    fn refresh_is_a_no_op_until_new_data_arrives() {
        let app = AppId(1);
        let repo = trained_repository(app);
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        let before = ws.modeled_apps();
        ws.refresh_model(app, &repo);
        assert_eq!(ws.modeled_apps(), before);
    }

    #[test]
    fn too_few_behaviours_keep_conservative_mode() {
        let app = AppId(2);
        let mut repo = BehaviorRepository::new();
        for i in 0..3 {
            repo.record_normal(app, behavior(1.5, 0.5), i);
        }
        let mut ws = WarningSystem::with_defaults();
        ws.refresh_model(app, &repo);
        assert!(ws.in_conservative_mode(app));
        assert_eq!(
            ws.evaluate(app, &behavior(1.5, 0.5), &[]),
            WarningDecision::Bootstrap
        );
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        WarningSystem::new(WarningConfig {
            clusters_per_app: 0,
            ..Default::default()
        });
    }
}
