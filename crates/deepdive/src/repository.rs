//! The VM-behaviour repository.
//!
//! "In the absence of interference, the analyzer updates the repository of
//! VM behaviors with this new information" (§4).  The repository is keyed by
//! application (VMs running the same code share behaviours — that is what
//! makes the global information check and the Zipf scalability results work)
//! and stores two kinds of entries: verified *normal* behaviours, which seed
//! the warning system's clusters, and *interference* behaviours, which
//! become cannot-link constraints.
//!
//! Section 5.5 notes the footprint is tiny — "less than 5 KB to record the
//! VM's behavior for the whole day" even for a VM analyzed hourly — and this
//! module exposes the same accounting so the memory-overhead table can be
//! regenerated.

use std::collections::HashMap;

use analytics::constrained::LabelledBehaviour;
use serde::{Deserialize, Serialize};
use workloads::AppId;

use crate::metrics::BehaviorVector;

/// A stored behaviour together with its label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredBehavior {
    /// The normalized behaviour vector.
    pub behavior: BehaviorVector,
    /// True when the analyzer confirmed this behaviour was interference.
    pub interference: bool,
    /// Epoch at which the behaviour was recorded.
    pub epoch: u64,
}

/// Per-application behaviour store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AppBehaviors {
    entries: Vec<StoredBehavior>,
}

impl AppBehaviors {
    /// Verified-normal behaviours only.
    pub fn normals(&self) -> Vec<&BehaviorVector> {
        self.entries
            .iter()
            .filter(|e| !e.interference)
            .map(|e| &e.behavior)
            .collect()
    }

    /// Confirmed-interference behaviours only.
    pub fn interference(&self) -> Vec<&BehaviorVector> {
        self.entries
            .iter()
            .filter(|e| e.interference)
            .map(|e| &e.behavior)
            .collect()
    }

    /// All entries as labelled points for the constrained clustering code.
    pub fn labelled(&self) -> Vec<LabelledBehaviour> {
        self.entries
            .iter()
            .map(|e| LabelledBehaviour {
                metrics: e.behavior.to_vec(),
                interference: e.interference,
            })
            .collect()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The repository: per-application behaviour history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BehaviorRepository {
    apps: HashMap<u64, AppBehaviors>,
    /// Maximum entries retained per application (oldest evicted first).
    capacity_per_app: usize,
}

/// Default retention: at one verified behaviour per hour this is roughly two
/// weeks of history, well under the 5 KB/day budget of §5.5.
pub const DEFAULT_CAPACITY_PER_APP: usize = 512;

impl BehaviorRepository {
    /// Creates an empty repository with the default per-application capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY_PER_APP)
    }

    /// Creates an empty repository with an explicit per-application capacity.
    ///
    /// # Panics
    /// Panics if the capacity is zero.
    pub fn with_capacity(capacity_per_app: usize) -> Self {
        assert!(capacity_per_app > 0, "capacity must be positive");
        Self {
            apps: HashMap::new(),
            capacity_per_app,
        }
    }

    /// Records a verified-normal behaviour for an application.
    pub fn record_normal(&mut self, app: AppId, behavior: BehaviorVector, epoch: u64) {
        self.record(app, behavior, false, epoch);
    }

    /// Records a confirmed-interference behaviour for an application.
    pub fn record_interference(&mut self, app: AppId, behavior: BehaviorVector, epoch: u64) {
        self.record(app, behavior, true, epoch);
    }

    fn record(&mut self, app: AppId, behavior: BehaviorVector, interference: bool, epoch: u64) {
        debug_assert!(behavior.is_well_formed(), "storing malformed behaviour");
        let store = self.apps.entry(app.0).or_default();
        store.entries.push(StoredBehavior {
            behavior,
            interference,
            epoch,
        });
        while store.entries.len() > self.capacity_per_app {
            store.entries.remove(0);
        }
    }

    /// Behaviours known for an application (empty store if never seen).
    pub fn behaviors(&self, app: AppId) -> AppBehaviors {
        self.apps.get(&app.0).cloned().unwrap_or_default()
    }

    /// Number of verified-normal behaviours for an application.
    pub fn normal_count(&self, app: AppId) -> usize {
        self.apps
            .get(&app.0)
            .map(|s| s.entries.iter().filter(|e| !e.interference).count())
            .unwrap_or(0)
    }

    /// True when the application has never been analyzed.
    pub fn is_unknown(&self, app: AppId) -> bool {
        self.apps.get(&app.0).map(|s| s.is_empty()).unwrap_or(true)
    }

    /// Applications with at least one stored behaviour.
    pub fn known_apps(&self) -> Vec<AppId> {
        let mut apps: Vec<AppId> = self.apps.keys().map(|k| AppId(*k)).collect();
        apps.sort();
        apps
    }

    /// Approximate in-memory footprint of one application's history, in
    /// bytes (behaviour payload + label + epoch).  This is the quantity the
    /// paper bounds at "less than 5 KB ... for the whole day" (§5.5).
    pub fn footprint_bytes(&self, app: AppId) -> usize {
        self.apps
            .get(&app.0)
            .map(|s| {
                s.entries
                    .iter()
                    .map(|e| {
                        e.behavior.footprint_bytes()
                            + std::mem::size_of::<bool>()
                            + std::mem::size_of::<u64>()
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total footprint across all applications, in bytes.
    pub fn total_footprint_bytes(&self) -> usize {
        self.known_apps()
            .iter()
            .map(|a| self.footprint_bytes(*a))
            .sum()
    }

    /// Serializes the repository to JSON (the durable NoSQL-store stand-in).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("repository serializes")
    }

    /// Restores a repository from JSON produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DIMENSIONS;

    fn behavior(v: f64) -> BehaviorVector {
        BehaviorVector::from_vec(&[v; DIMENSIONS])
    }

    #[test]
    fn records_and_separates_normal_from_interference() {
        let mut repo = BehaviorRepository::new();
        let app = AppId(3);
        assert!(repo.is_unknown(app));
        repo.record_normal(app, behavior(1.0), 0);
        repo.record_normal(app, behavior(1.1), 1);
        repo.record_interference(app, behavior(9.0), 2);
        assert!(!repo.is_unknown(app));
        assert_eq!(repo.normal_count(app), 2);
        let stored = repo.behaviors(app);
        assert_eq!(stored.normals().len(), 2);
        assert_eq!(stored.interference().len(), 1);
        assert_eq!(stored.labelled().len(), 3);
    }

    #[test]
    fn capacity_evicts_oldest_entries() {
        let mut repo = BehaviorRepository::with_capacity(3);
        let app = AppId(1);
        for i in 0..5 {
            repo.record_normal(app, behavior(i as f64), i);
        }
        let stored = repo.behaviors(app);
        assert_eq!(stored.len(), 3);
        assert_eq!(stored.normals()[0].values[0], 2.0);
    }

    #[test]
    fn unknown_apps_report_empty_behaviors() {
        let repo = BehaviorRepository::new();
        assert!(repo.behaviors(AppId(9)).is_empty());
        assert_eq!(repo.normal_count(AppId(9)), 0);
        assert_eq!(repo.footprint_bytes(AppId(9)), 0);
    }

    #[test]
    fn daily_footprint_stays_under_paper_budget() {
        // A VM experiencing interference every hour stores 24 behaviours per
        // day; the paper bounds this at 5 KB (§5.5).
        let mut repo = BehaviorRepository::new();
        let app = AppId(7);
        for hour in 0..24 {
            repo.record_normal(app, behavior(hour as f64), hour * 3_600);
        }
        let bytes = repo.footprint_bytes(app);
        assert!(
            bytes < 5 * 1024,
            "daily footprint {bytes} bytes exceeds 5 KB"
        );
        assert!(bytes > 0);
    }

    #[test]
    fn known_apps_are_sorted_and_complete() {
        let mut repo = BehaviorRepository::new();
        repo.record_normal(AppId(5), behavior(1.0), 0);
        repo.record_normal(AppId(2), behavior(1.0), 0);
        assert_eq!(repo.known_apps(), vec![AppId(2), AppId(5)]);
        assert_eq!(
            repo.total_footprint_bytes(),
            repo.footprint_bytes(AppId(2)) + repo.footprint_bytes(AppId(5))
        );
    }

    #[test]
    fn json_round_trip_preserves_contents() {
        let mut repo = BehaviorRepository::new();
        repo.record_normal(AppId(1), behavior(1.5), 3);
        repo.record_interference(AppId(1), behavior(8.0), 4);
        let restored = BehaviorRepository::from_json(&repo.to_json()).unwrap();
        assert_eq!(restored.behaviors(AppId(1)), repo.behaviors(AppId(1)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BehaviorRepository::with_capacity(0);
    }
}
