//! The VM-behaviour repository.
//!
//! "In the absence of interference, the analyzer updates the repository of
//! VM behaviors with this new information" (§4).  The repository is keyed by
//! application (VMs running the same code share behaviours — that is what
//! makes the global information check and the Zipf scalability results work)
//! and stores two kinds of entries: verified *normal* behaviours, which seed
//! the warning system's clusters, and *interference* behaviours, which
//! become cannot-link constraints.
//!
//! Section 5.5 notes the footprint is tiny — "less than 5 KB to record the
//! VM's behavior for the whole day" even for a VM analyzed hourly — and this
//! module exposes the same accounting so the memory-overhead table can be
//! regenerated.

use std::collections::{HashMap, VecDeque};

use analytics::constrained::LabelledBehaviour;
use serde::{Deserialize, Serialize};
use workloads::AppId;

use crate::metrics::BehaviorVector;

/// A stored behaviour together with its label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredBehavior {
    /// The normalized behaviour vector.
    pub behavior: BehaviorVector,
    /// True when the analyzer confirmed this behaviour was interference.
    pub interference: bool,
    /// Epoch at which the behaviour was recorded.
    pub epoch: u64,
}

/// Per-application behaviour store.
///
/// Entries live in a ring buffer so capacity eviction is O(1), and every
/// mutation bumps a [generation counter](Self::generation) so readers (the
/// warning system) can detect staleness in O(1) without comparing contents.
/// The generation counts *records*, not retained entries: once the store is
/// at capacity its length stops changing but the generation keeps advancing,
/// which is what makes the staleness check sound.
#[derive(Debug, Clone, Default)]
pub struct AppBehaviors {
    entries: VecDeque<StoredBehavior>,
    generation: u64,
}

/// An always-empty store, returned by [`BehaviorRepository::behaviors`] for
/// applications that were never analyzed (so the accessor can always hand
/// out a reference instead of cloning).
static EMPTY_APP_BEHAVIORS: AppBehaviors = AppBehaviors {
    entries: VecDeque::new(),
    generation: 0,
};

impl AppBehaviors {
    /// Verified-normal behaviours only.
    pub fn normals(&self) -> Vec<&BehaviorVector> {
        self.entries
            .iter()
            .filter(|e| !e.interference)
            .map(|e| &e.behavior)
            .collect()
    }

    /// Confirmed-interference behaviours only.
    pub fn interference(&self) -> Vec<&BehaviorVector> {
        self.entries
            .iter()
            .filter(|e| e.interference)
            .map(|e| &e.behavior)
            .collect()
    }

    /// All entries as labelled points for the constrained clustering code.
    ///
    /// Allocates a fresh vector per call; the hot path uses
    /// [`Self::labelled_into`] with a reused buffer instead.
    pub fn labelled(&self) -> Vec<LabelledBehaviour> {
        let mut out = Vec::new();
        self.labelled_into(&mut out);
        out
    }

    /// Fills `out` with the labelled points, reusing both the outer buffer
    /// and the per-entry metric vectors already allocated in it, so repeated
    /// refreshes through the same scratch buffer stop allocating once the
    /// buffer has grown to the store's size.
    pub fn labelled_into(&self, out: &mut Vec<LabelledBehaviour>) {
        out.truncate(self.entries.len());
        let reused = out.len();
        for (slot, e) in out.iter_mut().zip(self.entries.iter()) {
            slot.metrics.clear();
            slot.metrics.extend_from_slice(&e.behavior.values);
            slot.interference = e.interference;
        }
        for e in self.entries.iter().skip(reused) {
            out.push(LabelledBehaviour {
                metrics: e.behavior.to_vec(),
                interference: e.interference,
            });
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Monotonic mutation counter: bumped on every record, including records
    /// that evicted an old entry.  Equal generations imply identical
    /// contents, so a reader can skip re-processing in O(1).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

// The generation counter is bookkeeping, not content: two stores holding
// the same entries are equal regardless of how many evictions it took each
// of them to get there.
impl PartialEq for AppBehaviors {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

// The entries keep the pre-ring-buffer `"entries": [...]` layout (a
// `VecDeque` serializes as a plain JSON array).  The generation counter is
// persisted too, so "equal generations imply identical contents" holds
// across a save/restore: a reader (e.g. a live `WarningSystem`) that cached
// state at generation G stays correct against the restored store, because
// generation G still names exactly the contents it was fitted on and any
// post-restore record moves past it.  Restoring at `entries.len()` instead
// could *re-collide* with a pre-save generation after evictions.  Legacy
// payloads without the field fall back to the entry count.
impl Serialize for AppBehaviors {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("entries".to_string(), self.entries.to_value()),
            ("generation".to_string(), self.generation.to_value()),
        ])
    }
}

impl Deserialize for AppBehaviors {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries: VecDeque<StoredBehavior> = Deserialize::from_value(
            v.get("entries")
                .ok_or_else(|| serde::Error::missing_field("AppBehaviors", "entries"))?,
        )?;
        let generation = match v.get("generation") {
            Some(g) => Deserialize::from_value(g)?,
            None => entries.len() as u64,
        };
        Ok(Self {
            entries,
            generation,
        })
    }
}

/// The repository: per-application behaviour history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BehaviorRepository {
    apps: HashMap<u64, AppBehaviors>,
    /// Maximum entries retained per application (oldest evicted first).
    capacity_per_app: usize,
}

/// Default retention: at one verified behaviour per hour this is roughly two
/// weeks of history, well under the 5 KB/day budget of §5.5.
pub const DEFAULT_CAPACITY_PER_APP: usize = 512;

impl BehaviorRepository {
    /// Creates an empty repository with the default per-application capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY_PER_APP)
    }

    /// Creates an empty repository with an explicit per-application capacity.
    ///
    /// # Panics
    /// Panics if the capacity is zero.
    pub fn with_capacity(capacity_per_app: usize) -> Self {
        assert!(capacity_per_app > 0, "capacity must be positive");
        Self {
            apps: HashMap::new(),
            capacity_per_app,
        }
    }

    /// Records a verified-normal behaviour for an application.
    pub fn record_normal(&mut self, app: AppId, behavior: BehaviorVector, epoch: u64) {
        self.record(app, behavior, false, epoch);
    }

    /// Records a confirmed-interference behaviour for an application.
    pub fn record_interference(&mut self, app: AppId, behavior: BehaviorVector, epoch: u64) {
        self.record(app, behavior, true, epoch);
    }

    fn record(&mut self, app: AppId, behavior: BehaviorVector, interference: bool, epoch: u64) {
        debug_assert!(behavior.is_well_formed(), "storing malformed behaviour");
        let store = self.apps.entry(app.0).or_default();
        store.entries.push_back(StoredBehavior {
            behavior,
            interference,
            epoch,
        });
        while store.entries.len() > self.capacity_per_app {
            store.entries.pop_front();
        }
        store.generation += 1;
    }

    /// Behaviours known for an application (a shared empty store if never
    /// seen).  Borrowed, not cloned: callers read the history in place.
    pub fn behaviors(&self, app: AppId) -> &AppBehaviors {
        self.apps.get(&app.0).unwrap_or(&EMPTY_APP_BEHAVIORS)
    }

    /// The application's mutation generation (0 if never seen) — the O(1)
    /// staleness check backing [`crate::warning::WarningSystem::refresh_model`].
    pub fn generation(&self, app: AppId) -> u64 {
        self.apps.get(&app.0).map(|s| s.generation).unwrap_or(0)
    }

    /// Number of verified-normal behaviours for an application.
    pub fn normal_count(&self, app: AppId) -> usize {
        self.apps
            .get(&app.0)
            .map(|s| s.entries.iter().filter(|e| !e.interference).count())
            .unwrap_or(0)
    }

    /// True when the application has never been analyzed.
    pub fn is_unknown(&self, app: AppId) -> bool {
        self.apps.get(&app.0).map(|s| s.is_empty()).unwrap_or(true)
    }

    /// Applications with at least one stored behaviour, in ascending id
    /// order (never hash order — callers sum footprints and drive figure
    /// sweeps off this list).
    pub fn known_apps(&self) -> Vec<AppId> {
        // Hash-order collection, sorted on the next line.  simlint: order-independent
        let mut apps: Vec<AppId> = self.apps.keys().map(|k| AppId(*k)).collect();
        apps.sort();
        apps
    }

    /// Approximate in-memory footprint of one application's history, in
    /// bytes (behaviour payload + label + epoch).  This is the quantity the
    /// paper bounds at "less than 5 KB ... for the whole day" (§5.5).
    pub fn footprint_bytes(&self, app: AppId) -> usize {
        self.apps
            .get(&app.0)
            .map(|s| {
                s.entries
                    .iter()
                    .map(|e| {
                        e.behavior.footprint_bytes()
                            + std::mem::size_of::<bool>()
                            + std::mem::size_of::<u64>()
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total footprint across all applications, in bytes.
    pub fn total_footprint_bytes(&self) -> usize {
        self.known_apps()
            .iter()
            .map(|a| self.footprint_bytes(*a))
            .sum()
    }

    /// Serializes the repository to JSON (the durable NoSQL-store stand-in).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("repository serializes")
    }

    /// Restores a repository from JSON produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DIMENSIONS;

    fn behavior(v: f64) -> BehaviorVector {
        BehaviorVector::from_vec(&[v; DIMENSIONS])
    }

    #[test]
    fn records_and_separates_normal_from_interference() {
        let mut repo = BehaviorRepository::new();
        let app = AppId(3);
        assert!(repo.is_unknown(app));
        repo.record_normal(app, behavior(1.0), 0);
        repo.record_normal(app, behavior(1.1), 1);
        repo.record_interference(app, behavior(9.0), 2);
        assert!(!repo.is_unknown(app));
        assert_eq!(repo.normal_count(app), 2);
        let stored = repo.behaviors(app);
        assert_eq!(stored.normals().len(), 2);
        assert_eq!(stored.interference().len(), 1);
        assert_eq!(stored.labelled().len(), 3);
    }

    #[test]
    fn capacity_evicts_oldest_entries() {
        let mut repo = BehaviorRepository::with_capacity(3);
        let app = AppId(1);
        for i in 0..5 {
            repo.record_normal(app, behavior(i as f64), i);
        }
        let stored = repo.behaviors(app);
        assert_eq!(stored.len(), 3);
        assert_eq!(stored.normals()[0].values[0], 2.0);
    }

    #[test]
    fn unknown_apps_report_empty_behaviors() {
        let repo = BehaviorRepository::new();
        assert!(repo.behaviors(AppId(9)).is_empty());
        assert_eq!(repo.normal_count(AppId(9)), 0);
        assert_eq!(repo.footprint_bytes(AppId(9)), 0);
    }

    #[test]
    fn daily_footprint_stays_under_paper_budget() {
        // A VM experiencing interference every hour stores 24 behaviours per
        // day; the paper bounds this at 5 KB (§5.5).
        let mut repo = BehaviorRepository::new();
        let app = AppId(7);
        for hour in 0..24 {
            repo.record_normal(app, behavior(hour as f64), hour * 3_600);
        }
        let bytes = repo.footprint_bytes(app);
        assert!(
            bytes < 5 * 1024,
            "daily footprint {bytes} bytes exceeds 5 KB"
        );
        assert!(bytes > 0);
    }

    #[test]
    fn known_apps_are_sorted_and_complete() {
        let mut repo = BehaviorRepository::new();
        repo.record_normal(AppId(5), behavior(1.0), 0);
        repo.record_normal(AppId(2), behavior(1.0), 0);
        assert_eq!(repo.known_apps(), vec![AppId(2), AppId(5)]);
        assert_eq!(
            repo.total_footprint_bytes(),
            repo.footprint_bytes(AppId(2)) + repo.footprint_bytes(AppId(5))
        );
    }

    #[test]
    fn generation_advances_on_every_record_even_at_capacity() {
        let mut repo = BehaviorRepository::with_capacity(2);
        let app = AppId(4);
        assert_eq!(repo.generation(app), 0);
        for i in 0..5u64 {
            repo.record_normal(app, behavior(i as f64), i);
            assert_eq!(repo.generation(app), i + 1);
        }
        // Length saturates at capacity, but the generation keeps moving —
        // that is what lets readers detect churn in a full store.
        assert_eq!(repo.behaviors(app).len(), 2);
        assert_eq!(repo.behaviors(app).generation(), 5);
    }

    #[test]
    fn labelled_into_reuses_buffers_and_matches_labelled() {
        let mut repo = BehaviorRepository::new();
        let app = AppId(6);
        repo.record_normal(app, behavior(1.0), 0);
        repo.record_interference(app, behavior(7.0), 1);
        let mut buf = Vec::new();
        repo.behaviors(app).labelled_into(&mut buf);
        assert_eq!(buf, repo.behaviors(app).labelled());
        // Refill through the same buffer after growth: contents stay exact.
        repo.record_normal(app, behavior(2.0), 2);
        repo.behaviors(app).labelled_into(&mut buf);
        assert_eq!(buf, repo.behaviors(app).labelled());
        // Shrunk source (fresh app) truncates the buffer.
        let other = AppId(7);
        repo.record_normal(other, behavior(3.0), 3);
        repo.behaviors(other).labelled_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf, repo.behaviors(other).labelled());
    }

    #[test]
    fn equality_ignores_the_generation_counter() {
        let mut evicted = BehaviorRepository::with_capacity(1);
        let mut fresh = BehaviorRepository::with_capacity(1);
        let app = AppId(8);
        evicted.record_normal(app, behavior(0.0), 0);
        evicted.record_normal(app, behavior(5.0), 1);
        fresh.record_normal(app, behavior(5.0), 1);
        assert_eq!(evicted.behaviors(app), fresh.behaviors(app));
        assert_ne!(
            evicted.behaviors(app).generation(),
            fresh.behaviors(app).generation()
        );
    }

    #[test]
    fn json_round_trip_preserves_contents() {
        let mut repo = BehaviorRepository::new();
        repo.record_normal(AppId(1), behavior(1.5), 3);
        repo.record_interference(AppId(1), behavior(8.0), 4);
        let restored = BehaviorRepository::from_json(&repo.to_json()).unwrap();
        assert_eq!(restored.behaviors(AppId(1)), repo.behaviors(AppId(1)));
    }

    #[test]
    fn json_round_trip_preserves_the_generation_counter() {
        // Evictions push the generation past the length; a restore must not
        // rewind it, or a reader's cached generation could collide with
        // different contents after post-restore records.
        let mut repo = BehaviorRepository::with_capacity(2);
        for i in 0..5u64 {
            repo.record_normal(AppId(1), behavior(i as f64), i);
        }
        let restored = BehaviorRepository::from_json(&repo.to_json()).unwrap();
        assert_eq!(restored.generation(AppId(1)), repo.generation(AppId(1)));
        assert_eq!(restored.generation(AppId(1)), 5);
    }

    #[test]
    fn legacy_json_without_generation_still_parses() {
        let mut repo = BehaviorRepository::new();
        repo.record_normal(AppId(1), behavior(1.0), 0);
        // Strip the generation field to emulate a pre-counter payload.
        let legacy = repo.to_json().replace(",\"generation\":1", "");
        assert!(!legacy.contains("generation"));
        let restored = BehaviorRepository::from_json(&legacy).unwrap();
        assert_eq!(restored.behaviors(AppId(1)), repo.behaviors(AppId(1)));
        assert_eq!(restored.generation(AppId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BehaviorRepository::with_capacity(0);
    }
}
