//! The end-to-end DeepDive controller.
//!
//! This module wires the warning system, the interference analyzer and the
//! placement manager into the loop of Figure 2: every epoch it receives the
//! cluster's per-VM reports, feeds counters to the warning system, invokes
//! the analyzer when a behaviour cannot be explained, updates the behaviour
//! repository with whatever the analyzer verified, and — when interference
//! is confirmed — asks the placement manager for a destination and migrates
//! the culprit VM.
//!
//! The controller also keeps the bookkeeping the evaluation needs: number of
//! analyzer invocations, confirmed detections, false alarms, migrations and
//! accumulated profiling time (Figs. 8 and 12).
//!
//! On heterogeneous clusters the controller holds a [`SandboxFleet`] — one
//! sandbox pool per machine model — and routes every analysis to the pool
//! matching the victim's host, so isolation counters are never compared
//! across machine models.  Profiling time is accounted both in total and
//! per pool ([`DeepDive::profiling_seconds_by_pool`], the per-farm load of
//! the Figs. 12–14 queueing picture), and analyses that had to fall back to
//! a mismatched pool are counted in
//! [`DeepDiveStats::sandbox_spec_fallbacks`].  Build the controller with
//! [`DeepDive::for_cluster`] to derive the fleet from the cluster's actual
//! machine models.
//!
//! ## Parallelism
//!
//! The control plane's two heavyweight jobs are embarrassingly parallel and
//! can ride the epoch engine's persistent [`WorkerPool`]
//! ([`DeepDive::use_worker_pool`]): per-application model refits fan out in
//! [`WarningSystem::refresh_models`] (applications are independent), and
//! per-machine-model synthetic-benchmark training fans out in
//! [`DeepDive::pretrain_benchmarks`] / lazily in the mitigation path (models
//! are independent, and each training sample has its own counter-derived
//! RNG stream).  Every pooled path is **bit-identical** to its serial
//! equivalent — the pool is a throughput knob, never a results knob — and a
//! panic in pooled work follows the engine's policy (barrier first, payload
//! re-raised on the controller's thread, workers survive; see
//! [`cloudsim::pool`]).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use cloudsim::cluster::ClusterError;
use cloudsim::pm::VmEpochReport;
use cloudsim::pool::WorkerPool;
use cloudsim::{Cluster, PmId, RequestProxy, SandboxFleet, VmId};
use hwsim::{CounterSnapshot, MachineSpec};
use serde::{Deserialize, Serialize};
use workloads::AppId;

use crate::analyzer::{AnalysisResult, InterferenceAnalyzer};
use crate::cpi_stack::Resource;
use crate::metrics::BehaviorVector;
use crate::placement::{CandidateMachine, PlacementManager, ResidentVm};
use crate::repository::BehaviorRepository;
use crate::synthetic::SyntheticBenchmark;
use crate::warning::{WarningConfig, WarningDecision, WarningSystem};

/// Configuration of the end-to-end controller.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepDiveConfig {
    /// Operator-defined performance threshold: degradations above this are
    /// treated as interference worth acting on (§4.2).
    pub performance_threshold: f64,
    /// Warning-system configuration.
    pub warning: WarningConfig,
    /// Number of recent epochs replayed in the sandbox per analysis.
    pub analysis_window: usize,
    /// Epochs to wait after analyzing a VM before analyzing it again
    /// (a simple controller against oscillating invocations, §4.4).
    pub analysis_cooldown: u64,
    /// Epochs to wait before re-analyzing a VM whose interference was just
    /// *confirmed*.  Re-confirming an ongoing episode is pure overhead, so
    /// this is typically several times the ordinary cooldown.
    pub confirmed_cooldown: u64,
    /// Whether confirmed interference triggers an automatic migration.
    pub auto_migrate: bool,
    /// Maximum predicted interference accepted at a migration destination.
    pub acceptable_destination_interference: f64,
    /// Whether the global-information check may consult peer VMs running the
    /// same application (disable to reproduce the "local only" curves).
    pub use_global_information: bool,
    /// Training samples for the synthetic benchmark (trained lazily on the
    /// first placement decision).
    pub synthetic_training_samples: usize,
    /// RNG seed for the synthetic benchmark training.
    pub seed: u64,
    /// Epochs a warning may wait for its sandbox pool to come back from an
    /// outage before the controller gives up on analyzing and falls back to
    /// a warning-only (degraded) decision.
    pub analysis_deferral_epochs: u64,
    /// Retry budget for failed mitigation migrations (transient failures
    /// and full destinations back off exponentially, then give up).
    pub migration_retry_attempts: u32,
    /// Failure-domain spread preference for mitigation migrations: with
    /// `Some(topology)`, acceptable destinations outside the afflicted
    /// machine's power domain win over same-domain ones (see
    /// [`PlacementManager::with_spread`]).  `None` (the default) picks
    /// purely by predicted interference.
    pub spread_topology: Option<cloudsim::Topology>,
}

impl Default for DeepDiveConfig {
    fn default() -> Self {
        Self {
            performance_threshold: 0.15,
            warning: WarningConfig::default(),
            analysis_window: 5,
            analysis_cooldown: 30,
            confirmed_cooldown: 60,
            auto_migrate: true,
            acceptable_destination_interference: 0.15,
            use_global_information: true,
            synthetic_training_samples: 150,
            seed: 0xDEE9,
            analysis_deferral_epochs: 12,
            migration_retry_attempts: 3,
            spread_topology: None,
        }
    }
}

/// Counters the evaluation harness reads after (or during) a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeepDiveStats {
    /// Epoch-level warning evaluations performed.
    pub evaluations: u64,
    /// Analyzer invocations (bootstrap + suspected interference).
    pub analyzer_invocations: u64,
    /// Analyses that confirmed interference above the threshold.
    pub interference_confirmed: u64,
    /// Analyses that turned out to be false alarms (workload changes).
    pub false_alarms: u64,
    /// Migrations executed.
    pub migrations: u64,
    /// Total sandbox/profiling time consumed, in seconds (Fig. 12's y-axis).
    pub profiling_seconds: f64,
    /// Behaviours accepted via the global-information check.
    pub global_matches: u64,
    /// Analyses whose victim was hosted on a machine model with no matching
    /// sandbox pool, so the replay fell back to the fleet's first pool and
    /// compared counters across models.  Nonzero means biased degradation
    /// estimates; a fleet built with [`DeepDive::for_cluster`] keeps this at
    /// zero by construction.
    pub sandbox_spec_fallbacks: u64,
    /// Analyses deferred because the victim's sandbox pool was inside an
    /// outage window (each deferral episode is counted once).
    pub analyses_deferred: u64,
    /// Deferred analyses whose deadline expired with the pool still down:
    /// the controller fell back to a warning-only decision instead of
    /// analyzing against the wrong pool.
    pub degraded_decisions: u64,
    /// Mitigation migrations re-scheduled with backoff after a transient
    /// failure or a full destination.
    pub migration_retries: u64,
}

/// Events the controller emits each epoch, for logging and for the benches'
/// detection-rate accounting.
///
/// The `Analyzed` variant carries a full [`AnalysisResult`] and dwarfs the
/// others; events are transient per-epoch values that callers consume
/// immediately, so boxing it would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum EpochEvent {
    /// The analyzer ran for a VM and produced a result.
    Analyzed {
        /// The VM that was analyzed.
        vm: VmId,
        /// What the warning system said to trigger the analysis.
        trigger: WarningDecision,
        /// The analyzer's verdict.
        result: AnalysisResult,
    },
    /// A VM was migrated to mitigate confirmed interference.
    Migrated {
        /// The migrated VM.
        vm: VmId,
        /// Source machine.
        from: PmId,
        /// Destination machine.
        to: PmId,
        /// The culprit resource that motivated the move.
        culprit: Resource,
    },
    /// A migration was recommended but could not be executed.
    MigrationSkipped {
        /// The VM that should have moved.
        vm: VmId,
        /// Why the migration did not happen.
        reason: String,
    },
    /// A warning escalated to analysis, but the victim's sandbox pool is
    /// inside an outage window: the analysis waits for the pool (until
    /// `deadline`) instead of replaying against the wrong hardware.
    AnalysisDeferred {
        /// The VM whose analysis is waiting.
        vm: VmId,
        /// Epoch at which the controller stops waiting and degrades.
        deadline: u64,
    },
    /// A deferred analysis hit its deadline with the pool still down; the
    /// controller recorded a warning-only (degraded) decision and applied
    /// the ordinary cooldown instead of analyzing or panicking.
    AnalysisDegraded {
        /// The VM whose analysis was abandoned.
        vm: VmId,
    },
}

/// An analysis parked while the victim's sandbox pool rides out an outage
/// window.
#[derive(Debug, Clone, Copy)]
struct DeferredAnalysis {
    vm: VmId,
    /// Epoch at which waiting turns into a degraded (warning-only) decision.
    deadline: u64,
}

/// A mitigation migration parked for a backed-off retry after a transient
/// failure or a full destination.
#[derive(Debug, Clone, Copy)]
struct PendingMigration {
    /// The interference victim whose episode is being mitigated (the VM to
    /// move is re-decided from fresh reports at retry time).
    victim: VmId,
    culprit: Resource,
    /// Attempts already consumed, the original try included.
    attempts: u32,
    /// Earliest epoch the retry may run.
    next_epoch: u64,
}

/// The end-to-end DeepDive system.
pub struct DeepDive {
    config: DeepDiveConfig,
    warning: WarningSystem,
    analyzer: InterferenceAnalyzer,
    repository: BehaviorRepository,
    proxy: RequestProxy,
    /// One sandbox pool per machine model; each analysis replays in the pool
    /// matching the victim's host so counters are never compared across
    /// models (a uniform fleet reproduces the paper's single-pool setup).
    fleet: SandboxFleet,
    placement: PlacementManager,
    /// One trained synthetic benchmark per machine model (keyed by spec
    /// name), trained lazily the first time a placement decision needs it.
    /// A `BTreeMap` so that if per-model iteration ever reaches the worker
    /// pool or an RNG draw, the order is the key order, never hash order.
    synthetic: BTreeMap<String, SyntheticBenchmark>,
    /// Profiling seconds consumed per sandbox pool, parallel to
    /// `fleet.pools()` — the per-farm load the Figs. 12–14 queueing
    /// experiments size profiling capacity from.
    profiling_by_pool: Vec<f64>,
    stats: DeepDiveStats,
    recent_counters: HashMap<VmId, VecDeque<CounterSnapshot>>,
    cooldown_until: HashMap<VmId, u64>,
    /// Counter-derived fault schedule shared with the datacenter service;
    /// `None` (or a disabled plane) leaves every degradation path inert.
    fault_plane: Option<cloudsim::FaultPlane>,
    /// Analyses waiting out a sandbox-pool outage, in deferral order.
    deferred: Vec<DeferredAnalysis>,
    /// Mitigation migrations awaiting a backed-off retry, in schedule order.
    pending_migrations: Vec<PendingMigration>,
    /// Persistent worker pool the controller fans independent work over —
    /// per-application model refits and synthetic-benchmark training.
    /// Typically the epoch engine's own pool
    /// ([`DeepDive::use_worker_pool`]), so stepping and the control plane
    /// share one set of threads; `None` keeps every path serial.  Results
    /// are bit-identical either way.
    pool: Option<Arc<WorkerPool>>,
    // Reusable per-epoch scratch: cleared (not dropped) every epoch so the
    // steady-state warning path performs no heap allocation.
    /// Current behaviour of every reporting VM.
    behavior_scratch: HashMap<VmId, BehaviorVector>,
    /// Reporting VMs grouped by application (the global-information index).
    by_app_scratch: HashMap<AppId, Vec<VmId>>,
    /// Applications reporting this epoch (the refresh sweep's work list).
    apps_scratch: Vec<AppId>,
    /// Same-application peer behaviours for the VM under evaluation.
    peer_scratch: Vec<BehaviorVector>,
    /// Analysis window handed to the interference analyzer.
    window_scratch: Vec<CounterSnapshot>,
}

/// Machines per pool when the fleet is derived from a cluster
/// ([`DeepDive::for_cluster`]); matches [`cloudsim::Sandbox::xeon_pool`]'s
/// historical default so uniform clusters behave identically either way.
const DEFAULT_POOL_MACHINES: usize = 4;
/// Cloning overhead for derived fleets, in seconds (the paper's testbed
/// value, as in [`cloudsim::Sandbox::xeon_pool`]).
const DEFAULT_CLONE_OVERHEAD_SECONDS: f64 = 30.0;

impl DeepDive {
    /// Creates the controller with a sandbox fleet for the analyzer.
    ///
    /// Accepts anything convertible into a [`SandboxFleet`]; passing a bare
    /// [`cloudsim::Sandbox`] builds a uniform single-pool fleet (the
    /// paper's homogeneous setup).  For a mixed-hardware cluster, prefer
    /// [`DeepDive::for_cluster`], which derives one pool per machine model
    /// actually present instead of hard-coding one.
    pub fn new(config: DeepDiveConfig, sandboxes: impl Into<SandboxFleet>) -> Self {
        let fleet = sandboxes.into();
        let analyzer = InterferenceAnalyzer::new(config.performance_threshold);
        let mut placement = PlacementManager::new(config.acceptable_destination_interference);
        if let Some(topology) = config.spread_topology {
            placement = placement.with_spread(topology);
        }
        let warning = WarningSystem::new(config.warning.clone());
        let profiling_by_pool = vec![0.0; fleet.pools().len()];
        Self {
            config,
            warning,
            analyzer,
            repository: BehaviorRepository::new(),
            proxy: RequestProxy::with_default_window(),
            fleet,
            placement,
            synthetic: BTreeMap::new(),
            profiling_by_pool,
            stats: DeepDiveStats::default(),
            recent_counters: HashMap::new(),
            cooldown_until: HashMap::new(),
            fault_plane: None,
            deferred: Vec::new(),
            pending_migrations: Vec::new(),
            pool: None,
            behavior_scratch: HashMap::new(),
            by_app_scratch: HashMap::new(),
            apps_scratch: Vec::new(),
            peer_scratch: Vec::new(),
            window_scratch: Vec::new(),
        }
    }

    /// Creates the controller with the sandbox fleet the cluster actually
    /// needs: one pool per machine model present in it (four machines per
    /// pool, the paper's 30-second cloning overhead).
    ///
    /// This is the right default for any cluster — on a uniform fleet it is
    /// equivalent to the old `DeepDive::new(config, Sandbox::xeon_pool(4))`
    /// construction (pinned by `tests/sandbox_fleet.rs`), and on a mixed
    /// fleet it guarantees every analysis replays on the victim's host
    /// model (`stats().sandbox_spec_fallbacks` stays zero).
    pub fn for_cluster(config: DeepDiveConfig, cluster: &Cluster) -> Self {
        let fleet = SandboxFleet::for_cluster(
            cluster,
            DEFAULT_POOL_MACHINES,
            DEFAULT_CLONE_OVERHEAD_SECONDS,
        );
        Self::new(config, fleet)
    }

    /// Fans the controller's independent work — per-application model
    /// refits, synthetic-benchmark training — out over a persistent
    /// [`WorkerPool`].  Pass the epoch engine's pool
    /// (`engine.worker_pool().cloned()` via the shared `Arc`) so the control
    /// plane rides the same threads that step the cluster: the engine's
    /// barrier has released the workers by the time `process_epoch` runs.
    ///
    /// Purely a throughput knob: every pooled path is bit-identical to its
    /// serial equivalent (each refit and each training sample is a pure
    /// function of its inputs), pinned by `tests/warning_equivalence.rs`
    /// and the controller equivalence test below.
    pub fn use_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// The worker pool the control plane fans work over, if any.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Trains the synthetic benchmark for every machine model in `cluster`
    /// up front — one independent training job per model, fanned over the
    /// worker pool when one is attached — instead of lazily on the first
    /// placement decision per model.  Already-trained models are kept.
    ///
    /// Training is a pure function of `(spec, samples, seed)`, so eager,
    /// lazy, pooled and serial training all produce bit-identical
    /// benchmarks; pretraining only moves the cost out of the first
    /// mitigation episode (and, with a pool, overlaps the models).
    pub fn pretrain_benchmarks(&mut self, cluster: &Cluster) {
        let mut specs: Vec<MachineSpec> = Vec::new();
        for machine in cluster.machines() {
            if !self.synthetic.contains_key(&machine.spec.name)
                && !specs.iter().any(|s| s.name == machine.spec.name)
            {
                specs.push(machine.spec.clone());
            }
        }
        if specs.is_empty() {
            return;
        }
        let samples = self.config.synthetic_training_samples;
        let seed = self.config.seed;
        let trained: Vec<SyntheticBenchmark> = match &self.pool {
            Some(pool) if pool.lanes() > 1 && specs.len() > 1 => {
                // One job per machine model.  Jobs run *on* the pool, so
                // each trains serially inside (nested scatter on the same
                // pool would deadlock); the parallelism is across models.
                let jobs: Vec<_> = specs
                    .iter()
                    .map(|spec| {
                        let spec = spec.clone();
                        move || SyntheticBenchmark::train_with_threads(spec, samples, seed, 1)
                    })
                    .collect();
                pool.scatter(jobs)
            }
            Some(pool) => specs
                .iter()
                .map(|spec| SyntheticBenchmark::train_with_pool(spec.clone(), samples, seed, pool))
                .collect(),
            None => specs
                .iter()
                .map(|spec| SyntheticBenchmark::train(spec.clone(), samples, seed))
                .collect(),
        };
        for benchmark in trained {
            self.synthetic
                .insert(benchmark.spec.name.clone(), benchmark);
        }
    }

    /// Attaches the fault plane whose sandbox-outage and migration-failure
    /// schedules the controller must degrade around.  Share the plane (it
    /// is `Copy`) with the datacenter service so both layers see the same
    /// schedule.  A disabled plane is byte-for-byte inert.
    pub fn set_fault_plane(&mut self, plane: cloudsim::FaultPlane) {
        self.fault_plane = Some(plane);
    }

    /// The attached fault plane, if any.
    pub fn fault_plane(&self) -> Option<&cloudsim::FaultPlane> {
        self.fault_plane.as_ref()
    }

    /// Analyses currently waiting out a sandbox-pool outage.
    pub fn deferred_analyses(&self) -> usize {
        self.deferred.len()
    }

    /// Mitigation migrations currently awaiting a backed-off retry.
    pub fn pending_migrations(&self) -> usize {
        self.pending_migrations.len()
    }

    /// The running statistics.
    pub fn stats(&self) -> DeepDiveStats {
        self.stats
    }

    /// The sandbox fleet backing the analyzer.
    pub fn sandbox_fleet(&self) -> &SandboxFleet {
        &self.fleet
    }

    /// Profiling seconds consumed per sandbox pool, as `(machine model,
    /// seconds)` in pool order.  The sum equals
    /// [`DeepDiveStats::profiling_seconds`]; the split is what sizes each
    /// per-model profiling farm in the Figs. 12–14 queueing picture.
    pub fn profiling_seconds_by_pool(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.fleet
            .pools()
            .iter()
            .zip(&self.profiling_by_pool)
            .map(|(pool, &seconds)| (pool.spec.name.as_str(), seconds))
    }

    /// The behaviour repository (read access for the evaluation).
    pub fn repository(&self) -> &BehaviorRepository {
        &self.repository
    }

    /// The configuration in use.
    pub fn config(&self) -> &DeepDiveConfig {
        &self.config
    }

    /// True when the warning system still treats this application
    /// conservatively (no learned clusters yet).
    pub fn in_conservative_mode(&self, app: AppId) -> bool {
        self.warning.in_conservative_mode(app)
    }

    /// Processes one epoch of cluster reports: Algorithm 1 for every VM, and
    /// Algorithm 2 (plus placement) for whatever the warning system escalates.
    ///
    /// The warning models are refreshed **once per application per epoch**,
    /// before the per-VM loop (an O(1) generation check per app in the steady
    /// state).  Behaviours the epoch itself adds to the repository are picked
    /// up by the next epoch's refresh.
    pub fn process_epoch(
        &mut self,
        cluster: &mut Cluster,
        reports: &[VmEpochReport],
    ) -> Vec<EpochEvent> {
        let mut events = Vec::new();
        if reports.is_empty() {
            return events;
        }
        let epoch = reports[0].epoch;

        // Run mitigation migrations whose backoff expired before anything
        // else this epoch, so a retry sees the freshest reports.
        events.extend(self.drain_pending_migrations(cluster, reports, epoch));

        // Record the duplicated request streams and the counter history.
        self.proxy.record_reports(reports);
        for r in reports {
            let history = self.recent_counters.entry(r.vm_id).or_default();
            history.push_back(r.counters);
            while history.len() > self.config.analysis_window {
                history.pop_front();
            }
        }

        // Current behaviour of every VM, grouped by application (the global
        // information the warning system may consult).  Rebuilt into scratch
        // maps that keep their allocations across epochs; with a stable VM
        // population this allocates nothing.
        self.behavior_scratch.clear();
        // Clearing every group touches each exactly once; nothing observes
        // the visit order.  simlint: order-independent
        for group in self.by_app_scratch.values_mut() {
            group.clear();
        }
        for r in reports {
            self.behavior_scratch
                .insert(r.vm_id, BehaviorVector::from_counters(&r.counters));
            self.by_app_scratch.entry(r.app).or_default().push(r.vm_id);
        }

        // One model refresh per application per epoch.  Each refresh is O(1)
        // when that application's repository generation is unchanged, and
        // when several applications do need a refit the fits fan out over
        // the worker pool (bit-identical to the serial sweep).  The work
        // list is **sorted** before it reaches the pool: models are
        // independent so results would match in any order, but the sort
        // keeps scatter job assignment, refit accounting and any future
        // order-sensitive consumer a pure function of the reports — never
        // of `by_app_scratch`'s per-process hash order.
        self.apps_scratch.clear();
        self.apps_scratch.extend(
            self.by_app_scratch
                // Hash-order collection, sorted below.  simlint: order-independent
                .iter()
                .filter(|(_, vms)| !vms.is_empty())
                .map(|(&app, _)| app),
        );
        self.apps_scratch.sort_unstable();
        self.warning
            .refresh_models(&self.apps_scratch, &self.repository, self.pool.as_deref());

        for report in reports {
            self.stats.evaluations += 1;
            let behavior = self.behavior_scratch[&report.vm_id];
            // Skip idle VMs: an empty behaviour carries no signal.
            if report.counters.inst_retired <= 0.0 {
                continue;
            }
            self.peer_scratch.clear();
            if self.config.use_global_information {
                for id in &self.by_app_scratch[&report.app] {
                    if *id != report.vm_id {
                        self.peer_scratch.push(self.behavior_scratch[id]);
                    }
                }
            }
            let decision = self
                .warning
                .evaluate(report.app, &behavior, &self.peer_scratch);
            match decision {
                WarningDecision::NormalLocal => {}
                WarningDecision::NormalGlobal => {
                    // Workload change shared across the application's VMs:
                    // extend the set of known behaviours without profiling.
                    self.stats.global_matches += 1;
                    self.repository.record_normal(report.app, behavior, epoch);
                }
                WarningDecision::SuspectInterference | WarningDecision::Bootstrap => {
                    if self
                        .cooldown_until
                        .get(&report.vm_id)
                        .is_some_and(|until| epoch < *until)
                    {
                        continue;
                    }
                    // Route the analysis to the sandbox pool matching the
                    // victim's host model.
                    let host_spec = self.host_spec(cluster, report.pm_id);
                    if let Some(plane) = self.fault_plane.filter(|p| p.is_enabled()) {
                        let (pool_idx, _) = self.fleet.select_index(&host_spec);
                        if plane.sandbox_down(pool_idx, epoch) {
                            // The victim's pool is inside an outage window:
                            // wait for it rather than replay against the
                            // wrong hardware — and once the deadline
                            // passes, degrade to a warning-only decision
                            // rather than panic or analyze blind.
                            match self.deferred.iter().position(|d| d.vm == report.vm_id) {
                                None => {
                                    let deadline = epoch + self.config.analysis_deferral_epochs;
                                    self.deferred.push(DeferredAnalysis {
                                        vm: report.vm_id,
                                        deadline,
                                    });
                                    self.stats.analyses_deferred += 1;
                                    events.push(EpochEvent::AnalysisDeferred {
                                        vm: report.vm_id,
                                        deadline,
                                    });
                                }
                                Some(pos) if epoch >= self.deferred[pos].deadline => {
                                    self.deferred.remove(pos);
                                    self.stats.degraded_decisions += 1;
                                    self.cooldown_until.insert(
                                        report.vm_id,
                                        epoch + self.config.analysis_cooldown,
                                    );
                                    events.push(EpochEvent::AnalysisDegraded { vm: report.vm_id });
                                }
                                Some(_) => {}
                            }
                            continue;
                        }
                        // Pool came back before the deadline: the deferral
                        // is over, analyze normally.
                        if let Some(pos) = self.deferred.iter().position(|d| d.vm == report.vm_id) {
                            self.deferred.remove(pos);
                        }
                    }
                    let result = self.run_analysis(report, &host_spec);
                    let cooldown = if result.interference_confirmed {
                        self.config
                            .confirmed_cooldown
                            .max(self.config.analysis_cooldown)
                    } else {
                        self.config.analysis_cooldown
                    };
                    self.cooldown_until.insert(report.vm_id, epoch + cooldown);
                    events.push(EpochEvent::Analyzed {
                        vm: report.vm_id,
                        trigger: decision,
                        result: result.clone(),
                    });
                    if result.interference_confirmed {
                        if let Some(culprit) = result.culprit {
                            if self.config.auto_migrate {
                                events.extend(self.mitigate(cluster, reports, report, culprit, 0));
                            }
                        }
                    }
                }
            }
        }
        events
    }

    /// The machine model hosting `pm`.  Reports always come from machines
    /// in `cluster`, so the fallback to the fleet's first pool model is
    /// belt-and-braces; an actual cross-model fallback is detected (and
    /// counted) by the fleet selection in [`DeepDive::run_analysis`].
    fn host_spec(&self, cluster: &Cluster, pm: PmId) -> MachineSpec {
        cluster
            .machine(pm)
            .map(|m| m.spec.clone())
            .unwrap_or_else(|| self.fleet.pools()[0].spec.clone())
    }

    /// Runs the interference analyzer for one VM in the sandbox pool
    /// matching `host_spec` and updates the repository.
    fn run_analysis(&mut self, report: &VmEpochReport, host_spec: &MachineSpec) -> AnalysisResult {
        self.stats.analyzer_invocations += 1;
        let (pool_idx, matched) = self.fleet.select_index(host_spec);
        if !matched {
            // Cross-model replay: the estimate is biased (the old
            // single-pool behaviour on mixed fleets); surface it in stats.
            self.stats.sandbox_spec_fallbacks += 1;
        }
        // The analysis window lives in reused scratch (taken out of `self`
        // for the duration of the borrow-heavy analyzer call).
        let mut window = std::mem::take(&mut self.window_scratch);
        window.clear();
        match self.recent_counters.get(&report.vm_id) {
            Some(history) => window.extend(history.iter().copied()),
            None => window.push(report.counters),
        }
        let mut replay = self
            .proxy
            .replay_last(report.vm_id, self.config.analysis_window);
        if replay.is_empty() {
            replay.push(report.demand.clone());
        }
        let result = self.analyzer.analyze(
            report.vm_id,
            &window,
            &replay,
            &self.fleet.pools()[pool_idx],
            2,
        );
        self.window_scratch = window;
        self.stats.profiling_seconds += result.profiling_seconds;
        self.profiling_by_pool[pool_idx] += result.profiling_seconds;
        // Every isolation epoch is a verified normal behaviour — the set S
        // the analyzer hands the warning system (§4.1).
        for behavior in &result.isolation_behaviors {
            self.repository
                .record_normal(report.app, *behavior, report.epoch);
        }
        if result.interference_confirmed {
            self.stats.interference_confirmed += 1;
            self.repository.record_interference(
                report.app,
                result.production_behavior,
                report.epoch,
            );
        } else {
            self.stats.false_alarms += 1;
            // A false alarm means the production behaviour is genuinely
            // normal (e.g. a workload change): learn it.
            self.repository
                .record_normal(report.app, result.production_behavior, report.epoch);
        }
        result
    }

    /// Runs every pending-migration retry whose backoff expired, deciding
    /// the move afresh from this epoch's reports.
    fn drain_pending_migrations(
        &mut self,
        cluster: &mut Cluster,
        reports: &[VmEpochReport],
        epoch: u64,
    ) -> Vec<EpochEvent> {
        let mut events = Vec::new();
        if self.pending_migrations.is_empty() {
            return events;
        }
        let mut due = Vec::new();
        self.pending_migrations.retain(|pending| {
            if pending.next_epoch <= epoch {
                due.push(*pending);
                false
            } else {
                true
            }
        });
        for pending in due {
            match reports.iter().find(|r| r.vm_id == pending.victim) {
                Some(victim) => {
                    events.extend(self.mitigate(
                        cluster,
                        reports,
                        victim,
                        pending.culprit,
                        pending.attempts,
                    ));
                }
                None => events.push(EpochEvent::MigrationSkipped {
                    vm: pending.victim,
                    reason: "victim stopped reporting before the migration retry".to_string(),
                }),
            }
        }
        events
    }

    /// Books a backed-off retry for a failed mitigation, or reports the
    /// budget exhausted.  `attempt` counts tries already consumed (the
    /// original included); waits double per attempt (1, 2, 4, … epochs).
    fn schedule_migration_retry(
        &mut self,
        victim: VmId,
        culprit: Resource,
        attempt: u32,
        epoch: u64,
    ) -> Option<EpochEvent> {
        if attempt >= self.config.migration_retry_attempts {
            return Some(EpochEvent::MigrationSkipped {
                vm: victim,
                reason: "migration retry budget exhausted".to_string(),
            });
        }
        self.stats.migration_retries += 1;
        self.pending_migrations.push(PendingMigration {
            victim,
            culprit,
            attempts: attempt + 1,
            next_epoch: epoch + (1u64 << attempt.min(16)),
        });
        None
    }

    /// True while `pm` is inside the fault plane's crash window.
    fn machine_is_down(&self, pm: PmId, epoch: u64) -> bool {
        self.fault_plane
            .is_some_and(|plane| plane.machine_down(pm, epoch))
    }

    /// Mitigates confirmed interference on the machine hosting `victim`.
    /// `attempt` is zero on the first try and counts up across
    /// backed-off retries of the same episode.
    fn mitigate(
        &mut self,
        cluster: &mut Cluster,
        reports: &[VmEpochReport],
        victim: &VmEpochReport,
        culprit: Resource,
        attempt: u32,
    ) -> Vec<EpochEvent> {
        let mut events = Vec::new();
        let pm = victim.pm_id;
        let epoch = victim.epoch;
        // Residents of the afflicted machine, from this epoch's reports.
        let residents: Vec<ResidentVm> = reports
            .iter()
            .filter(|r| r.pm_id == pm)
            .map(|r| ResidentVm {
                vm_id: r.vm_id,
                counters: r.counters,
                behavior: BehaviorVector::from_counters(&r.counters),
                demand: r.demand.clone(),
                vcpus: 2,
            })
            .collect();
        if residents.len() < 2 {
            events.push(EpochEvent::MigrationSkipped {
                vm: victim.vm_id,
                reason: "no co-located VM to migrate away".to_string(),
            });
            return events;
        }
        // Candidate destinations: every other machine, each with its own
        // hardware model and its residents' latest demands, so predictions
        // run against the destination's actual spec.
        let candidates: Vec<CandidateMachine> = cluster
            .machines()
            .iter()
            .filter(|m| m.id != pm && !self.machine_is_down(m.id, epoch))
            .map(|m| CandidateMachine {
                pm_id: m.id,
                spec: m.spec.clone(),
                resident_demands: reports
                    .iter()
                    .filter(|r| r.pm_id == m.id)
                    .map(|r| r.demand.clone())
                    .collect(),
                free_cores: m.free_cores(),
            })
            .collect();
        if candidates.is_empty() {
            events.push(EpochEvent::MigrationSkipped {
                vm: victim.vm_id,
                reason: "no candidate destination machine".to_string(),
            });
            return events;
        }

        // Train the synthetic benchmark lazily, once per server type: the
        // mimic inverts behaviours observed on the afflicted machine, so it
        // is trained on that machine's model.  With a worker pool attached
        // the sample resolves ride the pool; the fitted model is
        // bit-identical either way (use `pretrain_benchmarks` to move this
        // cost out of the episode entirely).
        let host_spec = self.host_spec(cluster, pm);
        if !self.synthetic.contains_key(&host_spec.name) {
            let samples = self.config.synthetic_training_samples;
            let seed = self.config.seed;
            let benchmark = match &self.pool {
                Some(pool) => {
                    SyntheticBenchmark::train_with_pool(host_spec.clone(), samples, seed, pool)
                }
                None => SyntheticBenchmark::train(host_spec.clone(), samples, seed),
            };
            self.synthetic.insert(host_spec.name.clone(), benchmark);
        }
        let benchmark = self
            .synthetic
            .get(&host_spec.name)
            .expect("benchmark trained above");

        let decision = self
            .placement
            .decide(&residents, culprit, pm, &candidates, benchmark);
        match decision.destination {
            Some(destination) => {
                // A transiently failing migration (the fault plane's
                // per-(vm, epoch) stream) is retried with backoff, like a
                // full destination below — never silently dropped.
                let transient_failure = self
                    .fault_plane
                    .is_some_and(|plane| plane.migration_fails(decision.vm_to_migrate, epoch));
                if transient_failure {
                    events.push(EpochEvent::MigrationSkipped {
                        vm: decision.vm_to_migrate,
                        reason: "transient migration failure".to_string(),
                    });
                    events.extend(self.schedule_migration_retry(
                        victim.vm_id,
                        culprit,
                        attempt,
                        epoch,
                    ));
                    return events;
                }
                match cluster.migrate(decision.vm_to_migrate, destination) {
                    Ok(_cost) => {
                        self.stats.migrations += 1;
                        events.push(EpochEvent::Migrated {
                            vm: decision.vm_to_migrate,
                            from: pm,
                            to: destination,
                            culprit,
                        });
                    }
                    Err(ClusterError::NoCapacity { .. }) => {
                        events.push(EpochEvent::MigrationSkipped {
                            vm: decision.vm_to_migrate,
                            reason: "destination ran out of capacity".to_string(),
                        });
                        events.extend(self.schedule_migration_retry(
                            victim.vm_id,
                            culprit,
                            attempt,
                            epoch,
                        ));
                    }
                    Err(e) => {
                        events.push(EpochEvent::MigrationSkipped {
                            vm: decision.vm_to_migrate,
                            reason: e.to_string(),
                        });
                    }
                }
            }
            None => {
                events.push(EpochEvent::MigrationSkipped {
                    vm: decision.vm_to_migrate,
                    reason: "every candidate destination would interfere too much".to_string(),
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{ClusterSeed, EpochEngine, Scheduler};
    use hwsim::MachineSpec;
    use workloads::{ClientEmulator, DataServing, MemoryStress};

    fn serving_vm(id: u64, app: u64) -> cloudsim::Vm {
        cloudsim::Vm::new(
            VmId(id),
            Box::new(DataServing::with_defaults(AppId(app))),
            ClientEmulator::new(8_000.0, 4.0),
        )
    }

    fn aggressor_vm(id: u64) -> cloudsim::Vm {
        cloudsim::Vm::new(
            VmId(id),
            Box::new(MemoryStress::new(AppId(900), 512.0)),
            ClientEmulator::new(1.0, 1.0),
        )
    }

    /// Builds the controller the recommended way: fleet derived from the
    /// cluster's machine models (one pool per model), never hard-coded.
    fn controller(auto_migrate: bool, cluster: &Cluster) -> DeepDive {
        let config = DeepDiveConfig {
            auto_migrate,
            synthetic_training_samples: 80,
            ..Default::default()
        };
        DeepDive::for_cluster(config, cluster)
    }

    /// Runs `epochs` epochs through `engine` and returns all events.
    fn run(
        cluster: &mut Cluster,
        deepdive: &mut DeepDive,
        engine: &EpochEngine,
        epochs: usize,
        load: f64,
    ) -> Vec<EpochEvent> {
        let mut events = Vec::new();
        for _ in 0..epochs {
            let reports = engine.step(cluster, |_| load);
            events.extend(deepdive.process_epoch(cluster, &reports));
        }
        events
    }

    #[test]
    fn bootstrap_learns_then_goes_quiet() {
        let mut cluster = Cluster::homogeneous(1, MachineSpec::xeon_x5472(), Scheduler::default());
        cluster.place_on(PmId(0), serving_vm(1, 1)).unwrap();
        let mut dd = controller(false, &cluster);
        let engine = EpochEngine::serial(ClusterSeed::new(2));
        run(&mut cluster, &mut dd, &engine, 60, 0.8);
        let stats = dd.stats();
        assert!(
            stats.analyzer_invocations >= 1,
            "bootstrap must invoke the analyzer"
        );
        assert!(
            stats.interference_confirmed == 0,
            "no interference was present"
        );
        assert!(
            !dd.in_conservative_mode(AppId(1)),
            "clusters should be learned by now"
        );
        // Once learned, further quiet epochs must not trigger the analyzer.
        let before = dd.stats().analyzer_invocations;
        run(&mut cluster, &mut dd, &engine, 40, 0.8);
        let after = dd.stats().analyzer_invocations;
        assert!(
            after - before <= 1,
            "learned behaviour keeps firing the analyzer"
        );
    }

    #[test]
    fn injected_interference_is_detected_and_mitigated() {
        let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
        cluster.place_on(PmId(0), serving_vm(1, 1)).unwrap();
        let mut dd = controller(true, &cluster);
        let engine = EpochEngine::serial(ClusterSeed::new(3));
        // Learn normal behaviour first.
        run(&mut cluster, &mut dd, &engine, 50, 0.8);
        let confirmed_before = dd.stats().interference_confirmed;
        // Inject a cache aggressor next to the victim.
        cluster.place_on(PmId(0), aggressor_vm(99)).unwrap();
        let events = run(&mut cluster, &mut dd, &engine, 40, 0.8);
        let stats = dd.stats();
        assert!(
            stats.interference_confirmed > confirmed_before,
            "interference was never confirmed: {stats:?}"
        );
        // The aggressor (most aggressive on the culprit resource) must have
        // been migrated to the idle machine.
        let migrated = events.iter().any(|e| matches!(e, EpochEvent::Migrated { vm, to, .. } if *vm == VmId(99) && *to == PmId(1)));
        assert!(migrated, "aggressor was not migrated: {events:?}");
        assert_eq!(cluster.locate(VmId(99)), Some(PmId(1)));
        assert_eq!(cluster.locate(VmId(1)), Some(PmId(0)));
    }

    #[test]
    fn profiling_time_accumulates_only_when_analyzer_runs() {
        let mut cluster = Cluster::homogeneous(1, MachineSpec::xeon_x5472(), Scheduler::default());
        cluster.place_on(PmId(0), serving_vm(1, 1)).unwrap();
        let mut dd = controller(false, &cluster);
        let engine = EpochEngine::serial(ClusterSeed::new(4));
        run(&mut cluster, &mut dd, &engine, 40, 0.8);
        let after_learning = dd.stats().profiling_seconds;
        assert!(after_learning > 0.0);
        run(&mut cluster, &mut dd, &engine, 40, 0.8);
        let later = dd.stats().profiling_seconds;
        // Nearly flat once normal behaviour is known (Fig. 12's plateau).
        assert!(later - after_learning <= after_learning * 0.5 + 1e-9);
    }

    #[test]
    fn global_information_suppresses_analyses_for_shared_load_changes() {
        // Nine VMs of the same app across machines; a qualitative load shift
        // hits all of them at once.  With global information the analyzer
        // should be invoked far fewer times than nine.
        let mut cluster = Cluster::homogeneous(5, MachineSpec::xeon_x5472(), Scheduler::default());
        for i in 0..9 {
            cluster.place_first_fit(serving_vm(i, 1)).unwrap();
        }
        let mut dd = controller(false, &cluster);
        let engine = EpochEngine::serial(ClusterSeed::new(5));
        run(&mut cluster, &mut dd, &engine, 40, 0.8);
        let before = dd.stats();
        // A qualitative change: load jumps for every instance simultaneously.
        run(&mut cluster, &mut dd, &engine, 10, 0.3);
        let after = dd.stats();
        assert!(
            after.global_matches > before.global_matches
                || after.analyzer_invocations - before.analyzer_invocations < 9,
            "global information had no effect: {after:?}"
        );
    }

    #[test]
    fn a_sandbox_outage_defers_then_degrades_instead_of_analyzing() {
        use cloudsim::faults::{FaultConfig, FaultPlane};

        let mut cluster = Cluster::homogeneous(1, MachineSpec::xeon_x5472(), Scheduler::default());
        cluster.place_on(PmId(0), serving_vm(1, 1)).unwrap();
        let mut dd = controller(false, &cluster);
        // The pool is down every epoch: analyses can never run, so the
        // controller must wait out the deferral window and then degrade.
        dd.set_fault_plane(FaultPlane::new(
            3,
            FaultConfig {
                sandbox_outage_per_epoch: 1.0,
                outage_epochs: (1, 1),
                ..FaultConfig::disabled()
            },
        ));
        let engine = EpochEngine::serial(ClusterSeed::new(2));
        let mut events = Vec::new();
        for _ in 0..60 {
            let reports = engine.step(&mut cluster, |_| 0.8);
            events.extend(dd.process_epoch(&mut cluster, &reports));
        }
        let stats = dd.stats();
        assert_eq!(
            stats.analyzer_invocations, 0,
            "never analyze against a downed pool"
        );
        assert!(
            stats.analyses_deferred >= 1,
            "warnings must defer: {stats:?}"
        );
        assert!(
            stats.degraded_decisions >= 1,
            "deadlines must degrade: {stats:?}"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, EpochEvent::AnalysisDeferred { vm, .. } if *vm == VmId(1))));
        assert!(events
            .iter()
            .any(|e| matches!(e, EpochEvent::AnalysisDegraded { vm } if *vm == VmId(1))));
    }

    #[test]
    fn failed_migrations_retry_with_backoff_until_the_budget_runs_out() {
        use cloudsim::faults::{FaultConfig, FaultPlane};

        let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
        cluster.place_on(PmId(0), serving_vm(1, 1)).unwrap();
        let mut dd = controller(true, &cluster);
        // Every migration attempt fails transiently: the episode must back
        // off through the retry budget and then give up loudly.
        dd.set_fault_plane(FaultPlane::new(
            9,
            FaultConfig {
                migration_failure: 1.0,
                ..FaultConfig::disabled()
            },
        ));
        let engine = EpochEngine::serial(ClusterSeed::new(3));
        run(&mut cluster, &mut dd, &engine, 50, 0.8);
        cluster.place_on(PmId(0), aggressor_vm(99)).unwrap();
        let events = run(&mut cluster, &mut dd, &engine, 40, 0.8);
        let stats = dd.stats();
        assert!(stats.interference_confirmed >= 1, "{stats:?}");
        assert_eq!(stats.migrations, 0, "no migration can succeed: {events:?}");
        assert!(
            stats.migration_retries >= 1,
            "failures must be retried: {stats:?}"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                EpochEvent::MigrationSkipped { reason, .. }
                    if reason == "migration retry budget exhausted"
            )),
            "budget exhaustion must be reported: {events:?}"
        );
        assert_eq!(cluster.locate(VmId(99)), Some(PmId(0)), "nothing moved");
    }

    #[test]
    fn a_disabled_fault_plane_leaves_the_controller_unchanged() {
        use cloudsim::faults::{FaultConfig, FaultPlane};

        let run_once = |attach_disabled_plane: bool| {
            let mut cluster =
                Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
            cluster.place_on(PmId(0), serving_vm(1, 1)).unwrap();
            let mut dd = controller(true, &cluster);
            if attach_disabled_plane {
                dd.set_fault_plane(FaultPlane::new(55, FaultConfig::disabled()));
            }
            let engine = EpochEngine::serial(ClusterSeed::new(3));
            let mut events = run(&mut cluster, &mut dd, &engine, 50, 0.8);
            cluster.place_on(PmId(0), aggressor_vm(99)).unwrap();
            events.extend(run(&mut cluster, &mut dd, &engine, 30, 0.8));
            (events, dd.stats(), cluster.locate(VmId(99)))
        };
        assert_eq!(run_once(false), run_once(true));
    }

    #[test]
    fn stats_start_at_zero() {
        let cluster = Cluster::homogeneous(1, MachineSpec::xeon_x5472(), Scheduler::default());
        let dd = controller(true, &cluster);
        assert_eq!(dd.stats(), DeepDiveStats::default());
        assert!(dd.repository().known_apps().is_empty());
        assert!(dd.profiling_seconds_by_pool().all(|(_, s)| s == 0.0));
    }

    #[test]
    fn for_cluster_derives_one_pool_per_machine_model() {
        let mixed = Cluster::heterogeneous(
            &[
                (MachineSpec::xeon_x5472(), 2),
                (MachineSpec::core_i7_nehalem(), 2),
            ],
            Scheduler::default(),
        );
        let dd = DeepDive::for_cluster(DeepDiveConfig::default(), &mixed);
        let fleet = dd.sandbox_fleet();
        assert_eq!(fleet.pools().len(), 2);
        for machine in mixed.machines() {
            assert!(
                fleet.pool_for(&machine.spec).is_some(),
                "no pool for {}",
                machine.spec.name
            );
        }
        // The uniform constructor keeps hard-coding possible but explicit.
        let uniform = DeepDive::new(DeepDiveConfig::default(), cloudsim::Sandbox::xeon_pool(4));
        assert!(uniform.sandbox_fleet().is_uniform());
    }

    #[test]
    fn pooled_controller_run_is_bit_identical_to_serial() {
        use cloudsim::ExecutionMode;

        // Three apps across three machines plus an aggressor, long enough to
        // cover bootstrap, multi-app refits, confirmed interference, lazy
        // benchmark training and migration — the full control plane.
        let build = || {
            let mut cluster =
                Cluster::homogeneous(4, MachineSpec::xeon_x5472(), Scheduler::default());
            for i in 0..5 {
                cluster
                    .place_first_fit(serving_vm(i, 1 + i % 3))
                    .expect("room");
            }
            // First-fit packs two VMs per machine, so PM 2 has one slot
            // left for the aggressor and PM 3 stays free as a destination.
            cluster.place_on(PmId(2), aggressor_vm(99)).unwrap();
            cluster
        };

        let serial_engine = EpochEngine::serial(ClusterSeed::new(5));
        let mut serial_cluster = build();
        let mut serial_dd = controller(true, &serial_cluster);
        let serial_events = run(&mut serial_cluster, &mut serial_dd, &serial_engine, 50, 0.8);

        let pooled_engine =
            EpochEngine::new(ClusterSeed::new(5), ExecutionMode::Pooled { threads: 3 });
        let mut pooled_cluster = build();
        let mut pooled_dd = controller(true, &pooled_cluster);
        pooled_dd.use_worker_pool(Arc::clone(
            pooled_engine.worker_pool().expect("pooled engine"),
        ));
        pooled_dd.pretrain_benchmarks(&pooled_cluster);
        let pooled_events = run(&mut pooled_cluster, &mut pooled_dd, &pooled_engine, 50, 0.8);

        assert_eq!(serial_events, pooled_events, "event streams diverged");
        assert_eq!(serial_dd.stats(), pooled_dd.stats(), "stats diverged");
        assert_eq!(
            serial_cluster.locate(VmId(99)),
            pooled_cluster.locate(VmId(99)),
            "final placements diverged"
        );
    }

    #[test]
    fn profiling_time_is_accounted_against_the_matching_pool() {
        // One i7-hosted tenant on a mixed cluster: every analysis must book
        // its profiling seconds against the i7 pool, none against the Xeon
        // pool, and no spec fallbacks may occur.
        let mut cluster = Cluster::heterogeneous(
            &[
                (MachineSpec::xeon_x5472(), 1),
                (MachineSpec::core_i7_nehalem(), 1),
            ],
            Scheduler::default(),
        );
        cluster.place_on(PmId(1), serving_vm(1, 1)).unwrap();
        let mut dd = controller(false, &cluster);
        let engine = EpochEngine::serial(ClusterSeed::new(7));
        run(&mut cluster, &mut dd, &engine, 40, 0.8);
        let stats = dd.stats();
        assert!(stats.analyzer_invocations >= 1);
        assert_eq!(stats.sandbox_spec_fallbacks, 0);
        let by_pool: Vec<(String, f64)> = dd
            .profiling_seconds_by_pool()
            .map(|(name, s)| (name.to_string(), s))
            .collect();
        let i7 = MachineSpec::core_i7_nehalem();
        let total: f64 = by_pool.iter().map(|(_, s)| s).sum();
        assert!((total - stats.profiling_seconds).abs() < 1e-9);
        for (name, seconds) in &by_pool {
            if *name == i7.name {
                assert!(*seconds > 0.0, "i7 pool never used: {by_pool:?}");
            } else {
                assert_eq!(*seconds, 0.0, "wrong pool charged: {by_pool:?}");
            }
        }
    }
    #[test]
    fn streams_are_identical_across_insertion_orders() {
        // Two controllers over byte-identical clusters, but with their
        // per-model synthetic benchmarks inserted in opposite orders
        // (xeon→i7 vs i7→xeon) and the tenants placed in opposite orders.
        // If any control-plane decision leaked map insertion/iteration
        // order — the bug class the `synthetic` BTreeMap and the sorted
        // `apps_scratch` rebuild exist to prevent — the event or stat
        // streams would diverge.
        let xeon = MachineSpec::xeon_x5472();
        let i7 = MachineSpec::core_i7_nehalem();
        let build = |reversed: bool| {
            let mut cluster =
                Cluster::heterogeneous(&[(xeon.clone(), 1), (i7.clone(), 1)], Scheduler::default());
            let placements = [(PmId(0), 1u64, 1u64), (PmId(1), 2, 2)];
            let order: Vec<_> = if reversed {
                placements.iter().rev().collect()
            } else {
                placements.iter().collect()
            };
            for &&(pm, vm, app) in &order {
                cluster.place_on(pm, serving_vm(vm, app)).unwrap();
            }
            cluster
        };
        let xeon_only = Cluster::homogeneous(1, xeon.clone(), Scheduler::default());
        let i7_only = Cluster::homogeneous(1, i7.clone(), Scheduler::default());
        let config = DeepDiveConfig {
            auto_migrate: true,
            synthetic_training_samples: 80,
            ..Default::default()
        };

        let mut cluster_a = build(false);
        let mut dd_a = DeepDive::for_cluster(config.clone(), &cluster_a);
        dd_a.pretrain_benchmarks(&xeon_only);
        dd_a.pretrain_benchmarks(&i7_only);

        let mut cluster_b = build(true);
        let mut dd_b = DeepDive::for_cluster(config, &cluster_b);
        dd_b.pretrain_benchmarks(&i7_only);
        dd_b.pretrain_benchmarks(&xeon_only);

        let engine_a = EpochEngine::serial(ClusterSeed::new(11));
        let engine_b = EpochEngine::serial(ClusterSeed::new(11));
        let mut events_a = run(&mut cluster_a, &mut dd_a, &engine_a, 50, 0.8);
        let mut events_b = run(&mut cluster_b, &mut dd_b, &engine_b, 50, 0.8);
        // Inject the same aggressor into both and keep going: confirmed
        // interference, migration planning and refits all replay the same
        // decision path over the differently-populated internal maps.
        cluster_a.place_on(PmId(0), aggressor_vm(99)).unwrap();
        cluster_b.place_on(PmId(0), aggressor_vm(99)).unwrap();
        events_a.extend(run(&mut cluster_a, &mut dd_a, &engine_a, 40, 0.8));
        events_b.extend(run(&mut cluster_b, &mut dd_b, &engine_b, 40, 0.8));

        assert_eq!(events_a, events_b, "event streams diverged");
        assert_eq!(dd_a.stats(), dd_b.stats(), "stats diverged");
        assert_eq!(
            cluster_a.locate(VmId(99)),
            cluster_b.locate(VmId(99)),
            "final placements diverged"
        );
    }
}
