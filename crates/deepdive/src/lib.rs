#![forbid(unsafe_code)]
//! # deepdive — transparent interference detection and management
//!
//! This crate is the reproduction of the paper's contribution: a system that
//! identifies and manages performance interference between co-located VMs
//! using nothing but low-level metrics (hardware counters and I/O stall
//! statistics), with no application cooperation.
//!
//! The three components mirror §4 of the paper:
//!
//! * the **warning system** ([`warning`]) runs continuously and cheaply in
//!   the VMM: it normalizes each VM's counters by instructions retired,
//!   matches them against previously learned *normal behaviour* clusters
//!   (local information) and against the behaviour of other VMs running the
//!   same application (global information), and escalates only genuinely
//!   unexplained deviations;
//! * the **interference analyzer** ([`analyzer`]) is the expensive
//!   ground-truth path: it clones the suspect VM into a sandbox, replays the
//!   duplicated request stream, compares instructions retired in production
//!   vs. isolation to estimate the degradation, and attributes it to a
//!   culprit resource with an augmented CPI stack ([`cpi_stack`]).  On
//!   heterogeneous clusters the controller holds a
//!   [`cloudsim::SandboxFleet`] — one pool per machine model — and routes
//!   each analysis to the pool matching the victim's host, since comparing
//!   counters across models biases the estimate (build it with
//!   [`controller::DeepDive::for_cluster`]);
//! * the **placement manager** ([`placement`]) mitigates confirmed
//!   interference: it picks the VM most aggressive on the culprit resource,
//!   predicts — using a regression-trained synthetic benchmark
//!   ([`synthetic`]) — how that VM would interfere on each candidate
//!   destination machine, and migrates it to the best one.
//!
//! [`controller`] wires the three together into the end-to-end loop driven
//! by the cluster simulator, and [`repository`] stores the learned
//! behaviours (≈5 KB per VM per day, §5.5).
//!
//! ## The control-plane hot path: generations and warm starts
//!
//! The warning system touches every VM every epoch, so its refresh path is
//! built to cost nothing in the steady state and a handful of EM iterations
//! otherwise:
//!
//! * [`repository::BehaviorRepository`] keeps a per-application **generation
//!   counter** (bumped on every record, even at capacity) over ring-buffered
//!   entries with O(1) eviction, and lends its stores out as
//!   `&AppBehaviors` — the hot path never clones history;
//! * [`warning::WarningSystem::refresh_model`] short-circuits in O(1) when
//!   the generation is unchanged; when the repository grew, it re-fits
//!   **warm-started** from the previous mixture
//!   ([`analytics::constrained::fit_constrained_warm`]) and falls back to a
//!   full cold fit every [`warning::WarningConfig::cold_refit_interval`]
//!   refits so warm-start drift cannot accumulate;
//! * [`controller::DeepDive::process_epoch`] refreshes each application's
//!   model **once per epoch** before the per-VM loop and reuses all of its
//!   epoch scratch (behaviour map, per-app groupings, peer buffers, the
//!   analyzer window), so the steady-state warning sweep allocates nothing;
//! * [`synthetic::SyntheticBenchmark::train`] resolves its training samples
//!   on scoped threads with counter-derived per-sample RNG streams —
//!   bit-identical output for any thread count (`DEEPDIVE_TRAIN_THREADS`).
//!
//! `cargo bench -p bench --bench controller_throughput` measures this
//! against a frozen copy of the clone-and-cold-refit path
//! (`BENCH_controller.json`); `tests/warning_equivalence.rs` pins that warm
//! and cold refreshes make equivalent decisions.
//!
//! ## Quick start
//!
//! ```
//! use cloudsim::{Cluster, ClusterSeed, EpochEngine, Scheduler, Vm, VmId, PmId};
//! use deepdive::controller::{DeepDive, DeepDiveConfig};
//! use hwsim::MachineSpec;
//! use workloads::{AppId, ClientEmulator, DataServing, MemoryStress};
//!
//! // A one-machine cloud with a victim and a cache-thrashing aggressor.
//! let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
//! cluster.place_on(PmId(0), Vm::new(
//!     VmId(1),
//!     Box::new(DataServing::with_defaults(AppId(1))),
//!     ClientEmulator::new(8_000.0, 4.0),
//! )).unwrap();
//!
//! // The sandbox fleet is derived from the cluster: one pool per machine
//! // model present, so analyses never compare counters across models.
//! let mut deepdive = DeepDive::for_cluster(DeepDiveConfig::default(), &cluster);
//! // One seed determines every VM's demand stream; the engine can also run
//! // `ExecutionMode::Sharded { threads }` with bit-identical results.
//! let engine = EpochEngine::serial(ClusterSeed::new(1));
//!
//! // Learn normal behaviour for a while...
//! for _ in 0..30 {
//!     let reports = engine.step(&mut cluster, |_| 0.8);
//!     deepdive.process_epoch(&mut cluster, &reports);
//! }
//! // ...then interference can be injected and will be detected and mitigated.
//! ```

pub mod analyzer;
pub mod controller;
pub mod cpi_stack;
pub mod metrics;
pub mod placement;
pub mod repository;
pub mod service;
pub mod synthetic;
pub mod warning;

pub use analyzer::{AnalysisResult, InterferenceAnalyzer};
pub use controller::{DeepDive, DeepDiveConfig, DeepDiveStats};
pub use cpi_stack::{CpiStack, Resource};
pub use metrics::BehaviorVector;
pub use placement::{PlacementDecision, PlacementManager};
pub use repository::BehaviorRepository;
pub use service::ManagedDatacenter;
pub use synthetic::{SyntheticBenchmark, SyntheticClone};
pub use warning::{WarningDecision, WarningSystem};
