#![forbid(unsafe_code)]
//! # queueing — the profiling-farm scalability model (Figs. 13–14)
//!
//! The paper models DeepDive's interference analyzer as a queue: new VMs
//! arrive at the datacenter (1000 per day), a configurable fraction of them
//! eventually undergoes interference and therefore needs a profiling run on
//! one of `k` dedicated sandbox machines, and the question is how quickly
//! DeepDive can *react* — i.e. how long a VM waits before its analysis
//! completes — as a function of the interference rate, the number of
//! profiling servers, the arrival process (Poisson vs. bursty lognormal) and
//! the application-popularity distribution that determines how often global
//! information lets DeepDive skip a full profiling run.
//!
//! * [`events`] — a deterministic multi-server FCFS queue simulator.
//! * [`profiler_farm`] — DeepDive-specific job generation: which arrivals
//!   need profiling, how long a run takes, and when global information
//!   shortens it.
//! * [`scenarios`] — the parameter sweeps that regenerate each curve of
//!   Figs. 13 and 14.
//! * [`schedule`] — a deterministic time-ordered event queue (stable ties,
//!   total float order), the primitive behind the event-driven datacenter
//!   service in `cloudsim`.

pub mod events;
pub mod profiler_farm;
pub mod scenarios;
pub mod schedule;

pub use events::{simulate_queue, Job, JobOutcome, QueueResult};
pub use profiler_farm::{FarmConfig, FarmResult, ProfilerFarm};
pub use scenarios::{reaction_time_curve, CurvePoint, ScenarioConfig};
pub use schedule::EventQueue;
