//! DeepDive's profiling farm: turning VM arrivals into analyzer jobs.
//!
//! Following the paper's methodology (§5.5), the farm model takes a stream of
//! VM arrivals, marks a configurable fraction of them as "undergoing
//! interference" (each such VM needs one full analyzer run), draws the
//! service time of a full run from the distribution measured in the live
//! experiments, and — when global information is enabled — replaces the full
//! run with a much shorter verification for VMs whose application has
//! already been profiled before.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use traces::arrivals::VmArrival;

use crate::events::{simulate_queue, Job, QueueResult};

/// Configuration of the profiling farm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FarmConfig {
    /// Number of dedicated profiling servers.
    pub servers: usize,
    /// Fraction of arriving VMs that undergo interference and need analysis.
    pub interference_fraction: f64,
    /// Mean service time of a full analyzer run, in seconds (cloning,
    /// workload replay and comparison; minutes in the live experiments).
    pub full_service_mean_s: f64,
    /// Half-width of the uniform jitter around the mean service time.
    pub full_service_jitter_s: f64,
    /// Service time of the shortened check used when the application's
    /// behaviour is already known from another VM (global information).
    pub known_app_service_s: f64,
    /// Whether global information may be used at all.
    pub use_global_information: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            servers: 4,
            interference_fraction: 0.2,
            full_service_mean_s: 240.0,
            full_service_jitter_s: 60.0,
            known_app_service_s: 45.0,
            use_global_information: false,
            seed: 0xFA12,
        }
    }
}

/// Result of running the farm over an arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarmResult {
    /// The underlying queueing result.
    pub queue: QueueResult,
    /// Number of full analyzer runs performed.
    pub full_runs: usize,
    /// Number of runs shortened thanks to global information.
    pub shortened_runs: usize,
    /// Offered utilization of the farm over the horizon.
    pub utilization: f64,
    /// Simulation horizon in seconds.
    pub horizon_s: f64,
}

impl FarmResult {
    /// Mean reaction time in minutes (the Fig. 13/14 y-axis).
    pub fn mean_reaction_minutes(&self) -> f64 {
        self.queue.mean_reaction_s() / 60.0
    }

    /// True when the farm kept up: utilization below one and acceptable
    /// waiting (the paper cuts its curves at a 10-minute wait).
    pub fn is_stable(&self, max_wait_s: f64) -> bool {
        self.utilization < 1.0 && self.queue.mean_waiting_s() <= max_wait_s
    }
}

/// The profiling farm.
#[derive(Debug, Clone)]
pub struct ProfilerFarm {
    config: FarmConfig,
}

impl ProfilerFarm {
    /// Creates a farm with the given configuration.
    ///
    /// # Panics
    /// Panics on zero servers, a fraction outside `[0, 1]`, or non-positive
    /// service times.
    pub fn new(config: FarmConfig) -> Self {
        assert!(config.servers > 0, "need at least one profiling server");
        assert!(
            (0.0..=1.0).contains(&config.interference_fraction),
            "interference fraction must be in [0, 1]"
        );
        assert!(
            config.full_service_mean_s > 0.0,
            "service time must be positive"
        );
        assert!(
            config.known_app_service_s > 0.0,
            "shortened service time must be positive"
        );
        assert!(
            config.full_service_jitter_s >= 0.0
                && config.full_service_jitter_s < config.full_service_mean_s,
            "jitter must be non-negative and below the mean"
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FarmConfig {
        &self.config
    }

    /// Runs the farm over a VM-arrival stream spanning `horizon_s` seconds.
    pub fn run(&self, arrivals: &[VmArrival], horizon_s: f64) -> FarmResult {
        assert!(horizon_s > 0.0, "horizon must be positive");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut seen_apps = std::collections::HashSet::new();
        let mut jobs = Vec::new();
        let mut full_runs = 0usize;
        let mut shortened_runs = 0usize;
        for arrival in arrivals {
            // Draw both random values for every arrival so that whether a VM
            // undergoes interference is independent of the configuration
            // (the "with" and "without" global-information runs then see the
            // exact same interference events, as in a paired experiment).
            let interferes = rng.gen_range(0.0..1.0) < self.config.interference_fraction;
            let jitter = if self.config.full_service_jitter_s > 0.0 {
                rng.gen_range(
                    -self.config.full_service_jitter_s..=self.config.full_service_jitter_s,
                )
            } else {
                0.0
            };
            if !interferes {
                continue;
            }
            let known = self.config.use_global_information && seen_apps.contains(&arrival.app_rank);
            let service = if known {
                shortened_runs += 1;
                self.config.known_app_service_s
            } else {
                full_runs += 1;
                seen_apps.insert(arrival.app_rank);
                self.config.full_service_mean_s + jitter
            };
            jobs.push(Job {
                arrival_s: arrival.arrival_s,
                service_s: service,
            });
        }
        let queue = simulate_queue(&jobs, self.config.servers);
        let utilization = queue.utilization(self.config.servers, horizon_s);
        FarmResult {
            queue,
            full_runs,
            shortened_runs,
            utilization,
            horizon_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::arrivals::{generate_arrivals, ArrivalModel};

    fn arrivals(popularity: Option<(usize, f64)>) -> (Vec<VmArrival>, f64) {
        let horizon_days = 3.0;
        (
            generate_arrivals(1_000.0, horizon_days, ArrivalModel::Poisson, popularity, 11),
            horizon_days * 86_400.0,
        )
    }

    #[test]
    fn four_servers_handle_twenty_percent_interference_within_minutes() {
        // The paper's headline scalability claim (§5.5): four profiling
        // servers give a ~4-minute reaction time at a 20% interference rate.
        let (stream, horizon) = arrivals(None);
        let farm = ProfilerFarm::new(FarmConfig {
            servers: 4,
            interference_fraction: 0.2,
            ..Default::default()
        });
        let result = farm.run(&stream, horizon);
        assert!(result.is_stable(600.0));
        assert!(
            result.mean_reaction_minutes() < 6.0,
            "reaction {} min",
            result.mean_reaction_minutes()
        );
    }

    #[test]
    fn more_servers_reduce_reaction_time() {
        let (stream, horizon) = arrivals(None);
        let mut previous = f64::INFINITY;
        for servers in [2, 4, 8, 16] {
            let farm = ProfilerFarm::new(FarmConfig {
                servers,
                interference_fraction: 0.6,
                ..Default::default()
            });
            let result = farm.run(&stream, horizon);
            assert!(
                result.queue.mean_reaction_s() <= previous + 1e-9,
                "reaction time increased when adding servers"
            );
            previous = result.queue.mean_reaction_s();
        }
    }

    #[test]
    fn higher_interference_fraction_increases_load() {
        let (stream, horizon) = arrivals(None);
        let low = ProfilerFarm::new(FarmConfig {
            interference_fraction: 0.1,
            ..Default::default()
        })
        .run(&stream, horizon);
        let high = ProfilerFarm::new(FarmConfig {
            interference_fraction: 0.9,
            ..Default::default()
        })
        .run(&stream, horizon);
        assert!(high.utilization > low.utilization);
        assert!(high.full_runs > low.full_runs);
    }

    #[test]
    fn global_information_shortens_repeat_analyses() {
        let (stream, horizon) = arrivals(Some((200, 1.5)));
        let without = ProfilerFarm::new(FarmConfig {
            use_global_information: false,
            interference_fraction: 0.6,
            servers: 2,
            ..Default::default()
        })
        .run(&stream, horizon);
        let with = ProfilerFarm::new(FarmConfig {
            use_global_information: true,
            interference_fraction: 0.6,
            servers: 2,
            ..Default::default()
        })
        .run(&stream, horizon);
        assert_eq!(with.shortened_runs + with.full_runs, without.full_runs);
        assert!(with.shortened_runs > 0);
        assert!(
            with.queue.mean_reaction_s() < without.queue.mean_reaction_s(),
            "global info must improve reaction time ({} vs {})",
            with.queue.mean_reaction_s(),
            without.queue.mean_reaction_s()
        );
    }

    #[test]
    fn zero_interference_produces_no_jobs() {
        let (stream, horizon) = arrivals(None);
        let farm = ProfilerFarm::new(FarmConfig {
            interference_fraction: 0.0,
            ..Default::default()
        });
        let result = farm.run(&stream, horizon);
        assert_eq!(result.full_runs, 0);
        assert_eq!(result.queue.outcomes.len(), 0);
    }

    #[test]
    #[should_panic(expected = "interference fraction")]
    fn invalid_fraction_rejected() {
        ProfilerFarm::new(FarmConfig {
            interference_fraction: 1.5,
            ..Default::default()
        });
    }
}
