//! A deterministic time-ordered event queue.
//!
//! The event-driven datacenter front end (`cloudsim::service`) needs a
//! priority queue over `f64` timestamps with two properties the standard
//! [`std::collections::BinaryHeap`] does not give directly:
//!
//! * **Total order over floats** — timestamps are compared with
//!   [`f64::total_cmp`], so the queue never panics on exotic values and the
//!   order is a genuine total order.
//! * **Stable ties** — events scheduled for the same instant pop in
//!   insertion order (a monotone sequence number breaks ties), so replaying
//!   the same schedule always produces the same event order and the
//!   simulation stays bit-reproducible.
//!
//! The queue is generic over the event payload and makes no assumptions
//! about it; the service layer uses it for VM arrivals and departures.

/// A min-heap of `(time, event)` pairs with stable FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: std::collections::BinaryHeap<Entry<E>>,
    /// Monotone insertion counter; the tie-breaker that makes same-instant
    /// events pop in the order they were pushed.
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at.total_cmp(&other.at).is_eq() && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // among equal instants the lowest sequence number (pushed first).
        other
            .at
            .total_cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at instant `at` (seconds).  Instants may arrive in
    /// any order; equal instants preserve push order on pop.
    pub fn push(&mut self, at: f64, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `deadline` — the event loop's "drain everything up to the
    /// epoch boundary" primitive.
    pub fn pop_due(&mut self, deadline: f64) -> Option<(f64, E)> {
        if self.next_at()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Instant of the earliest pending event, if any.
    pub fn next_at(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, "c");
        q.push(1.0, "a");
        q.push(3.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_at(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_preserves_push_order() {
        let mut q = EventQueue::new();
        for i in 0..32 {
            q.push(2.5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.push(1.0, 'x');
        q.push(2.0, 'y');
        q.push(10.0, 'z');
        assert_eq!(q.pop_due(2.0), Some((1.0, 'x')));
        assert_eq!(q.pop_due(2.0), Some((2.0, 'y')));
        assert_eq!(q.pop_due(2.0), None, "z is after the deadline");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(f64::INFINITY), Some((10.0, 'z')));
        assert_eq!(q.pop_due(f64::INFINITY), None, "empty queue");
    }

    #[test]
    fn exotic_floats_do_not_panic_the_order() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, "nan");
        q.push(0.0, "zero");
        q.push(f64::NEG_INFINITY, "neg-inf");
        assert_eq!(q.pop(), Some((f64::NEG_INFINITY, "neg-inf")));
        assert_eq!(q.pop().map(|(_, e)| e), Some("zero"));
        // total_cmp orders NaN after every finite value.
        assert_eq!(q.pop().map(|(_, e)| e), Some("nan"));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.next_at(), None);
    }
}
