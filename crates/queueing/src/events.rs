//! A deterministic multi-server FCFS queue simulator.
//!
//! Jobs (profiling requests) arrive at known instants and require known
//! service times; `k` identical servers process them first-come-first-served.
//! The simulator reports, per job, when service started and finished, from
//! which the farm model derives waiting and reaction times.  The
//! implementation is a simple event sweep over the arrival-ordered jobs —
//! with FCFS and identical servers, each job simply takes the earliest-free
//! server.

use serde::{Deserialize, Serialize};

/// One profiling request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Arrival instant, in seconds.
    pub arrival_s: f64,
    /// Service requirement, in seconds.
    pub service_s: f64,
}

/// Completion record for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job as submitted.
    pub job: Job,
    /// When a server started working on it.
    pub start_s: f64,
    /// When the analysis finished.
    pub finish_s: f64,
}

impl JobOutcome {
    /// Time spent waiting for a free server.
    pub fn waiting_s(&self) -> f64 {
        self.start_s - self.job.arrival_s
    }

    /// Reaction time: waiting plus service (arrival to completion).
    pub fn reaction_s(&self) -> f64 {
        self.finish_s - self.job.arrival_s
    }
}

/// Aggregate result of a queue simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueResult {
    /// Per-job outcomes, in arrival order.
    pub outcomes: Vec<JobOutcome>,
}

impl QueueResult {
    /// Mean reaction time in seconds (zero for an empty run).
    pub fn mean_reaction_s(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.reaction_s()).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Mean waiting time in seconds.
    pub fn mean_waiting_s(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.waiting_s()).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Largest waiting time observed.
    pub fn max_waiting_s(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.waiting_s())
            .fold(0.0, f64::max)
    }

    /// Total busy time summed over all servers (the accumulated profiling
    /// time of Fig. 12).
    pub fn total_busy_s(&self) -> f64 {
        self.outcomes.iter().map(|o| o.job.service_s).sum()
    }

    /// Offered utilization: total service demand divided by the capacity the
    /// servers offer over the simulated horizon.  Values at or above 1 mean
    /// the system is unstable (the queue grows without bound).
    pub fn utilization(&self, servers: usize, horizon_s: f64) -> f64 {
        if horizon_s <= 0.0 || servers == 0 {
            return f64::INFINITY;
        }
        self.total_busy_s() / (servers as f64 * horizon_s)
    }
}

/// Simulates `k` identical FCFS servers over the given jobs.
///
/// Jobs must be sorted by arrival time.
///
/// # Panics
/// Panics if `servers` is zero, a job has negative service time, or the jobs
/// are not sorted by arrival.
pub fn simulate_queue(jobs: &[Job], servers: usize) -> QueueResult {
    assert!(servers > 0, "need at least one server");
    let mut free_at = vec![0.0_f64; servers];
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut last_arrival = f64::NEG_INFINITY;
    for job in jobs {
        assert!(job.service_s >= 0.0, "negative service time");
        assert!(
            job.arrival_s >= last_arrival,
            "jobs must be sorted by arrival time"
        );
        last_arrival = job.arrival_s;
        // Pick the server that frees up first.
        let (server, &earliest) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("at least one server");
        let start = job.arrival_s.max(earliest);
        let finish = start + job.service_s;
        free_at[server] = finish;
        outcomes.push(JobOutcome {
            job: *job,
            start_s: start,
            finish_s: finish,
        });
    }
    QueueResult { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(arrival: f64, service: f64) -> Job {
        Job {
            arrival_s: arrival,
            service_s: service,
        }
    }

    #[test]
    fn single_server_serializes_jobs() {
        let jobs = vec![job(0.0, 10.0), job(1.0, 10.0), job(2.0, 10.0)];
        let result = simulate_queue(&jobs, 1);
        assert_eq!(result.outcomes[0].waiting_s(), 0.0);
        assert!((result.outcomes[1].waiting_s() - 9.0).abs() < 1e-12);
        assert!((result.outcomes[2].waiting_s() - 18.0).abs() < 1e-12);
        assert!((result.total_busy_s() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn enough_servers_remove_all_waiting() {
        let jobs = vec![job(0.0, 10.0), job(1.0, 10.0), job(2.0, 10.0)];
        let result = simulate_queue(&jobs, 3);
        assert_eq!(result.mean_waiting_s(), 0.0);
        assert!((result.mean_reaction_s() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn more_servers_never_hurt_reaction_time() {
        let jobs: Vec<Job> = (0..50).map(|i| job(i as f64 * 30.0, 200.0)).collect();
        let two = simulate_queue(&jobs, 2);
        let four = simulate_queue(&jobs, 4);
        let eight = simulate_queue(&jobs, 8);
        assert!(four.mean_reaction_s() <= two.mean_reaction_s());
        assert!(eight.mean_reaction_s() <= four.mean_reaction_s());
    }

    #[test]
    fn utilization_flags_overload() {
        let jobs: Vec<Job> = (0..100).map(|i| job(i as f64, 10.0)).collect();
        let result = simulate_queue(&jobs, 1);
        // 1000 s of work offered over a ~100 s horizon on one server.
        assert!(result.utilization(1, 100.0) > 1.0);
        assert!(result.utilization(20, 100.0) < 1.0);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let result = simulate_queue(&[], 4);
        assert_eq!(result.mean_reaction_s(), 0.0);
        assert_eq!(result.total_busy_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_jobs_rejected() {
        simulate_queue(&[job(5.0, 1.0), job(1.0, 1.0)], 1);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        simulate_queue(&[job(0.0, 1.0)], 0);
    }
}
