//! Parameter sweeps regenerating the curves of Figs. 13 and 14.
//!
//! Each curve in the paper plots the mean reaction time (minutes) against
//! the fraction of VMs undergoing interference, for a given number of
//! profiling servers, arrival process and application-popularity
//! distribution.  Curves stop "where the system becomes unstable or
//! excessively slow"; we reproduce that by returning `None` for sweep points
//! where the farm is overloaded or the mean wait exceeds ten minutes.

use serde::{Deserialize, Serialize};
use traces::arrivals::{generate_arrivals, ArrivalModel};

use crate::profiler_farm::{FarmConfig, ProfilerFarm};

/// Wait threshold beyond which the paper considers the system "excessively
/// slow" and stops drawing the curve (10 minutes).
pub const MAX_ACCEPTABLE_WAIT_S: f64 = 600.0;

/// Scenario parameters shared by a whole curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// New VMs per day (the paper uses 1000).
    pub arrivals_per_day: f64,
    /// Experiment horizon in days.
    pub horizon_days: f64,
    /// Number of profiling servers.
    pub servers: usize,
    /// Arrival process.
    pub arrival_model: ArrivalModel,
    /// Application popularity: `Some((apps, alpha))` enables global
    /// information over a Zipf popularity with tail index `alpha`; `None`
    /// means every VM runs unique code (no global information).
    pub popularity: Option<(usize, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            arrivals_per_day: 1_000.0,
            horizon_days: 3.0,
            servers: 4,
            arrival_model: ArrivalModel::Poisson,
            popularity: None,
            seed: 0x5CEB,
        }
    }
}

/// One point of a reaction-time curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Fraction of VMs undergoing interference (the x-axis).
    pub interference_fraction: f64,
    /// Mean reaction time in minutes, or `None` where the system is
    /// unstable or excessively slow (the curve stops).
    pub mean_reaction_minutes: Option<f64>,
    /// Offered farm utilization at this point.
    pub utilization: f64,
}

/// Computes a full reaction-time curve over the given interference fractions.
pub fn reaction_time_curve(config: &ScenarioConfig, fractions: &[f64]) -> Vec<CurvePoint> {
    assert!(!fractions.is_empty(), "curve needs at least one x value");
    let arrivals = generate_arrivals(
        config.arrivals_per_day,
        config.horizon_days,
        config.arrival_model,
        config.popularity,
        config.seed,
    );
    let horizon_s = config.horizon_days * 86_400.0;
    fractions
        .iter()
        .map(|&fraction| {
            let farm = ProfilerFarm::new(FarmConfig {
                servers: config.servers,
                interference_fraction: fraction,
                use_global_information: config.popularity.is_some(),
                seed: config.seed ^ 0xF00D,
                ..Default::default()
            });
            let result = farm.run(&arrivals, horizon_s);
            let stable = result.is_stable(MAX_ACCEPTABLE_WAIT_S);
            CurvePoint {
                interference_fraction: fraction,
                mean_reaction_minutes: stable.then(|| result.mean_reaction_minutes()),
                utilization: result.utilization,
            }
        })
        .collect()
}

/// The x-axis used by the paper's figures: 0% to 100% in 10-point steps.
pub fn paper_fractions() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_reports_every_requested_fraction() {
        let curve = reaction_time_curve(&ScenarioConfig::default(), &paper_fractions());
        assert_eq!(curve.len(), 11);
        assert!((curve[0].interference_fraction - 0.0).abs() < 1e-12);
        assert!((curve[10].interference_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_servers_saturate_before_sixteen() {
        let fractions = paper_fractions();
        let two = reaction_time_curve(
            &ScenarioConfig {
                servers: 2,
                ..Default::default()
            },
            &fractions,
        );
        let sixteen = reaction_time_curve(
            &ScenarioConfig {
                servers: 16,
                ..Default::default()
            },
            &fractions,
        );
        let stable_points = |curve: &[CurvePoint]| {
            curve
                .iter()
                .filter(|p| p.mean_reaction_minutes.is_some())
                .count()
        };
        assert!(
            stable_points(&two) < stable_points(&sixteen),
            "two servers should cover fewer stable points than sixteen"
        );
        // Where both are stable, more servers is never slower.
        for (a, b) in two.iter().zip(&sixteen) {
            if let (Some(ra), Some(rb)) = (a.mean_reaction_minutes, b.mean_reaction_minutes) {
                assert!(rb <= ra + 1e-9);
            }
        }
    }

    #[test]
    fn global_information_extends_and_lowers_the_curve() {
        let fractions = paper_fractions();
        let local_only = reaction_time_curve(
            &ScenarioConfig {
                servers: 2,
                popularity: None,
                ..Default::default()
            },
            &fractions,
        );
        let with_global = reaction_time_curve(
            &ScenarioConfig {
                servers: 2,
                popularity: Some((200, 1.5)),
                ..Default::default()
            },
            &fractions,
        );
        let stable = |c: &[CurvePoint]| {
            c.iter()
                .filter(|p| p.mean_reaction_minutes.is_some())
                .count()
        };
        assert!(stable(&with_global) >= stable(&local_only));
        // At a mid-range interference fraction global info lowers the mean
        // reaction time.
        let mid = 5;
        if let (Some(a), Some(b)) = (
            local_only[mid].mean_reaction_minutes,
            with_global[mid].mean_reaction_minutes,
        ) {
            assert!(b <= a);
        }
    }

    #[test]
    fn heavier_popularity_tail_helps_more() {
        let fractions = vec![0.6];
        let light = reaction_time_curve(
            &ScenarioConfig {
                servers: 4,
                popularity: Some((500, 1.0)),
                ..Default::default()
            },
            &fractions,
        );
        let heavy = reaction_time_curve(
            &ScenarioConfig {
                servers: 4,
                popularity: Some((500, 2.5)),
                ..Default::default()
            },
            &fractions,
        );
        assert!(heavy[0].utilization <= light[0].utilization + 1e-9);
    }

    #[test]
    fn lognormal_arrivals_are_supported() {
        let curve = reaction_time_curve(
            &ScenarioConfig {
                arrival_model: ArrivalModel::Lognormal { sigma: 2.0 },
                servers: 8,
                ..Default::default()
            },
            &[0.2, 0.6],
        );
        assert_eq!(curve.len(), 2);
        assert!(curve.iter().all(|p| p.utilization.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least one x value")]
    fn empty_fractions_rejected() {
        reaction_time_curve(&ScenarioConfig::default(), &[]);
    }
}
