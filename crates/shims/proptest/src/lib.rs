//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest this workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, range and tuple
//! strategies, [`Strategy::prop_map`], `prop_assert!`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`]. Unlike the real crate there is no
//! shrinking and no persisted failure seeds: every run draws the same
//! deterministic seed sequence, so failures reproduce exactly and test time
//! is a pure function of the configured case count.

use rand::rngs::StdRng;
use rand::{SampleRange, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one input.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated inputs through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy generating a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Executes one property over `config.cases` accepted inputs.
///
/// Deterministic: case `i` of a property always sees the same RNG stream, on
/// every machine and every run.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while accepted < config.cases {
        // Stable per-property stream: hash the name with the attempt index.
        let seed = fnv1a(name.as_bytes())
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(attempt);
        let mut rng = StdRng::seed_from_u64(seed);
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}`: too many rejected cases ({rejected}) — \
                         prop_assume! condition is too strict"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {accepted} (attempt {attempt}): {msg}");
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Draws one value from a strategy — the binding form used by [`proptest!`].
pub fn draw<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.generate(rng)
}

/// Defines property tests: `proptest! { #[test] fn prop(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::draw(&($strategy), __rng);)+
                    let __case = || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Asserts within a property body, failing the case (not panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0..1.0_f64, n in 1usize..50) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..50).contains(&n));
        }

        #[test]
        fn prop_map_applies_function(doubled in (1u64..100).prop_map(|n| n * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!(doubled >= 2);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| -> TestCaseResult {
                prop_assert!(false);
                Ok(())
            },
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut values = Vec::new();
            crate::run_property(
                "det",
                &ProptestConfig::with_cases(16),
                |rng| -> TestCaseResult {
                    values.push(crate::draw(&(0.0..1.0_f64), rng));
                    Ok(())
                },
            );
            values
        };
        assert_eq!(collect(), collect());
    }
}
