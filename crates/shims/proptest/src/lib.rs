//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest this workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, range and tuple
//! strategies, [`Strategy::prop_map`], weighted [`prop_oneof!`] unions,
//! [`collection::vec`], `prop_assert!`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`]. Unlike the real crate there is no
//! shrinking and no persisted failure seeds: every run draws the same
//! deterministic seed sequence, so failures reproduce exactly and test time
//! is a pure function of the configured case count.

use rand::rngs::StdRng;
use rand::{SampleRange, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// The RNG handed to strategies — re-exported so macro expansions in other
/// crates can name the type without depending on `rand` themselves.
pub use rand::rngs::StdRng as TestRng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one input.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated inputs through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy generating a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// One type-erased [`prop_oneof!`] arm: a weight plus a boxed generator.
pub type OneOfArm<T> = (u32, Box<dyn Fn(&mut StdRng) -> T>);

/// Weighted union over same-valued strategies, built by [`prop_oneof!`].
///
/// Arms are type-erased so heterogeneous strategy *types* (e.g. a [`Just`]
/// next to a [`Map`]) can share one union as long as they generate the same
/// value type — matching how the real crate's `TupleUnion` boxes its arms.
pub struct OneOf<T> {
    arms: Vec<OneOfArm<T>>,
    total_weight: u32,
}

impl<T> OneOf<T> {
    /// Builds a union; panics on an empty arm list or all-zero weights.
    pub fn new(arms: Vec<OneOfArm<T>>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one arm with nonzero weight"
        );
        Self { arms, total_weight }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = SampleRange::sample_single(0..self.total_weight, rng);
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm(rng);
            }
            pick -= weight;
        }
        unreachable!("pick < total_weight, so some arm must match")
    }
}

/// Boxes one [`prop_oneof!`] arm.  A named generic function (rather than an
/// inline `as Box<dyn Fn...>` cast in the macro) so the arms' shared value
/// type unifies through `T` instead of fighting integer-literal fallback.
#[doc(hidden)]
pub fn one_of_arm<S>(weight: u32, strategy: S) -> OneOfArm<S::Value>
where
    S: Strategy + 'static,
{
    (weight, Box::new(move |rng| strategy.generate(rng)))
}

/// Builds a [`OneOf`] union: `prop_oneof![3 => a, 1 => b]` (weighted) or
/// `prop_oneof![a, b]` (uniform).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![
            $($crate::one_of_arm($weight as u32, $strategy)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{SampleRange, StdRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from a range, built by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "collection::vec size range is empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = SampleRange::sample_single(self.size.clone(), rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Executes one property over `config.cases` accepted inputs.
///
/// Deterministic: case `i` of a property always sees the same RNG stream, on
/// every machine and every run.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while accepted < config.cases {
        // Stable per-property stream: hash the name with the attempt index.
        let seed = fnv1a(name.as_bytes())
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(attempt);
        let mut rng = StdRng::seed_from_u64(seed);
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}`: too many rejected cases ({rejected}) — \
                         prop_assume! condition is too strict"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {accepted} (attempt {attempt}): {msg}");
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Draws one value from a strategy — the binding form used by [`proptest!`].
pub fn draw<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.generate(rng)
}

/// Defines property tests: `proptest! { #[test] fn prop(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::draw(&($strategy), __rng);)+
                    let __case = || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Asserts within a property body, failing the case (not panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0..1.0_f64, n in 1usize..50) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..50).contains(&n));
        }

        #[test]
        fn prop_map_applies_function(doubled in (1u64..100).prop_map(|n| n * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!(doubled >= 2);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0, "x was {}", x);
        }

        #[test]
        fn oneof_draws_only_nonzero_weight_arms(
            x in prop_oneof![3 => Just(1u8), 1 => 10u8..20, 0 => Just(99u8)],
        ) {
            prop_assert!(x == 1 || (10..20).contains(&x), "x was {}", x);
        }

        #[test]
        fn collection_vec_respects_size_range(
            v in crate::collection::vec(0u64..5, 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| -> TestCaseResult {
                prop_assert!(false);
                Ok(())
            },
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut values = Vec::new();
            crate::run_property(
                "det",
                &ProptestConfig::with_cases(16),
                |rng| -> TestCaseResult {
                    values.push(crate::draw(&(0.0..1.0_f64), rng));
                    Ok(())
                },
            );
            values
        };
        assert_eq!(collect(), collect());
    }
}
