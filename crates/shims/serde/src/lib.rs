//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization framework with the same *spelling* as serde — `use
//! serde::{Serialize, Deserialize}` and `#[derive(Serialize, Deserialize)]`
//! work unchanged — but a much simpler model: values serialize to an
//! in-memory JSON [`Value`] tree, which the `serde_json` shim renders to and
//! parses from text. Derived encodings follow serde's defaults: structs as
//! objects, newtype structs as their inner value, unit enum variants as
//! strings, data-carrying variants as single-key objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object; lookups are linear, which is fine at the
    /// sizes this workspace serializes.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, or an error if this is not an object.
    pub fn as_object(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(fields) => Ok(fields),
            other => Err(Error::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// The array's elements, or an error if this is not an array.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Standard "missing field" error used by derived impls.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::new(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// Standard "unknown variant" error used by derived impls.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Self::new(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted to a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// A `Value` converts to and from itself, so callers can deserialize into
// the dynamic tree and inspect it structurally (as `serde_json::Value`
// permits) — e.g. the bench-JSON validator checking dumps whose rows are
// heterogeneous objects.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::new(format!("integer {n} out of range for i64")))?,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array()?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of length {expected}, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types usable as JSON object keys (JSON keys are always strings).
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from a string.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error::new(format!("invalid {} map key `{key}`", stringify!($t))))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        // A VecDeque serializes exactly like a Vec (a JSON array), so
        // swapping the backing collection never changes the wire format.
        let dq: VecDeque<f64> = v.iter().copied().collect();
        assert_eq!(dq.to_value(), v.to_value());
        assert_eq!(VecDeque::<f64>::from_value(&dq.to_value()).unwrap(), dq);
        let mut m = HashMap::new();
        m.insert(3u64, "three".to_string());
        m.insert(1u64, "one".to_string());
        assert_eq!(
            HashMap::<u64, String>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn hashmap_serialization_is_deterministic() {
        let mut m = HashMap::new();
        for i in 0..20u64 {
            m.insert(i, i as f64);
        }
        assert_eq!(m.to_value(), m.clone().to_value());
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
    }
}
