//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of `rand` it actually uses: a deterministic, seedable
//! [`rngs::StdRng`] plus [`Rng::gen_range`] over integer and float ranges.
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality
//! enough for the statistical assertions in the test suites, and fully
//! deterministic for a given seed on every platform.
//!
//! Only the API surface exercised by this workspace is provided; this is not
//! a general replacement for the real crate.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0.0..1.0)` or
    /// `rng.gen_range(0..len)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli sample with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform sampler. The `SampleRange` impls are generic
/// over this trait (as in the real crate) so that float-literal ranges like
/// `rng.gen_range(-0.1..=0.1)` still infer `f64` from surrounding arithmetic.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the half-open interval `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform sample from the closed interval `[start, end]`.
    fn sample_closed<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        T::sample_closed(start, end, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128) as u128;
                // Lemire-style widening multiply: unbiased enough for the
                // span sizes used here (all far below 2^64).
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + hi) as $t
            }

            fn sample_closed<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                start + (rng.gen_f64() as $t) * (end - start)
            }

            fn sample_closed<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                start + (rng.gen_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the workspace's standard RNG.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (which is
    /// ChaCha12), but every consumer in this workspace only relies on
    /// *determinism per seed*, never on a specific stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors; guarantees a non-zero state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0_f64), b.gen_range(0.0..1.0_f64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen_f64()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_f64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: usize = rng.gen_range(1..=5);
            assert!((1..=5).contains(&m));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
