//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the workspace `serde` shim's [`serde::Value`] tree to JSON text
//! and parses it back: [`to_string`] and [`from_str`] cover everything this
//! workspace uses (the DeepDive behaviour repository's durable-store
//! round-trip). Floats are written with Rust's shortest round-trip
//! formatting, so `f64` values survive a round trip bit-exactly.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // `{:?}` is Rust's shortest representation that round-trips.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'n' => self.parse_literal("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, found `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(Error::new(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let c = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalars_round_trip_through_text() {
        let x = 0.1234567890123456_f64;
        let json = to_string(&x).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(x, back);
        let n: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(n, u64::MAX);
    }

    #[test]
    fn collections_round_trip_through_text() {
        let mut m: HashMap<u64, Vec<f64>> = HashMap::new();
        m.insert(1, vec![1.0, 2.5]);
        m.insert(9, vec![]);
        let back: HashMap<u64, Vec<f64>> = from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "line\none \"two\" \\three\\ \ttab é漢".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
