//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! workspace `serde` shim's `Value` model, without `syn`/`quote` (neither is
//! available offline): the item is parsed directly from the raw
//! `proc_macro::TokenStream` and the impl is emitted as source text.
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields → JSON objects,
//! * tuple structs: arity 1 (newtypes) as the inner value, larger as arrays,
//! * enums with unit, tuple, and struct variants, externally tagged like
//!   serde's default (`"Variant"` / `{"Variant": ...}`).
//!
//! Generics and `#[serde(...)]` attributes are intentionally not supported;
//! deriving on such an item is a compile-time panic rather than silent
//! misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    body: Body,
}

enum Body {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: field count.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    let body = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum `{name}` has no body"),
        },
        other => panic!("serde shim derive supports structs and enums, found `{other}`"),
    };
    Item { name, body }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(*i), tokens.get(*i + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            *i += 2;
        } else {
            break;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(&tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists, returning the names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past a type, stopping at a top-level (angle-depth 0) comma.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct/variant from its parenthesized body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, token) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx + 1 == tokens.len() {
                        saw_trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantBody::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            let mut depth = 0i32;
            while let Some(token) = tokens.get(i) {
                if let TokenTree::Punct(p) = token {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => break,
                        _ => {}
                    }
                }
                i += 1;
            }
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantBody::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantBody::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Array(::std::vec![{items}]))]),",
                                binders.join(", ")
                            )
                        }
                        VariantBody::Struct(fields) => {
                            let binders = fields.join(", ");
                            let items: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.get(\"{f}\").ok_or_else(|| ::serde::Error::missing_field(\"{name}\", \"{f}\"))?)?,"
                    )
                })
                .collect();
            format!("let _ = __v.as_object()?; ::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Tuple(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                .collect();
            format!(
                "let __items = __v.as_array()?; if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::new(::std::format!(\"expected array of length {n} for {name}, found {{}}\", __items.len()))); }} ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Body::Unit => format!("let _ = __v; ::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.body, VariantBody::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => None,
                        VariantBody::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantBody::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let __items = __inner.as_array()?; if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::new(::std::format!(\"expected array of length {n} for {name}::{vname}, found {{}}\", __items.len()))); }} ::std::result::Result::Ok({name}::{vname}({inits})) }}"
                            ))
                        }
                        VariantBody::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(__inner.get(\"{f}\").ok_or_else(|| ::serde::Error::missing_field(\"{name}::{vname}\", \"{f}\"))?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} __other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", __other)), }},\n\
                 ::serde::Value::Object(__fields) if __fields.len() == 1 => {{ let (__tag, __inner) = &__fields[0]; match __tag.as_str() {{ {data_arms} __other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", __other)), }} }},\n\
                 __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"expected enum {name}, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n}}"
    )
}
