//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmark-harness surface the `bench` crate's figure benches
//! use — `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, and [`Bencher::iter`] — with a simple
//! measurement loop instead of criterion's statistical machinery: each
//! benchmark is warmed up, then timed over enough iterations to fill a small
//! budget, and the mean ns/iteration is printed. Good enough to compare runs
//! by eye and to keep `cargo bench` fast; not a statistics engine.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver, one per bench target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples (scales the time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            // ~100 µs of measurement per sample keeps the whole suite quick
            // while still averaging over many iterations for fast kernels.
            budget: Duration::from_micros(100).saturating_mul(self.sample_size as u32),
            measured: None,
        };
        f(&mut bencher);
        match bencher.measured {
            Some((iters, elapsed)) => {
                let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                println!(
                    "bench: {}/{id}: {ns_per_iter:.0} ns/iter ({iters} iterations)",
                    self.name
                );
            }
            None => println!("bench: {}/{id}: no measurement taken", self.name),
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    budget: Duration,
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and calibration: run once to estimate per-iteration cost.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        self.measured = Some((iters, start.elapsed()));
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_returns_self() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        let mut runs = 0u64;
        group
            .sample_size(10)
            .bench_function("counter", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0, "routine should have been executed");
    }

    #[test]
    fn macros_compose_into_a_main() {
        fn kernel(c: &mut Criterion) {
            let mut group = c.benchmark_group("macro");
            group.sample_size(10);
            group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            group.finish();
        }
        criterion_group!(benches, kernel);
        benches();
    }
}
