//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the [`Exp`] and [`LogNormal`] distributions (the only ones this
//! workspace samples) over the vendored `rand` shim. Inverse-transform
//! sampling for the exponential and Box–Muller for the normal keep the
//! implementations short while matching the distributions' exact laws, which
//! the statistical tests in `analytics` and `queueing` rely on.

use rand::Rng;

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be sampled with an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Builds the distribution; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Self { lambda })
        } else {
            Err(Error("Exp rate must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform; 1 - u is in (0, 1] so the log is finite.
        let u = rng.gen_f64();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Builds the distribution; `sigma` must be non-negative and finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma >= 0.0 && sigma.is_finite() && mu.is_finite() {
            Ok(Self { mu, sigma })
        } else {
            Err(Error("LogNormal parameters must be finite with sigma >= 0"))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = loop {
        let u = rng.gen_f64();
        if u > 0.0 {
            break u;
        }
    };
    let u2 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_matches_rate() {
        let exp = Exp::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let (mu, sigma) = (1.0, 0.5);
        let dist = LogNormal::new(mu, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = (mu + sigma * sigma / 2.0_f64).exp();
        assert!(
            (mean / expected - 1.0).abs() < 0.02,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn samples_are_positive() {
        let exp = Exp::new(1.0).unwrap();
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(exp.sample(&mut rng) >= 0.0);
            assert!(ln.sample(&mut rng) > 0.0);
        }
    }
}
