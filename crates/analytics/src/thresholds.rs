//! Per-metric classification thresholds — the `MT` vector of §4.1.
//!
//! "The challenge here is to define metric thresholds MT that properly
//! separate representative VM behaviors from background noise, while also
//! properly identifying interference.  [...] In producing the clusters, the
//! algorithm also defines the metric thresholds."
//!
//! We derive the thresholds from the fitted mixture: for every metric the
//! allowed deviation is `k` standard deviations of the widest normal cluster
//! in that dimension (plus a small absolute floor for near-constant metrics).
//! A new observation *matches* the learned normal behaviours when some
//! cluster contains it within the per-metric thresholds; otherwise the
//! warning system escalates.

use serde::{Deserialize, Serialize};

use crate::gmm::GaussianMixture;

/// Default number of standard deviations allowed before a metric is
/// considered to have deviated from a normal cluster.
pub const DEFAULT_SIGMA_MULTIPLIER: f64 = 3.0;

/// Absolute floor added to every threshold so that near-constant metrics do
/// not fire on measurement noise.
pub const ABSOLUTE_FLOOR: f64 = 1e-3;

/// Relative floor: every threshold is at least this fraction of the cluster
/// mean in that dimension, so that clusters learned from near-identical
/// samples (e.g. a constant-load bootstrap phase) still tolerate ordinary
/// measurement noise instead of firing on every epoch.
pub const RELATIVE_FLOOR: f64 = 0.10;

/// The per-metric threshold vector `MT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricThresholds {
    /// Allowed absolute deviation per metric dimension.
    pub per_metric: Vec<f64>,
    /// The σ-multiplier used to derive the thresholds.
    pub sigma_multiplier: f64,
}

impl MetricThresholds {
    /// Derives thresholds from a fitted mixture over the normal behaviours.
    ///
    /// For each dimension the threshold is the σ-multiplier times the largest
    /// per-cluster standard deviation, so behaviours anywhere inside (or
    /// near) a normal cluster pass, and points well outside every cluster
    /// fail.
    pub fn from_mixture(mixture: &GaussianMixture, sigma_multiplier: f64) -> Self {
        assert!(sigma_multiplier > 0.0, "sigma multiplier must be positive");
        let dims = mixture
            .components
            .first()
            .map(|c| c.mean.len())
            .unwrap_or(0);
        let mut per_metric = vec![ABSOLUTE_FLOOR; dims];
        for c in &mixture.components {
            for (slot, (&var, &mean)) in per_metric.iter_mut().zip(c.variance.iter().zip(&c.mean)) {
                let sigma = var.sqrt();
                let threshold =
                    (sigma * sigma_multiplier).max(mean.abs() * RELATIVE_FLOOR) + ABSOLUTE_FLOOR;
                *slot = slot.max(threshold);
            }
        }
        Self {
            per_metric,
            sigma_multiplier,
        }
    }

    /// Uniform thresholds (used by the conservative bootstrap mode before any
    /// cluster exists).
    pub fn uniform(dims: usize, value: f64) -> Self {
        assert!(value >= 0.0, "threshold must be non-negative");
        Self {
            per_metric: vec![value; dims],
            sigma_multiplier: 0.0,
        }
    }

    /// True when `point` lies within the thresholds of `center` in *every*
    /// dimension — the "within distance T from previous VM behaviors" test of
    /// Algorithm 1.
    pub fn matches(&self, center: &[f64], point: &[f64]) -> bool {
        assert_eq!(center.len(), point.len(), "dimension mismatch in matches");
        assert_eq!(
            center.len(),
            self.per_metric.len(),
            "threshold dimension mismatch"
        );
        center
            .iter()
            .zip(point)
            .zip(&self.per_metric)
            .all(|((c, p), t)| (c - p).abs() <= *t)
    }

    /// Scales every threshold by `factor` (used by the sensitivity analysis:
    /// stricter thresholds ⇒ more analyzer invocations, looser ⇒ risk of
    /// false negatives).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self {
            per_metric: self.per_metric.iter().map(|t| t * factor).collect(),
            sigma_multiplier: self.sigma_multiplier * factor,
        }
    }

    /// Number of metric dimensions covered.
    pub fn dims(&self) -> usize {
        self.per_metric.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmm::GaussianMixture;

    fn tight_and_wide_clusters() -> GaussianMixture {
        let mut pts = Vec::new();
        for i in 0..40 {
            let j = (i % 5) as f64;
            pts.push(vec![0.0 + j * 0.01, 5.0 + j * 0.01]); // tight blob
            pts.push(vec![10.0 + j * 0.5, -5.0 - j * 0.5]); // wider blob
        }
        GaussianMixture::fit(&pts, 2, 100, 17)
    }

    #[test]
    fn thresholds_cover_every_dimension() {
        let mt = MetricThresholds::from_mixture(&tight_and_wide_clusters(), 3.0);
        assert_eq!(mt.dims(), 2);
        assert!(mt.per_metric.iter().all(|t| *t > 0.0));
    }

    #[test]
    fn wider_clusters_produce_larger_thresholds() {
        let mixture = tight_and_wide_clusters();
        let mt = MetricThresholds::from_mixture(&mixture, 3.0);
        // The wide blob has ~1.0 spread in both dims, so thresholds must be
        // well above the tight blob's 0.02 spread.
        assert!(mt.per_metric[0] > 0.5);
    }

    #[test]
    fn matches_accepts_in_cluster_and_rejects_far_points() {
        let mixture = tight_and_wide_clusters();
        let mt = MetricThresholds::from_mixture(&mixture, 3.0);
        let center = &mixture.components[0].mean;
        assert!(mt.matches(center, center));
        let mut far = center.clone();
        far[0] += 100.0;
        assert!(!mt.matches(center, &far));
    }

    #[test]
    fn sigma_multiplier_scales_tolerance() {
        let mixture = tight_and_wide_clusters();
        let strict = MetricThresholds::from_mixture(&mixture, 1.0);
        let loose = MetricThresholds::from_mixture(&mixture, 5.0);
        for (s, l) in strict.per_metric.iter().zip(&loose.per_metric) {
            assert!(l > s);
        }
    }

    #[test]
    fn uniform_thresholds_have_requested_value() {
        let mt = MetricThresholds::uniform(4, 0.25);
        assert_eq!(mt.dims(), 4);
        assert!(mt.matches(&[0.0; 4], &[0.2, -0.2, 0.1, 0.0]));
        assert!(!mt.matches(&[0.0; 4], &[0.3, 0.0, 0.0, 0.0]));
    }

    #[test]
    fn scaled_multiplies_every_threshold() {
        let mt = MetricThresholds::uniform(3, 1.0).scaled(2.0);
        assert!(mt.per_metric.iter().all(|t| (*t - 2.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dimensions_are_rejected() {
        let mt = MetricThresholds::uniform(2, 1.0);
        mt.matches(&[0.0, 0.0], &[0.0]);
    }
}
