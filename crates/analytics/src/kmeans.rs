//! Seeded k-means++ clustering.
//!
//! Used to initialize the expectation-maximization Gaussian-mixture fit in
//! [`crate::gmm`] (the standard recipe) and, on its own, as a cheap way of
//! grouping behaviours in tests.  Deterministic for a fixed seed so every
//! experiment in the repository is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::euclidean;

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Cluster centroids, one row per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Assignment of each training point to a centroid index.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroids.
    pub inertia: f64,
}

impl KMeans {
    /// Fits `k` clusters to `points` with at most `max_iters` Lloyd iterations.
    ///
    /// `points` may be any row type that dereferences to a `[f64]` slice
    /// (`Vec<f64>` rows or borrowed `&[f64]` rows), so callers can cluster
    /// borrowed data without copying it first.  `k` is clamped to the number
    /// of points.  Returns a degenerate model (no centroids) for empty input.
    ///
    /// # Panics
    /// Panics if `points` is ragged (rows of differing dimension).
    pub fn fit<P: AsRef<[f64]>>(points: &[P], k: usize, max_iters: usize, seed: u64) -> Self {
        if points.is_empty() || k == 0 {
            return Self {
                centroids: Vec::new(),
                assignments: Vec::new(),
                inertia: 0.0,
            };
        }
        let dims = points[0].as_ref().len();
        assert!(
            points.iter().all(|p| p.as_ref().len() == dims),
            "ragged input to KMeans::fit"
        );
        let k = k.min(points.len());
        let mut rng = StdRng::seed_from_u64(seed);

        let mut centroids = plus_plus_init(points, k, &mut rng);
        let mut assignments = vec![0usize; points.len()];

        for _ in 0..max_iters.max(1) {
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let best = nearest(p.as_ref(), &centroids).0;
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0.0; dims]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(p.as_ref()) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at a random point to keep k clusters alive.
                    centroids[c] = points[rng.gen_range(0..points.len())].as_ref().to_vec();
                } else {
                    for d in 0..dims {
                        centroids[c][d] = sums[c][d] / counts[c] as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let inertia = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| {
                let d = euclidean(p.as_ref(), &centroids[a]);
                d * d
            })
            .sum();
        Self {
            centroids,
            assignments,
            inertia,
        }
    }

    /// Index and distance of the nearest centroid to `point`.
    pub fn predict(&self, point: &[f64]) -> (usize, f64) {
        nearest(point, &self.centroids)
    }

    /// Number of clusters in the fitted model.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

/// k-means++ initialization: the first centroid is uniform, each subsequent
/// centroid is drawn with probability proportional to its squared distance to
/// the nearest existing centroid.
fn plus_plus_init<P: AsRef<[f64]>>(points: &[P], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].as_ref().to_vec());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                let d = nearest(p.as_ref(), &centroids).1;
                d * d
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].as_ref().to_vec());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &w) in d2.iter().enumerate() {
            if target < w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(points[chosen].as_ref().to_vec());
    }
    centroids
}

/// Index and distance of the nearest centroid.
fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = euclidean(point, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs in 2-D.
    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            pts.push(vec![0.0 + jitter, 0.0 - jitter]);
            pts.push(vec![10.0 - jitter, 10.0 + jitter]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let model = KMeans::fit(&pts, 2, 50, 42);
        assert_eq!(model.k(), 2);
        // Points near the origin and points near (10, 10) must not share a cluster.
        let a = model.predict(&[0.0, 0.0]).0;
        let b = model.predict(&[10.0, 10.0]).0;
        assert_ne!(a, b);
        assert!(
            model.inertia < 1.0,
            "inertia {} too large for tight blobs",
            model.inertia
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = two_blobs();
        let m1 = KMeans::fit(&pts, 2, 50, 7);
        let m2 = KMeans::fit(&pts, 2, 50, 7);
        assert_eq!(m1.centroids, m2.centroids);
        assert_eq!(m1.assignments, m2.assignments);
    }

    #[test]
    fn k_is_clamped_to_point_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let model = KMeans::fit(&pts, 10, 10, 1);
        assert_eq!(model.k(), 2);
    }

    #[test]
    fn empty_input_gives_degenerate_model() {
        let model = KMeans::fit::<Vec<f64>>(&[], 3, 10, 1);
        assert_eq!(model.k(), 0);
        assert_eq!(model.inertia, 0.0);
    }

    #[test]
    fn identical_points_collapse_without_panicking() {
        let pts = vec![vec![5.0, 5.0]; 10];
        let model = KMeans::fit(&pts, 3, 10, 1);
        assert!(model.inertia < 1e-12);
        assert_eq!(model.assignments.len(), 10);
    }

    #[test]
    fn predict_returns_distance_to_nearest_centroid() {
        let pts = two_blobs();
        let model = KMeans::fit(&pts, 2, 50, 42);
        let (_, dist) = model.predict(&[0.0, 0.0]);
        assert!(dist < 0.1);
    }

    #[test]
    #[should_panic(expected = "ragged input")]
    fn ragged_input_is_rejected() {
        KMeans::fit(&[vec![1.0], vec![1.0, 2.0]], 2, 5, 1);
    }
}
