//! Constraint-aware clustering of VM behaviours.
//!
//! Section 4.1: "DeepDive enhances the clustering results by providing a set
//! of constraints along with the collected VM behaviors — when diagnosing a
//! VM's behavior with interference, the analyzer also prevents the algorithm
//! from assigning this behavior to an interference-free cluster."
//!
//! We implement the constraint in the simplest faithful way: points the
//! analyzer labelled as interference are excluded from the data the mixture
//! is fitted on, and after fitting, the per-metric thresholds are shrunk
//! until no labelled-interference point would be accepted by any normal
//! cluster.  The result is the pair (normal clusters, `MT`) the warning
//! system uses at run time.

use crate::gmm::GaussianMixture;
use crate::thresholds::MetricThresholds;

/// Minimum multiplicative step used when shrinking thresholds to honour
/// cannot-link constraints.
const SHRINK_STEP: f64 = 0.9;

/// Maximum shrink iterations before giving up (thresholds then stay at the
/// smallest value reached; remaining violations are reported).
const MAX_SHRINK_ITERS: usize = 60;

/// A behaviour observation together with the analyzer's verdict about it.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledBehaviour {
    /// Normalized metric vector.
    pub metrics: Vec<f64>,
    /// True when the interference analyzer confirmed this behaviour was
    /// caused by interference (cannot-link to normal clusters).
    pub interference: bool,
}

impl LabelledBehaviour {
    /// Convenience constructor for a normal (non-interference) behaviour.
    pub fn normal(metrics: Vec<f64>) -> Self {
        Self {
            metrics,
            interference: false,
        }
    }

    /// Convenience constructor for a confirmed-interference behaviour.
    pub fn interference(metrics: Vec<f64>) -> Self {
        Self {
            metrics,
            interference: true,
        }
    }
}

/// Result of the constrained clustering pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstrainedModel {
    /// Mixture fitted over the normal behaviours only.
    pub mixture: GaussianMixture,
    /// Thresholds shrunk until they exclude the labelled interference points.
    pub thresholds: MetricThresholds,
    /// Number of labelled interference points still (wrongly) accepted after
    /// shrinking; zero in the common case.
    pub residual_violations: usize,
}

/// Fits normal-behaviour clusters under cannot-link constraints.
///
/// * `behaviours` — all observations the analyzer has verified so far.
/// * `k` — number of mixture components to fit over the normal points.
/// * `sigma_multiplier` — starting σ-multiplier for the thresholds.
/// * `seed` — RNG seed for the underlying EM initialization.
pub fn fit_constrained(
    behaviours: &[LabelledBehaviour],
    k: usize,
    sigma_multiplier: f64,
    seed: u64,
) -> ConstrainedModel {
    let normal: Vec<Vec<f64>> = behaviours
        .iter()
        .filter(|b| !b.interference)
        .map(|b| b.metrics.clone())
        .collect();
    let interference: Vec<&Vec<f64>> = behaviours
        .iter()
        .filter(|b| b.interference)
        .map(|b| &b.metrics)
        .collect();

    let mixture = GaussianMixture::fit(&normal, k, 100, seed);
    let mut thresholds = MetricThresholds::from_mixture(&mixture, sigma_multiplier);

    // Shrink the thresholds until no interference point is matched by any
    // normal cluster (the cannot-link constraint), or we hit the iteration cap.
    let accepts = |t: &MetricThresholds| -> usize {
        interference
            .iter()
            .filter(|p| mixture.components.iter().any(|c| t.matches(&c.mean, p)))
            .count()
    };
    let mut violations = accepts(&thresholds);
    let mut iters = 0;
    while violations > 0 && iters < MAX_SHRINK_ITERS {
        thresholds = thresholds.scaled(SHRINK_STEP);
        violations = accepts(&thresholds);
        iters += 1;
    }

    ConstrainedModel {
        mixture,
        thresholds,
        residual_violations: violations,
    }
}

impl ConstrainedModel {
    /// True when `point` is accepted by some normal cluster under the learned
    /// thresholds — i.e. the warning system would classify it as normal.
    pub fn accepts(&self, point: &[f64]) -> bool {
        self.mixture
            .components
            .iter()
            .any(|c| self.thresholds.matches(&c.mean, point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Normal behaviours around two operating points; interference far away
    /// in one dimension (the "memory" axis, say).
    fn dataset() -> Vec<LabelledBehaviour> {
        let mut all = Vec::new();
        for i in 0..30 {
            let j = (i % 6) as f64 * 0.02;
            all.push(LabelledBehaviour::normal(vec![1.0 + j, 2.0 - j, 0.2 + j]));
            all.push(LabelledBehaviour::normal(vec![
                3.0 - j,
                1.0 + j,
                0.3 - j * 0.5,
            ]));
        }
        for i in 0..10 {
            let j = (i % 5) as f64 * 0.05;
            all.push(LabelledBehaviour::interference(vec![
                1.0 + j,
                2.0 + j,
                5.0 + j,
            ]));
        }
        all
    }

    #[test]
    fn normal_points_are_accepted_and_interference_rejected() {
        let model = fit_constrained(&dataset(), 2, 3.0, 7);
        assert_eq!(model.residual_violations, 0);
        assert!(model.accepts(&[1.0, 2.0, 0.2]));
        assert!(model.accepts(&[3.0, 1.0, 0.3]));
        assert!(
            !model.accepts(&[1.0, 2.0, 5.0]),
            "interference behaviour must not match"
        );
    }

    #[test]
    fn constraints_shrink_thresholds_when_needed() {
        // Put interference close enough to a normal cluster that the default
        // 3σ thresholds would swallow it; the constraint must tighten them.
        let mut behaviours = dataset();
        // A borderline interference point near cluster 1 but offset in dim 2.
        behaviours.push(LabelledBehaviour::interference(vec![1.0, 2.0, 0.9]));
        let unconstrained = fit_constrained(
            &behaviours
                .iter()
                .filter(|b| !b.interference)
                .cloned()
                .collect::<Vec<_>>(),
            2,
            3.0,
            7,
        );
        let constrained = fit_constrained(&behaviours, 2, 3.0, 7);
        assert!(
            constrained.thresholds.per_metric[2] <= unconstrained.thresholds.per_metric[2],
            "constrained thresholds must be no looser"
        );
        assert!(!constrained.accepts(&[1.0, 2.0, 0.9]));
    }

    #[test]
    fn all_interference_input_still_produces_a_model() {
        let behaviours: Vec<LabelledBehaviour> = (0..5)
            .map(|i| LabelledBehaviour::interference(vec![i as f64, 1.0]))
            .collect();
        let model = fit_constrained(&behaviours, 2, 3.0, 1);
        // No normal data ⇒ empty mixture ⇒ nothing is ever accepted.
        assert_eq!(model.mixture.k(), 0);
        assert!(!model.accepts(&[0.0, 1.0]));
    }

    #[test]
    fn residual_violations_reported_when_unseparable() {
        // Interference points identical to normal points cannot be excluded.
        let mut behaviours: Vec<LabelledBehaviour> = (0..20)
            .map(|i| LabelledBehaviour::normal(vec![1.0 + (i % 3) as f64 * 0.01, 2.0]))
            .collect();
        behaviours.push(LabelledBehaviour::interference(vec![1.0, 2.0]));
        let model = fit_constrained(&behaviours, 1, 3.0, 1);
        assert!(model.residual_violations <= 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m1 = fit_constrained(&dataset(), 2, 3.0, 99);
        let m2 = fit_constrained(&dataset(), 2, 3.0, 99);
        assert_eq!(m1.thresholds, m2.thresholds);
        assert_eq!(m1.mixture.components, m2.mixture.components);
    }
}
