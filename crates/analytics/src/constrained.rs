//! Constraint-aware clustering of VM behaviours.
//!
//! Section 4.1: "DeepDive enhances the clustering results by providing a set
//! of constraints along with the collected VM behaviors — when diagnosing a
//! VM's behavior with interference, the analyzer also prevents the algorithm
//! from assigning this behavior to an interference-free cluster."
//!
//! We implement the constraint in the simplest faithful way: points the
//! analyzer labelled as interference are excluded from the data the mixture
//! is fitted on, and after fitting, the per-metric thresholds are shrunk
//! until no labelled-interference point would be accepted by any normal
//! cluster.  The result is the pair (normal clusters, `MT`) the warning
//! system uses at run time.

use crate::gmm::GaussianMixture;
use crate::thresholds::MetricThresholds;

/// Minimum multiplicative step used when shrinking thresholds to honour
/// cannot-link constraints.
const SHRINK_STEP: f64 = 0.9;

/// Maximum shrink iterations before giving up (thresholds then stay at the
/// smallest value reached; remaining violations are reported).
const MAX_SHRINK_ITERS: usize = 60;

/// A behaviour observation together with the analyzer's verdict about it.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledBehaviour {
    /// Normalized metric vector.
    pub metrics: Vec<f64>,
    /// True when the interference analyzer confirmed this behaviour was
    /// caused by interference (cannot-link to normal clusters).
    pub interference: bool,
}

impl LabelledBehaviour {
    /// Convenience constructor for a normal (non-interference) behaviour.
    pub fn normal(metrics: Vec<f64>) -> Self {
        Self {
            metrics,
            interference: false,
        }
    }

    /// Convenience constructor for a confirmed-interference behaviour.
    pub fn interference(metrics: Vec<f64>) -> Self {
        Self {
            metrics,
            interference: true,
        }
    }
}

/// Result of the constrained clustering pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstrainedModel {
    /// Mixture fitted over the normal behaviours only.
    pub mixture: GaussianMixture,
    /// Thresholds shrunk until they exclude the labelled interference points.
    pub thresholds: MetricThresholds,
    /// Number of labelled interference points still (wrongly) accepted after
    /// shrinking; zero in the common case.
    pub residual_violations: usize,
}

/// Fits normal-behaviour clusters under cannot-link constraints.
///
/// * `behaviours` — all observations the analyzer has verified so far.
/// * `k` — number of mixture components to fit over the normal points.
/// * `sigma_multiplier` — starting σ-multiplier for the thresholds.
/// * `seed` — RNG seed for the underlying EM initialization.
///
/// The normal points are borrowed as slices straight out of `behaviours`;
/// nothing is copied before the fit.
pub fn fit_constrained(
    behaviours: &[LabelledBehaviour],
    k: usize,
    sigma_multiplier: f64,
    seed: u64,
) -> ConstrainedModel {
    let normal: Vec<&[f64]> = behaviours
        .iter()
        .filter(|b| !b.interference)
        .map(|b| b.metrics.as_slice())
        .collect();
    let mixture = GaussianMixture::fit(&normal, k, 100, seed);
    constrain(mixture, behaviours, sigma_multiplier)
}

/// Warm-started variant of [`fit_constrained`]: the mixture is re-fitted by
/// EM seeded from `previous`'s components ([`GaussianMixture::fit_warm`])
/// instead of a fresh k-means++ initialization, converging in a handful of
/// iterations when `behaviours` grew incrementally since `previous` was
/// fitted.  Threshold derivation and the cannot-link shrink loop are
/// identical to the cold path.
///
/// Falls back to nothing-learned (an empty mixture that accepts no point)
/// when there are no normal behaviours; callers should use
/// [`fit_constrained`] when no previous mixture exists.
pub fn fit_constrained_warm(
    behaviours: &[LabelledBehaviour],
    previous: &GaussianMixture,
    sigma_multiplier: f64,
    max_iters: usize,
) -> ConstrainedModel {
    let normal: Vec<&[f64]> = behaviours
        .iter()
        .filter(|b| !b.interference)
        .map(|b| b.metrics.as_slice())
        .collect();
    let mixture = GaussianMixture::fit_warm(&normal, &previous.components, max_iters);
    constrain(mixture, behaviours, sigma_multiplier)
}

/// Shared constraint pass: derives thresholds from the fitted mixture and
/// shrinks them until no labelled-interference behaviour is accepted by any
/// normal cluster (or the iteration cap is reached).
fn constrain(
    mixture: GaussianMixture,
    behaviours: &[LabelledBehaviour],
    sigma_multiplier: f64,
) -> ConstrainedModel {
    let mut thresholds = MetricThresholds::from_mixture(&mixture, sigma_multiplier);

    let accepts = |t: &MetricThresholds| -> usize {
        behaviours
            .iter()
            .filter(|b| b.interference)
            .filter(|b| {
                mixture
                    .components
                    .iter()
                    .any(|c| t.matches(&c.mean, &b.metrics))
            })
            .count()
    };
    let mut violations = accepts(&thresholds);
    let mut iters = 0;
    while violations > 0 && iters < MAX_SHRINK_ITERS {
        thresholds = thresholds.scaled(SHRINK_STEP);
        violations = accepts(&thresholds);
        iters += 1;
    }

    ConstrainedModel {
        mixture,
        thresholds,
        residual_violations: violations,
    }
}

impl ConstrainedModel {
    /// True when `point` is accepted by some normal cluster under the learned
    /// thresholds — i.e. the warning system would classify it as normal.
    pub fn accepts(&self, point: &[f64]) -> bool {
        self.mixture
            .components
            .iter()
            .any(|c| self.thresholds.matches(&c.mean, point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Normal behaviours around two operating points; interference far away
    /// in one dimension (the "memory" axis, say).
    fn dataset() -> Vec<LabelledBehaviour> {
        let mut all = Vec::new();
        for i in 0..30 {
            let j = (i % 6) as f64 * 0.02;
            all.push(LabelledBehaviour::normal(vec![1.0 + j, 2.0 - j, 0.2 + j]));
            all.push(LabelledBehaviour::normal(vec![
                3.0 - j,
                1.0 + j,
                0.3 - j * 0.5,
            ]));
        }
        for i in 0..10 {
            let j = (i % 5) as f64 * 0.05;
            all.push(LabelledBehaviour::interference(vec![
                1.0 + j,
                2.0 + j,
                5.0 + j,
            ]));
        }
        all
    }

    #[test]
    fn normal_points_are_accepted_and_interference_rejected() {
        let model = fit_constrained(&dataset(), 2, 3.0, 7);
        assert_eq!(model.residual_violations, 0);
        assert!(model.accepts(&[1.0, 2.0, 0.2]));
        assert!(model.accepts(&[3.0, 1.0, 0.3]));
        assert!(
            !model.accepts(&[1.0, 2.0, 5.0]),
            "interference behaviour must not match"
        );
    }

    #[test]
    fn constraints_shrink_thresholds_when_needed() {
        // Put interference close enough to a normal cluster that the default
        // 3σ thresholds would swallow it; the constraint must tighten them.
        let mut behaviours = dataset();
        // A borderline interference point near cluster 1 but offset in dim 2.
        behaviours.push(LabelledBehaviour::interference(vec![1.0, 2.0, 0.9]));
        let unconstrained = fit_constrained(
            &behaviours
                .iter()
                .filter(|b| !b.interference)
                .cloned()
                .collect::<Vec<_>>(),
            2,
            3.0,
            7,
        );
        let constrained = fit_constrained(&behaviours, 2, 3.0, 7);
        assert!(
            constrained.thresholds.per_metric[2] <= unconstrained.thresholds.per_metric[2],
            "constrained thresholds must be no looser"
        );
        assert!(!constrained.accepts(&[1.0, 2.0, 0.9]));
    }

    #[test]
    fn all_interference_input_still_produces_a_model() {
        let behaviours: Vec<LabelledBehaviour> = (0..5)
            .map(|i| LabelledBehaviour::interference(vec![i as f64, 1.0]))
            .collect();
        let model = fit_constrained(&behaviours, 2, 3.0, 1);
        // No normal data ⇒ empty mixture ⇒ nothing is ever accepted.
        assert_eq!(model.mixture.k(), 0);
        assert!(!model.accepts(&[0.0, 1.0]));
    }

    #[test]
    fn residual_violations_reported_when_unseparable() {
        // Interference points identical to normal points cannot be excluded.
        let mut behaviours: Vec<LabelledBehaviour> = (0..20)
            .map(|i| LabelledBehaviour::normal(vec![1.0 + (i % 3) as f64 * 0.01, 2.0]))
            .collect();
        behaviours.push(LabelledBehaviour::interference(vec![1.0, 2.0]));
        let model = fit_constrained(&behaviours, 1, 3.0, 1);
        assert!(model.residual_violations <= 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m1 = fit_constrained(&dataset(), 2, 3.0, 99);
        let m2 = fit_constrained(&dataset(), 2, 3.0, 99);
        assert_eq!(m1.thresholds, m2.thresholds);
        assert_eq!(m1.mixture.components, m2.mixture.components);
    }

    #[test]
    fn warm_refit_matches_cold_decisions_on_grown_data() {
        let mut behaviours = dataset();
        let cold = fit_constrained(&behaviours, 2, 3.0, 7);
        // Grow the repository slightly, as incremental learning does.
        behaviours.push(LabelledBehaviour::normal(vec![1.01, 1.99, 0.21]));
        behaviours.push(LabelledBehaviour::normal(vec![2.98, 1.02, 0.29]));
        behaviours.push(LabelledBehaviour::interference(vec![1.0, 2.05, 5.1]));
        let warm = fit_constrained_warm(&behaviours, &cold.mixture, 3.0, 10);
        let refit = fit_constrained(&behaviours, 2, 3.0, 7);
        assert_eq!(warm.residual_violations, 0);
        for probe in [
            [1.0, 2.0, 0.2],
            [3.0, 1.0, 0.3],
            [1.0, 2.0, 5.0],
            [40.0, -7.0, 12.0],
        ] {
            assert_eq!(
                warm.accepts(&probe),
                refit.accepts(&probe),
                "warm and cold disagree on {probe:?}"
            );
        }
    }

    #[test]
    fn warm_refit_without_normals_accepts_nothing() {
        let cold = fit_constrained(&dataset(), 2, 3.0, 7);
        let only_interference: Vec<LabelledBehaviour> = (0..4)
            .map(|i| LabelledBehaviour::interference(vec![i as f64, 0.0, 0.0]))
            .collect();
        let warm = fit_constrained_warm(&only_interference, &cold.mixture, 3.0, 10);
        assert_eq!(warm.mixture.k(), 0);
        assert!(!warm.accepts(&[1.0, 2.0, 0.2]));
    }
}
