//! Descriptive statistics and vector helpers.
//!
//! Small, dependency-free building blocks shared by the clustering code, the
//! threshold derivation and the evaluation harness (which reports means,
//! medians and percentiles of estimation errors, as in §5.3–§5.4).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance; `0.0` for slices with fewer than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Median (average of the two middle values for even-length input).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Linear-interpolation percentile in `[0, 100]`; `0.0` for an empty slice.
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pct = pct.clamp(0.0, 100.0);
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal-length vectors");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Per-dimension mean of a set of equal-length vectors.
pub fn column_means(rows: &[Vec<f64>]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let dims = rows[0].len();
    let mut sums = vec![0.0; dims];
    for row in rows {
        assert_eq!(row.len(), dims, "ragged input to column_means");
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
    }
    sums.iter().map(|s| s / rows.len() as f64).collect()
}

/// Per-dimension population standard deviation of a set of vectors.
pub fn column_std_devs(rows: &[Vec<f64>]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let dims = rows[0].len();
    let means = column_means(rows);
    let mut sums = vec![0.0; dims];
    for row in rows {
        for d in 0..dims {
            let diff = row[d] - means[d];
            sums[d] += diff * diff;
        }
    }
    sums.iter()
        .map(|s| (s / rows.len() as f64).sqrt())
        .collect()
}

/// Z-score normalizer fitted on a training set and applied to new vectors.
///
/// Clustering raw counter values would let high-magnitude metrics (cycles,
/// instructions) drown out low-magnitude ones (stall seconds); all DeepDive
/// components therefore standardize dimensions before computing distances.
#[derive(Debug, Clone, PartialEq)]
pub struct ZScore {
    /// Per-dimension means of the training data.
    pub means: Vec<f64>,
    /// Per-dimension standard deviations (zero-variance dimensions keep 1.0).
    pub stds: Vec<f64>,
}

impl ZScore {
    /// Fits the normalizer on `rows` (each row one observation).
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        let means = column_means(rows);
        let stds = column_std_devs(rows)
            .into_iter()
            .map(|s| if s > 1e-12 { s } else { 1.0 })
            .collect();
        Self { means, stds }
    }

    /// Transforms a single vector into z-scores.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(
            row.len(),
            self.means.len(),
            "dimension mismatch in ZScore::transform"
        );
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transforms every row.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Number of dimensions the normalizer was fitted on.
    pub fn dims(&self) -> usize {
        self.means.len()
    }
}

/// Relative error `|estimate - truth| / |truth|`; falls back to the absolute
/// error when the truth is (near) zero.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth.abs() < 1e-12 {
        (estimate - truth).abs()
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        assert!((variance(&data) - 4.0).abs() < 1e-12);
        assert!((std_dev(&data) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&data, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&data, 100.0) - 4.0).abs() < 1e-12);
        assert!((median(&data) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn euclidean_distance_matches_pythagoras() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn euclidean_rejects_mismatched_lengths() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn zscore_standardizes_training_data() {
        let rows = vec![vec![10.0, 100.0], vec![20.0, 200.0], vec![30.0, 300.0]];
        let z = ZScore::fit(&rows);
        let t = z.transform_all(&rows);
        let col0: Vec<f64> = t.iter().map(|r| r[0]).collect();
        assert!(mean(&col0).abs() < 1e-12);
        assert!((std_dev(&col0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zscore_handles_zero_variance_dimensions() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let z = ZScore::fit(&rows);
        let out = z.transform(&[5.0, 2.0]);
        assert_eq!(out[0], 0.0);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relative_error_handles_zero_truth() {
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.05, 0.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn column_stats_shapes_match_dims() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        assert_eq!(column_means(&rows).len(), 3);
        assert_eq!(column_std_devs(&rows).len(), 3);
    }
}
