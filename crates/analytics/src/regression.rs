//! Multivariate linear regression and input inversion.
//!
//! Section 4.3: "creating the benchmark involved learning the set of input
//! values that best approximates any set of metric values.  We used a
//! standard regression algorithm for this training task."
//!
//! [`LinearRegression`] fits `y ≈ X·w + b` by solving the normal equations
//! with Gaussian elimination (ridge-regularized for stability).
//! [`invert_inputs`] then answers the placement manager's question: *which
//! benchmark inputs reproduce this target metric vector?* — a bounded
//! least-squares search over the input space done by cyclic coordinate
//! descent, which is plenty for the low-dimensional benchmark knobs.

/// A fitted multi-output linear model `y = W·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    /// One weight row per output dimension; each row has one entry per input.
    pub weights: Vec<Vec<f64>>,
    /// One intercept per output dimension.
    pub intercepts: Vec<f64>,
    /// Number of input dimensions.
    pub input_dims: usize,
    /// Number of output dimensions.
    pub output_dims: usize,
}

impl LinearRegression {
    /// Fits the model on `inputs` (rows of x) and `outputs` (rows of y) with
    /// ridge regularization `lambda` (use a small value like `1e-6`).
    ///
    /// # Panics
    /// Panics on empty or ragged data, or when row counts differ.
    pub fn fit(inputs: &[Vec<f64>], outputs: &[Vec<f64>], lambda: f64) -> Self {
        assert!(
            !inputs.is_empty(),
            "regression requires at least one sample"
        );
        assert_eq!(
            inputs.len(),
            outputs.len(),
            "inputs/outputs row count mismatch"
        );
        let n = inputs.len();
        let p = inputs[0].len();
        let q = outputs[0].len();
        assert!(inputs.iter().all(|r| r.len() == p), "ragged input matrix");
        assert!(outputs.iter().all(|r| r.len() == q), "ragged output matrix");
        assert!(lambda >= 0.0, "ridge penalty must be non-negative");

        // Augment x with a constant 1 column for the intercept.
        let d = p + 1;
        // Build Xᵀ·X (d×d) and Xᵀ·Y (d×q).
        let mut xtx = vec![vec![0.0_f64; d]; d];
        let mut xty = vec![vec![0.0_f64; q]; d];
        for row in 0..n {
            let x = &inputs[row];
            let y = &outputs[row];
            let aug = |i: usize| if i < p { x[i] } else { 1.0 };
            for i in 0..d {
                let ai = aug(i);
                for (j, cell) in xtx[i].iter_mut().enumerate() {
                    *cell += ai * aug(j);
                }
                for (cell, &yv) in xty[i].iter_mut().zip(y) {
                    *cell += ai * yv;
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate() {
            // Do not regularize the intercept term.
            if i < p {
                row[i] += lambda;
            }
        }

        let solution = solve_multi(&mut xtx, &mut xty);
        let mut weights = vec![vec![0.0; p]; q];
        let mut intercepts = vec![0.0; q];
        for k in 0..q {
            for i in 0..p {
                weights[k][i] = solution[i][k];
            }
            intercepts[k] = solution[p][k];
        }
        Self {
            weights,
            intercepts,
            input_dims: p,
            output_dims: q,
        }
    }

    /// Predicts the output vector for one input vector.
    pub fn predict(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(
            input.len(),
            self.input_dims,
            "dimension mismatch in predict"
        );
        self.weights
            .iter()
            .zip(&self.intercepts)
            .map(|(w, b)| w.iter().zip(input).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
            .collect()
    }

    /// Mean squared prediction error over a dataset.
    pub fn mse(&self, inputs: &[Vec<f64>], outputs: &[Vec<f64>]) -> f64 {
        assert_eq!(inputs.len(), outputs.len());
        if inputs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for (x, y) in inputs.iter().zip(outputs) {
            let pred = self.predict(x);
            for (p, t) in pred.iter().zip(y) {
                total += (p - t) * (p - t);
                count += 1;
            }
        }
        total / count as f64
    }
}

/// Solves `A·X = B` for X (A is d×d, B is d×q) by Gaussian elimination with
/// partial pivoting.  Consumes its arguments as scratch space.
fn solve_multi(a: &mut [Vec<f64>], b: &mut [Vec<f64>]) -> Vec<Vec<f64>> {
    let d = a.len();
    let q = b[0].len();
    for col in 0..d {
        // Pivot.
        let pivot_row = (col..d)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("NaN pivot")
            })
            .expect("non-empty system");
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        // A singular pivot means a redundant dimension; nudge it to keep the
        // solve well-defined (equivalent to extra ridge on that direction).
        let pivot = if pivot.abs() < 1e-12 { 1e-12 } else { pivot };
        let a_pivot_row = a[col].clone();
        let b_pivot_row = b[col].clone();
        for row in 0..d {
            if row == col {
                continue;
            }
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for (dst, &v) in a[row][col..].iter_mut().zip(&a_pivot_row[col..]) {
                *dst -= factor * v;
            }
            for (dst, &v) in b[row].iter_mut().zip(&b_pivot_row) {
                *dst -= factor * v;
            }
        }
    }
    (0..d)
        .map(|i| {
            let pivot = if a[i][i].abs() < 1e-12 {
                1e-12
            } else {
                a[i][i]
            };
            (0..q).map(|k| b[i][k] / pivot).collect()
        })
        .collect()
}

/// Finds input values within `bounds` whose predicted outputs best match
/// `target` in the least-squares sense, by cyclic coordinate descent with
/// iteratively refined step sizes.
///
/// Returns the best input vector found and its squared error.
pub fn invert_inputs(
    model: &LinearRegression,
    target: &[f64],
    bounds: &[(f64, f64)],
    iterations: usize,
) -> (Vec<f64>, f64) {
    assert_eq!(target.len(), model.output_dims, "target dimension mismatch");
    assert_eq!(bounds.len(), model.input_dims, "bounds dimension mismatch");
    for (lo, hi) in bounds {
        assert!(lo <= hi, "invalid bound ({lo}, {hi})");
    }

    // Normalize each output dimension by the target's magnitude (with a
    // floor for near-zero targets) so that dimensions of very different
    // scales — e.g. stall cycles per kilo-instruction (~10³) next to I/O
    // stall seconds (~10⁻²) — contribute comparably to the residual.
    let max_abs = target.iter().fold(0.0_f64, |m, t| m.max(t.abs()));
    let floor = (1e-3 * max_abs).max(1e-9);
    let error = |x: &[f64]| -> f64 {
        model
            .predict(x)
            .iter()
            .zip(target)
            .map(|(p, t)| {
                let r = (p - t) / t.abs().max(floor);
                r * r
            })
            .sum()
    };

    // Start from the middle of the box.
    let mut current: Vec<f64> = bounds.iter().map(|(lo, hi)| 0.5 * (lo + hi)).collect();
    let mut best_err = error(&current);

    for iter in 0..iterations.max(1) {
        // Step size shrinks geometrically: coarse sweep first, then refine.
        let scale = 0.5_f64.powi((iter as i32) / 2);
        let mut improved = false;
        for dim in 0..model.input_dims {
            let (lo, hi) = bounds[dim];
            let span = (hi - lo).max(1e-12);
            let step = span * 0.25 * scale;
            for candidate in [
                (current[dim] - step).clamp(lo, hi),
                (current[dim] + step).clamp(lo, hi),
                lo,
                hi,
            ] {
                let mut trial = current.clone();
                trial[dim] = candidate;
                let e = error(&trial);
                if e + 1e-15 < best_err {
                    best_err = e;
                    current = trial;
                    improved = true;
                }
            }
        }
        if !improved && scale < 1e-4 {
            break;
        }
    }
    (current, best_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y0 = 2a + 3b + 1, y1 = -a + 4b
    fn synthetic_data() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                let (a, b) = (a as f64, b as f64 * 0.5);
                xs.push(vec![a, b]);
                ys.push(vec![2.0 * a + 3.0 * b + 1.0, -a + 4.0 * b]);
            }
        }
        (xs, ys)
    }

    #[test]
    fn recovers_linear_coefficients() {
        let (xs, ys) = synthetic_data();
        let model = LinearRegression::fit(&xs, &ys, 1e-9);
        assert!((model.weights[0][0] - 2.0).abs() < 1e-6);
        assert!((model.weights[0][1] - 3.0).abs() < 1e-6);
        assert!((model.intercepts[0] - 1.0).abs() < 1e-6);
        assert!((model.weights[1][0] + 1.0).abs() < 1e-6);
        assert!((model.weights[1][1] - 4.0).abs() < 1e-6);
        assert!(model.mse(&xs, &ys) < 1e-10);
    }

    #[test]
    fn predict_matches_hand_computation() {
        let (xs, ys) = synthetic_data();
        let model = LinearRegression::fit(&xs, &ys, 1e-9);
        let pred = model.predict(&[2.0, 1.0]);
        assert!((pred[0] - (4.0 + 3.0 + 1.0)).abs() < 1e-6);
        assert!((pred[1] - (-2.0 + 4.0)).abs() < 1e-6);
    }

    #[test]
    fn ridge_handles_degenerate_inputs() {
        // Second input column is a copy of the first (perfectly collinear).
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<Vec<f64>> = (0..20).map(|i| vec![3.0 * i as f64]).collect();
        let model = LinearRegression::fit(&xs, &ys, 1e-3);
        let pred = model.predict(&[5.0, 5.0]);
        assert!((pred[0] - 15.0).abs() < 0.5, "prediction {}", pred[0]);
    }

    #[test]
    fn inversion_recovers_inputs_for_achievable_target() {
        let (xs, ys) = synthetic_data();
        let model = LinearRegression::fit(&xs, &ys, 1e-9);
        // Target generated by a=4, b=2.
        let target = vec![2.0 * 4.0 + 3.0 * 2.0 + 1.0, -4.0 + 4.0 * 2.0];
        let (inputs, err) = invert_inputs(&model, &target, &[(0.0, 9.0), (0.0, 4.5)], 60);
        assert!(err < 1e-3, "residual error {err}");
        let repro = model.predict(&inputs);
        assert!((repro[0] - target[0]).abs() < 0.1);
        assert!((repro[1] - target[1]).abs() < 0.1);
    }

    #[test]
    fn inversion_respects_bounds() {
        let (xs, ys) = synthetic_data();
        let model = LinearRegression::fit(&xs, &ys, 1e-9);
        // Unreachable target; the best answer must still lie inside the box.
        let target = vec![1_000.0, -1_000.0];
        let bounds = [(0.0, 9.0), (0.0, 4.5)];
        let (inputs, _) = invert_inputs(&model, &target, &bounds, 40);
        for (x, (lo, hi)) in inputs.iter().zip(&bounds) {
            assert!(x >= lo && x <= hi);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_training_set_is_rejected() {
        LinearRegression::fit(&[], &[], 0.0);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_rows_are_rejected() {
        LinearRegression::fit(&[vec![1.0]], &[], 0.0);
    }
}
