#![forbid(unsafe_code)]
//! # analytics — statistics and learning substrate for the DeepDive reproduction
//!
//! DeepDive's warning system learns "normal" VM behaviours with an
//! expectation-maximization clustering algorithm over the N-dimensional
//! metric space, derives per-metric thresholds from the clusters, and its
//! synthetic benchmark is trained with "a standard regression algorithm"
//! (§4.1, §4.3).  The scalability analysis (Figs. 13–14) additionally needs
//! Poisson, lognormal and Zipf/Pareto distributions.
//!
//! The paper leans on Weka and Matlab for these pieces; this crate implements
//! the required subset from scratch so the reproduction has no external
//! system dependencies:
//!
//! * [`stats`] — descriptive statistics, z-scoring and distance helpers.
//! * [`kmeans`] — seeded k-means++ (used to initialize EM).
//! * [`gmm`] — diagonal-covariance Gaussian-mixture model fitted by EM.
//! * [`constrained`] — cannot-link constraints: behaviours the analyzer
//!   labelled as interference are kept out of the normal clusters.
//! * [`thresholds`] — per-metric classification thresholds (the `MT` vector).
//! * [`regression`] — multivariate linear least squares plus input inversion.
//! * [`distributions`] — Zipf, Poisson-process and lognormal samplers.

pub mod constrained;
pub mod distributions;
pub mod gmm;
pub mod kmeans;
pub mod regression;
pub mod stats;
pub mod thresholds;

pub use gmm::GaussianMixture;
pub use kmeans::KMeans;
pub use regression::LinearRegression;
pub use thresholds::MetricThresholds;
