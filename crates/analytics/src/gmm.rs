//! Diagonal-covariance Gaussian-mixture model fitted by expectation-maximization.
//!
//! Section 4.1 of the paper: "We leverage the expectation-maximization
//! clustering algorithm to produce interference-free clusters in
//! N-dimensional space, where N is the number of low-level metrics that
//! DeepDive uses.  In producing the clusters, the algorithm also defines the
//! metric thresholds."  This module provides that algorithm; the threshold
//! derivation lives in [`crate::thresholds`] and the constraint handling in
//! [`crate::constrained`].

use crate::kmeans::KMeans;

/// Variance floor: keeps degenerate (single-point) clusters from producing
/// infinite densities and NaN responsibilities.
const VARIANCE_FLOOR: f64 = 1e-6;

/// One mixture component: a weight and an axis-aligned Gaussian.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Mixing weight (all weights sum to 1).
    pub weight: f64,
    /// Per-dimension mean.
    pub mean: Vec<f64>,
    /// Per-dimension variance (diagonal covariance).
    pub variance: Vec<f64>,
}

impl Component {
    /// Log probability density of `point` under this component (ignoring the
    /// mixing weight).
    pub fn log_density(&self, point: &[f64]) -> f64 {
        assert_eq!(
            point.len(),
            self.mean.len(),
            "dimension mismatch in log_density"
        );
        let mut acc = 0.0;
        for ((&p, &m), &v) in point.iter().zip(&self.mean).zip(&self.variance) {
            let var = v.max(VARIANCE_FLOOR);
            let diff = p - m;
            acc += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
        }
        acc
    }

    /// Largest per-dimension deviation of `point` from the component mean,
    /// measured in that dimension's standard deviations.
    pub fn max_sigma_deviation(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.mean.len(), "dimension mismatch");
        point
            .iter()
            .zip(self.mean.iter().zip(&self.variance))
            .map(|(x, (m, v))| (x - m).abs() / v.max(VARIANCE_FLOOR).sqrt())
            .fold(0.0, f64::max)
    }
}

/// A fitted Gaussian-mixture model.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    /// The mixture components.
    pub components: Vec<Component>,
    /// Final per-point log-likelihood of the training data.
    pub log_likelihood: f64,
    /// Number of EM iterations actually performed.
    pub iterations: usize,
}

impl GaussianMixture {
    /// Fits `k` components to `points` with at most `max_iters` EM iterations.
    ///
    /// Initialization comes from a seeded k-means++ run, so the fit is
    /// deterministic for a fixed `seed`.  `points` may be any row type that
    /// dereferences to a `[f64]` slice (owned `Vec<f64>` rows or borrowed
    /// `&[f64]` rows), so callers can fit borrowed data without copying it.
    /// `k` is clamped to the number of points; empty input yields a model
    /// with no components.
    pub fn fit<P: AsRef<[f64]>>(points: &[P], k: usize, max_iters: usize, seed: u64) -> Self {
        if points.is_empty() || k == 0 {
            return Self {
                components: Vec::new(),
                log_likelihood: 0.0,
                iterations: 0,
            };
        }
        let dims = points[0].as_ref().len();
        assert!(
            points.iter().all(|p| p.as_ref().len() == dims),
            "ragged input to GaussianMixture::fit"
        );
        let k = k.min(points.len());

        // Initialize means from k-means, variances from within-cluster spread.
        let km = KMeans::fit(points, k, 25, seed);
        let mut components: Vec<Component> = (0..k)
            .map(|c| {
                let members: Vec<&[f64]> = points
                    .iter()
                    .zip(&km.assignments)
                    .filter(|(_, &a)| a == c)
                    .map(|(p, _)| p.as_ref())
                    .collect();
                let weight = members.len().max(1) as f64 / points.len() as f64;
                let mean = km.centroids[c].clone();
                let mut variance = vec![VARIANCE_FLOOR; dims];
                if members.len() > 1 {
                    for d in 0..dims {
                        let var = members
                            .iter()
                            .map(|p| (p[d] - mean[d]) * (p[d] - mean[d]))
                            .sum::<f64>()
                            / members.len() as f64;
                        variance[d] = var.max(VARIANCE_FLOOR);
                    }
                }
                Component {
                    weight,
                    mean,
                    variance,
                }
            })
            .collect();
        normalize_weights(&mut components);

        let (components, log_likelihood, iterations) = run_em(points, components, max_iters);
        Self {
            components,
            log_likelihood,
            iterations,
        }
    }

    /// Re-fits a mixture by EM seeded from a previous fit's components
    /// instead of a fresh k-means++ initialization.
    ///
    /// This is the incremental-refresh entry point: when `points` is the
    /// previous training set plus a few new observations, the previous
    /// components are already close to a local optimum, so EM converges in a
    /// handful of iterations (pass a small `max_iters` such as 10) instead of
    /// the ~100 a cold fit budgets.  The component count is inherited from
    /// `prev_components` (clamped to the number of points).
    ///
    /// Empty `points` or `prev_components` yields a model with no components
    /// — callers fall back to [`Self::fit`] in that case.
    ///
    /// # Panics
    /// Panics if `points` is ragged or its dimensionality differs from the
    /// warm-start components'.
    pub fn fit_warm<P: AsRef<[f64]>>(
        points: &[P],
        prev_components: &[Component],
        max_iters: usize,
    ) -> Self {
        if points.is_empty() || prev_components.is_empty() {
            return Self {
                components: Vec::new(),
                log_likelihood: 0.0,
                iterations: 0,
            };
        }
        let dims = points[0].as_ref().len();
        assert!(
            points.iter().all(|p| p.as_ref().len() == dims),
            "ragged input to GaussianMixture::fit_warm"
        );
        assert!(
            prev_components.iter().all(|c| c.mean.len() == dims),
            "warm-start components do not match the data dimensionality"
        );
        let k = prev_components.len().min(points.len());
        let mut components = prev_components[..k].to_vec();
        normalize_weights(&mut components);

        let (components, log_likelihood, iterations) = run_em(points, components, max_iters);
        Self {
            components,
            log_likelihood,
            iterations,
        }
    }

    /// Index of the most likely component for `point` and its posterior
    /// probability.
    pub fn predict(&self, point: &[f64]) -> (usize, f64) {
        assert!(!self.components.is_empty(), "predict on an empty mixture");
        let logs: Vec<f64> = self
            .components
            .iter()
            .map(|c| c.weight.max(1e-300).ln() + c.log_density(point))
            .collect();
        let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = logs.iter().map(|l| (l - max).exp()).sum();
        let (best, best_log) = logs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN log density"))
            .map(|(i, l)| (i, *l))
            .expect("non-empty mixture");
        (best, (best_log - max).exp() / sum)
    }

    /// Smallest max-σ deviation of `point` from any component: "how many
    /// standard deviations away from the closest normal behaviour is this
    /// observation, in its worst dimension?"
    pub fn min_max_sigma_deviation(&self, point: &[f64]) -> f64 {
        self.components
            .iter()
            .map(|c| c.max_sigma_deviation(point))
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of mixture components.
    pub fn k(&self) -> usize {
        self.components.len()
    }
}

/// The EM loop shared by [`GaussianMixture::fit`] and
/// [`GaussianMixture::fit_warm`]: refines `components` on `points` until the
/// per-point log-likelihood stabilizes or `max_iters` is exhausted.
///
/// The responsibility matrix and per-point log buffers are allocated once
/// per call (not per iteration), so iteration cost is pure arithmetic.
fn run_em<P: AsRef<[f64]>>(
    points: &[P],
    mut components: Vec<Component>,
    max_iters: usize,
) -> (Vec<Component>, f64, usize) {
    let k = components.len();
    let n = points.len();
    let dims = points[0].as_ref().len();
    let mut resp = vec![0.0_f64; n * k];
    let mut logs = vec![0.0_f64; k];

    let mut log_likelihood = f64::NEG_INFINITY;
    let mut iterations = 0;
    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;
        // E-step: responsibilities.
        let mut new_ll = 0.0;
        for (i, p) in points.iter().enumerate() {
            let p = p.as_ref();
            for (l, c) in logs.iter_mut().zip(&components) {
                *l = c.weight.max(1e-300).ln() + c.log_density(p);
            }
            let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let sum: f64 = logs.iter().map(|l| (l - max).exp()).sum();
            new_ll += max + sum.ln();
            for (r, l) in resp[i * k..(i + 1) * k].iter_mut().zip(&logs) {
                *r = (l - max).exp() / sum;
            }
        }
        new_ll /= n as f64;

        // M-step.
        for c in 0..k {
            let nk: f64 = (0..n).map(|i| resp[i * k + c]).sum();
            if nk < 1e-12 {
                continue;
            }
            components[c].weight = nk / n as f64;
            for d in 0..dims {
                let mean = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| resp[i * k + c] * p.as_ref()[d])
                    .sum::<f64>()
                    / nk;
                components[c].mean[d] = mean;
            }
            for d in 0..dims {
                let var = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let diff = p.as_ref()[d] - components[c].mean[d];
                        resp[i * k + c] * diff * diff
                    })
                    .sum::<f64>()
                    / nk;
                components[c].variance[d] = var.max(VARIANCE_FLOOR);
            }
        }
        normalize_weights(&mut components);

        if (new_ll - log_likelihood).abs() < 1e-8 {
            log_likelihood = new_ll;
            break;
        }
        log_likelihood = new_ll;
    }
    (components, log_likelihood, iterations)
}

fn normalize_weights(components: &mut [Component]) {
    let total: f64 = components.iter().map(|c| c.weight).sum();
    if total > 0.0 {
        for c in components.iter_mut() {
            c.weight /= total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            let j = (i % 7) as f64 * 0.05;
            pts.push(vec![1.0 + j, 2.0 - j, 0.5 + j * 0.5]);
            pts.push(vec![8.0 - j, 9.0 + j, 4.0 - j * 0.5]);
        }
        pts
    }

    #[test]
    fn fits_two_separated_components() {
        let model = GaussianMixture::fit(&blobs(), 2, 100, 3);
        assert_eq!(model.k(), 2);
        let (a, pa) = model.predict(&[1.0, 2.0, 0.5]);
        let (b, pb) = model.predict(&[8.0, 9.0, 4.0]);
        assert_ne!(a, b);
        assert!(pa > 0.99 && pb > 0.99);
        // Weights should be roughly balanced for balanced blobs.
        for c in &model.components {
            assert!((c.weight - 0.5).abs() < 0.1, "weight {}", c.weight);
        }
    }

    #[test]
    fn outlier_has_large_sigma_deviation() {
        let model = GaussianMixture::fit(&blobs(), 2, 100, 3);
        let inlier = model.min_max_sigma_deviation(&[1.0, 2.0, 0.5]);
        let outlier = model.min_max_sigma_deviation(&[50.0, -30.0, 20.0]);
        assert!(inlier < 5.0, "inlier deviation {inlier}");
        assert!(outlier > 50.0, "outlier deviation {outlier}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m1 = GaussianMixture::fit(&blobs(), 2, 100, 11);
        let m2 = GaussianMixture::fit(&blobs(), 2, 100, 11);
        assert_eq!(m1.components, m2.components);
    }

    #[test]
    fn log_likelihood_improves_with_more_components_on_multimodal_data() {
        let one = GaussianMixture::fit(&blobs(), 1, 100, 5);
        let two = GaussianMixture::fit(&blobs(), 2, 100, 5);
        assert!(two.log_likelihood > one.log_likelihood);
    }

    #[test]
    fn empty_input_yields_empty_model() {
        let model = GaussianMixture::fit::<Vec<f64>>(&[], 3, 10, 1);
        assert_eq!(model.k(), 0);
    }

    #[test]
    fn fit_accepts_borrowed_rows() {
        let owned = blobs();
        let borrowed: Vec<&[f64]> = owned.iter().map(|p| p.as_slice()).collect();
        let from_owned = GaussianMixture::fit(&owned, 2, 100, 11);
        let from_borrowed = GaussianMixture::fit(&borrowed, 2, 100, 11);
        assert_eq!(from_owned.components, from_borrowed.components);
    }

    #[test]
    fn warm_start_converges_in_few_iterations() {
        let mut pts = blobs();
        let cold = GaussianMixture::fit(&pts, 2, 100, 3);
        // Grow the data slightly, as the repository does between refreshes.
        pts.push(vec![1.02, 2.01, 0.52]);
        pts.push(vec![7.99, 9.02, 3.98]);
        let warm = GaussianMixture::fit_warm(&pts, &cold.components, 10);
        assert_eq!(warm.k(), 2);
        assert!(
            warm.iterations <= 10,
            "warm start took {} iterations",
            warm.iterations
        );
        // Same clustering decisions as a cold refit on the grown data.
        let refit = GaussianMixture::fit(&pts, 2, 100, 3);
        let (wa, _) = warm.predict(&[1.0, 2.0, 0.5]);
        let (wb, _) = warm.predict(&[8.0, 9.0, 4.0]);
        let (ca, _) = refit.predict(&[1.0, 2.0, 0.5]);
        let (cb, _) = refit.predict(&[8.0, 9.0, 4.0]);
        assert_ne!(wa, wb);
        assert_ne!(ca, cb);
        for (w, c) in warm.components.iter().zip(&refit.components) {
            for (wm, cm) in w.mean.iter().zip(&c.mean) {
                assert!((wm - cm).abs() < 0.2, "warm mean {wm} vs cold {cm}");
            }
        }
    }

    #[test]
    fn warm_start_with_empty_inputs_degenerates_gracefully() {
        let cold = GaussianMixture::fit(&blobs(), 2, 100, 3);
        assert_eq!(
            GaussianMixture::fit_warm::<Vec<f64>>(&[], &cold.components, 10).k(),
            0
        );
        assert_eq!(GaussianMixture::fit_warm(&blobs(), &[], 10).k(), 0);
    }

    #[test]
    fn warm_start_clamps_components_to_point_count() {
        let cold = GaussianMixture::fit(&blobs(), 3, 100, 3);
        let tiny = [vec![1.0, 2.0, 0.5], vec![1.1, 2.1, 0.6]];
        let warm = GaussianMixture::fit_warm(&tiny, &cold.components, 10);
        assert_eq!(warm.k(), 2);
    }

    #[test]
    fn weights_sum_to_one() {
        let model = GaussianMixture::fit(&blobs(), 3, 50, 9);
        let total: f64 = model.components.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn variances_respect_floor() {
        let identical = vec![vec![2.0, 2.0]; 20];
        let model = GaussianMixture::fit(&identical, 2, 50, 1);
        for c in &model.components {
            for v in &c.variance {
                assert!(*v >= VARIANCE_FLOOR);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty mixture")]
    fn predict_on_empty_model_panics() {
        let model = GaussianMixture::fit::<Vec<f64>>(&[], 2, 10, 1);
        model.predict(&[1.0]);
    }
}
