//! Random processes used by the evaluation: Zipf application popularity,
//! Poisson and lognormal VM-arrival processes, and Pareto tail sampling.
//!
//! Figures 13 and 14 of the paper drive the profiling-farm queueing model
//! with: (i) a Poisson VM-arrival process, (ii) a lognormal arrival process
//! for the "burstier" scenario, and (iii) a Zipf/Pareto distribution of how
//! many VMs run the same application (the global-information experiments,
//! with tail index α from 1.0 to 2.5).  All samplers are seeded and
//! deterministic for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal};

/// Zipf distribution over ranks `1..=n` with exponent `alpha`.
///
/// Used to model application popularity: a handful of tenants run their code
/// on a large number of VMs while the long tail runs a few VMs each (§5.5).
#[derive(Debug, Clone)]
pub struct Zipf {
    probabilities: Vec<f64>,
    cumulative: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with tail index `alpha > 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "Zipf exponent must be positive and finite"
        );
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let probabilities: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for p in &probabilities {
            acc += p;
            cumulative.push(acc);
        }
        // Guard against floating-point drift in the final bucket.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self {
            probabilities,
            cumulative,
            alpha,
        }
    }

    /// Probability of rank `k` (1-based).
    pub fn probability(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.probabilities.len(), "rank out of range");
        self.probabilities[k - 1]
    }

    /// Samples a rank in `1..=n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("NaN in Zipf cdf"))
        {
            Ok(idx) => idx + 1,
            Err(idx) => (idx + 1).min(self.probabilities.len()),
        }
    }

    /// The tail index α the distribution was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// True when the distribution covers zero ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }
}

/// Generates arrival times (seconds from 0) over a horizon for a Poisson
/// process with the given mean arrivals per day.
pub fn poisson_arrivals(arrivals_per_day: f64, horizon_seconds: f64, seed: u64) -> Vec<f64> {
    assert!(arrivals_per_day > 0.0, "arrival rate must be positive");
    assert!(horizon_seconds > 0.0, "horizon must be positive");
    let rate_per_second = arrivals_per_day / 86_400.0;
    let exp = Exp::new(rate_per_second).expect("valid exponential rate");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut arrivals = Vec::new();
    loop {
        t += exp.sample(&mut rng);
        if t > horizon_seconds {
            break;
        }
        arrivals.push(t);
    }
    arrivals
}

/// Generates arrival times over a horizon with lognormally distributed
/// inter-arrival gaps whose *mean* matches the requested daily rate.
///
/// `sigma` controls burstiness (the paper uses this to model "burstier
/// workload behaviors", Fig. 14); larger sigma means heavier clumping.
pub fn lognormal_arrivals(
    arrivals_per_day: f64,
    horizon_seconds: f64,
    sigma: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(arrivals_per_day > 0.0, "arrival rate must be positive");
    assert!(horizon_seconds > 0.0, "horizon must be positive");
    assert!(sigma > 0.0, "lognormal sigma must be positive");
    let mean_gap = 86_400.0 / arrivals_per_day;
    // For LogNormal(mu, sigma), mean = exp(mu + sigma^2 / 2); pick mu so the
    // mean inter-arrival gap matches the Poisson case.
    let mu = mean_gap.ln() - sigma * sigma / 2.0;
    let dist = LogNormal::new(mu, sigma).expect("valid lognormal parameters");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut arrivals = Vec::new();
    loop {
        t += dist.sample(&mut rng);
        if t > horizon_seconds {
            break;
        }
        arrivals.push(t);
    }
    arrivals
}

/// Samples `count` lognormally distributed durations (seconds) with the
/// given **median** and shape `sigma`.
///
/// Used for VM session lifetimes in the datacenter service model: lifetime
/// distributions in production traces are heavy-tailed, with most sessions
/// short and a long tail of near-permanent VMs.  The median (not the mean)
/// is the natural anchor for a lognormal — `exp(mu)` exactly.
pub fn lognormal_durations(median_s: f64, sigma: f64, count: usize, seed: u64) -> Vec<f64> {
    assert!(median_s > 0.0, "median duration must be positive");
    assert!(sigma > 0.0, "lognormal sigma must be positive");
    let dist = LogNormal::new(median_s.ln(), sigma).expect("valid lognormal parameters");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| dist.sample(&mut rng)).collect()
}

/// Squared coefficient of variation of the gaps between consecutive arrival
/// times — a standard burstiness measure (1.0 for Poisson, larger for
/// heavier-tailed processes).
pub fn burstiness(arrivals: &[f64]) -> f64 {
    if arrivals.len() < 3 {
        return 0.0;
    }
    let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
    let mean = crate::stats::mean(&gaps);
    if mean <= 0.0 {
        return 0.0;
    }
    crate::stats::variance(&gaps) / (mean * mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_probabilities_sum_to_one_and_decay() {
        let z = Zipf::new(100, 1.5);
        let total: f64 = (1..=100).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.probability(1) > z.probability(2));
        assert!(z.probability(2) > z.probability(50));
    }

    #[test]
    fn zipf_higher_alpha_concentrates_mass_on_head() {
        let light = Zipf::new(1000, 1.0);
        let heavy = Zipf::new(1000, 2.5);
        assert!(heavy.probability(1) > light.probability(1));
    }

    #[test]
    fn zipf_samples_respect_rank_range_and_skew() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 51];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!((1..=50).contains(&k));
            counts[k] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > counts[40]);
    }

    #[test]
    fn lognormal_durations_anchor_on_the_median() {
        let durations = lognormal_durations(7_200.0, 1.5, 10_001, 8);
        assert_eq!(durations.len(), 10_001);
        assert!(durations.iter().all(|&d| d > 0.0));
        let mut sorted = durations.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!(
            (5_000.0..10_000.0).contains(&median),
            "sample median {median} strayed from 7200"
        );
        // Heavy tail: the mean sits well above the median.
        let mean: f64 = durations.iter().sum::<f64>() / durations.len() as f64;
        assert!(mean > 1.5 * median, "mean {mean} vs median {median}");
        assert_eq!(durations, lognormal_durations(7_200.0, 1.5, 10_001, 8));
    }

    #[test]
    fn poisson_arrival_count_is_close_to_rate() {
        // 1000 VMs/day over 3 days should give roughly 3000 arrivals.
        let arrivals = poisson_arrivals(1_000.0, 3.0 * 86_400.0, 42);
        assert!(
            (2_700..3_300).contains(&arrivals.len()),
            "got {}",
            arrivals.len()
        );
        assert!(
            arrivals.windows(2).all(|w| w[1] >= w[0]),
            "arrivals must be sorted"
        );
    }

    #[test]
    fn lognormal_matches_mean_rate_but_is_burstier() {
        let poisson = poisson_arrivals(1_000.0, 3.0 * 86_400.0, 7);
        let lognormal = lognormal_arrivals(1_000.0, 3.0 * 86_400.0, 2.0, 7);
        // Similar volume...
        let ratio = lognormal.len() as f64 / poisson.len() as f64;
        assert!((0.6..1.4).contains(&ratio), "volume ratio {ratio}");
        // ...but much burstier inter-arrival gaps.
        assert!(burstiness(&lognormal) > burstiness(&poisson) * 1.5);
    }

    #[test]
    fn arrival_processes_are_deterministic_per_seed() {
        assert_eq!(
            poisson_arrivals(100.0, 86_400.0, 5),
            poisson_arrivals(100.0, 86_400.0, 5)
        );
        assert_ne!(
            poisson_arrivals(100.0, 86_400.0, 5),
            poisson_arrivals(100.0, 86_400.0, 6)
        );
    }

    #[test]
    fn burstiness_of_regular_sequence_is_zero() {
        let regular: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(burstiness(&regular) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn poisson_rejects_zero_rate() {
        poisson_arrivals(0.0, 10.0, 1);
    }
}
