//! The rule engine: project-invariant checks over [`crate::lexer::MaskedFile`]
//! views of every workspace source file.
//!
//! | rule id             | invariant                                        |
//! |---------------------|--------------------------------------------------|
//! | `wall-clock`        | no `Instant::now`/`SystemTime` outside `crates/bench` and `cloudsim`'s `pool.rs` |
//! | `safety-comment`    | every `unsafe` keyword carries an adjacent `// SAFETY:` (or `# Safety` doc) comment |
//! | `hashmap-iteration` | no iteration over `HashMap`/`HashSet` in simulation/control-plane crates without a `// simlint: order-independent` justification |
//! | `forbid-unsafe`     | every functional crate except `cloudsim` declares `#![forbid(unsafe_code)]` |
//! | `unwrap-budget`     | `.unwrap()`/`.expect(` in non-test library code never exceeds the committed per-crate baseline, which may only shrink |
//!
//! Suppression grammar: a justification comment holds on the flagged line
//! or the line directly above it.  `// simlint: order-independent` is the
//! only accepted justification for `hashmap-iteration`; `// SAFETY:` (or a
//! `/// # Safety` doc section) is the only one for `safety-comment`.
//! Nothing suppresses `wall-clock`, `forbid-unsafe` or `unwrap-budget` —
//! those are fixed by moving the code, adding the attribute, or editing the
//! baseline file (shrinking only).

use crate::lexer::{lex, MaskedFile};

/// One lint finding, printed as `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (unix separators).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Crates whose `src/` trees feed the simulation or the control plane —
/// the scope of the `hashmap-iteration` rule ("root" is the umbrella).
const ORDER_SENSITIVE_CRATES: &[&str] = &[
    "analytics",
    "cloudsim",
    "deepdive",
    "hwsim",
    "queueing",
    "root",
    "traces",
    "workloads",
];

/// Crates that must declare `#![forbid(unsafe_code)]` at their root.
/// `cloudsim` is exempt: its `pool.rs` worker pool is the one audited
/// `unsafe` island in the workspace.
pub const FORBID_UNSAFE_CRATES: &[&str] = &[
    "analytics",
    "bench",
    "deepdive",
    "hwsim",
    "queueing",
    "root",
    "simlint",
    "traces",
    "workloads",
];

/// The crate a workspace-relative path belongs to ("root" for the umbrella
/// package's `src/`, `tests/`, `examples/`).
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
}

/// True for non-test *library* code: a crate's `src/` tree (or the
/// umbrella's `src/`), as opposed to `tests/`, `benches/`, `examples/`.
pub fn is_library_path(path: &str) -> bool {
    match path.strip_prefix("crates/") {
        Some(rest) => {
            let mut parts = rest.splitn(2, '/');
            let _crate = parts.next();
            parts.next().is_some_and(|tail| tail.starts_with("src/"))
        }
        None => path.starts_with("src/"),
    }
}

/// Lints one file's source; `path` is workspace-relative with `/` separators.
pub fn lint_file(path: &str, source: &str) -> Vec<Finding> {
    let masked = lex(source);
    let mut findings = Vec::new();
    check_wall_clock(path, &masked, &mut findings);
    check_safety_comments(path, &masked, &mut findings);
    check_hashmap_iteration(path, &masked, &mut findings);
    findings
}

/// Counts `.unwrap()`/`.expect(` calls in non-test library lines of one
/// file (0 for test files, fixtures and `#[cfg(test)]` spans).
pub fn count_unwraps(path: &str, source: &str) -> usize {
    if !is_library_path(path) {
        return 0;
    }
    let masked = lex(source);
    masked
        .code
        .iter()
        .zip(&masked.in_test)
        .filter(|&(_, &in_test)| !in_test)
        .map(|(line, _)| count_occurrences(line, ".unwrap()") + count_occurrences(line, ".expect("))
        .sum()
}

fn count_occurrences(haystack: &str, needle: &str) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(at) = haystack[from..].find(needle) {
        count += 1;
        from += at + needle.len();
    }
    count
}

// ---------------------------------------------------------------- wall-clock

/// Paths allowed to read the wall clock: benches time their own kernels and
/// `pool.rs` may need monotonic clocks for future queue diagnostics; nothing
/// that produces simulation results may observe real time.
fn wall_clock_allowed(path: &str) -> bool {
    crate_of(path) == "bench" || path == "crates/cloudsim/src/pool.rs"
}

fn check_wall_clock(path: &str, masked: &MaskedFile, findings: &mut Vec<Finding>) {
    if wall_clock_allowed(path) {
        return;
    }
    for (idx, line) in masked.code.iter().enumerate() {
        for token in ["Instant::now", "SystemTime"] {
            if find_word(line, token).is_some() {
                findings.push(Finding {
                    path: path.to_string(),
                    line: idx + 1,
                    rule: "wall-clock",
                    message: format!(
                        "`{token}` outside crates/bench: simulation output must \
                         be a pure function of its seed, never of real time"
                    ),
                });
            }
        }
    }
}

// ------------------------------------------------------------ safety-comment

fn check_safety_comments(path: &str, masked: &MaskedFile, findings: &mut Vec<Finding>) {
    for (idx, line) in masked.code.iter().enumerate() {
        let Some(col) = find_word(line, "unsafe") else {
            continue;
        };
        // One finding per line is enough even if the line has two `unsafe`s.
        let _ = col;
        if has_adjacent_safety_comment(masked, idx) {
            continue;
        }
        findings.push(Finding {
            path: path.to_string(),
            line: idx + 1,
            rule: "safety-comment",
            message: "`unsafe` without an adjacent `// SAFETY:` comment stating \
                      the invariant it relies on"
                .to_string(),
        });
    }
}

/// True when the line itself, or the comment block adjacent to the start
/// of the statement containing it, contains `SAFETY:` or a `# Safety` doc
/// section.  Walking up, comment-only and attribute-only lines keep the
/// block contiguous; a code line that does *not* end a statement (no
/// trailing `;`, `{` or `}`) is treated as the same multi-line statement
/// (`let task: Task =` above an `unsafe { transmute(…) }`), while one that
/// does ends the search.
fn has_adjacent_safety_comment(masked: &MaskedFile, idx: usize) -> bool {
    let is_safety = |c: &str| c.contains("SAFETY:") || c.contains("# Safety");
    if is_safety(&masked.comments[idx]) {
        return true;
    }
    let mut up = idx;
    while up > 0 {
        up -= 1;
        let comment = masked.comments[up].trim();
        let code = masked.code[up].trim();
        let attribute_only = !code.is_empty() && code.starts_with("#[") && code.ends_with(']');
        let statement_continuation = !code.is_empty()
            && !attribute_only
            && !code.ends_with(';')
            && !code.ends_with('{')
            && !code.ends_with('}');
        if !code.is_empty() && !attribute_only && !statement_continuation {
            return false;
        }
        if is_safety(comment) {
            return true;
        }
        if code.is_empty() && comment.is_empty() {
            return false; // blank line breaks adjacency
        }
    }
    false
}

// -------------------------------------------------------- hashmap-iteration

/// Methods whose results depend on `HashMap`/`HashSet` iteration order.
const ORDER_DEPENDENT_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".into_keys()",
    ".into_values()",
];

fn check_hashmap_iteration(path: &str, masked: &MaskedFile, findings: &mut Vec<Finding>) {
    if !ORDER_SENSITIVE_CRATES.contains(&crate_of(path)) || !is_library_path(path) {
        return;
    }
    let maps = collect_hash_bindings(masked);
    if maps.is_empty() {
        return;
    }
    for (idx, line) in masked.code.iter().enumerate() {
        if masked.in_test[idx] {
            continue;
        }
        for name in &maps {
            let hit = ORDER_DEPENDENT_METHODS
                .iter()
                .find(|m| calls_method_on(line, name, m) || continues_chain(masked, idx, name, m))
                .copied()
                .or_else(|| iterated_in_for(line, name).then_some("for … in"));
            let Some(how) = hit else { continue };
            if has_order_justification(masked, idx) {
                continue;
            }
            findings.push(Finding {
                path: path.to_string(),
                line: idx + 1,
                rule: "hashmap-iteration",
                message: format!(
                    "iteration over hash-ordered `{name}` ({how}): order is \
                     nondeterministic across processes — use a BTreeMap, sort \
                     the keys, or justify with `// simlint: order-independent`"
                ),
            });
            break; // one finding per line
        }
    }
}

/// Identifiers bound to a `HashMap`/`HashSet` anywhere in the file, found
/// via `name: HashMap<…>` / `name: HashSet<…>` type ascriptions and
/// `let [mut] name = HashMap::…` / `HashSet::…` initialisations.
fn collect_hash_bindings(masked: &MaskedFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &masked.code {
        collect_ascriptions(line, &mut names);
        collect_initialisations(line, &mut names);
    }
    names.sort();
    names.dedup();
    names
}

fn collect_ascriptions(line: &str, names: &mut Vec<String>) {
    for ty in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(at) = line[from..].find(ty) {
            let abs = from + at;
            from = abs + ty.len();
            if !line[from..].trim_start().starts_with('<') || is_ident_char_before(line, abs) {
                // Part of a longer name, or not a generic type use.
                continue;
            }
            // Walk back over `: (std::collections::)?` to the bound name.
            let before = line[..abs].trim_end();
            let before = before
                .strip_suffix("std::collections::")
                .or_else(|| before.strip_suffix("collections::"))
                .unwrap_or(before)
                .trim_end();
            let before = before.trim_end_matches(['&', ' ']);
            if let Some(before) = before.strip_suffix(':') {
                if let Some(name) = trailing_ident(before.trim_end()) {
                    names.push(name);
                }
            }
        }
    }
}

fn collect_initialisations(line: &str, names: &mut Vec<String>) {
    for ty in ["HashMap::", "HashSet::"] {
        let Some(at) = line.find(ty) else { continue };
        if is_ident_char_before(line, at) {
            continue;
        }
        // `… name = [std::collections::]HashMap::new()` (possibly with a
        // type ascription between name and `=`, handled by the other pass).
        let lhs = line[..at].trim_end();
        let lhs = lhs
            .strip_suffix("std::collections::")
            .or_else(|| lhs.strip_suffix("collections::"))
            .unwrap_or(lhs)
            .trim_end();
        if let Some(lhs) = lhs.strip_suffix('=') {
            if let Some(name) = trailing_ident(lhs.trim_end()) {
                names.push(name);
            }
        }
    }
}

fn is_ident_char_before(line: &str, at: usize) -> bool {
    line[..at]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':')
        && !line[..at].ends_with("::")
}

/// The identifier ending at the end of `s`, if any (skips a trailing `mut`).
fn trailing_ident(s: &str) -> Option<String> {
    let ident: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    if ident == "mut" || ident == "let" {
        return None;
    }
    Some(ident)
}

/// True when `line` calls `method` on `name` (`name.keys()`,
/// `self.name.keys()`, `foo.name.keys()` all count).
fn calls_method_on(line: &str, name: &str, method: &str) -> bool {
    let needle = format!("{name}{method}");
    let mut from = 0;
    while let Some(at) = line[from..].find(&needle) {
        let abs = from + at;
        from = abs + name.len();
        let preceded_by_ident = line[..abs]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded_by_ident {
            return true;
        }
    }
    false
}

/// True when this line *starts* with `method` (rustfmt-broken chain) and
/// the previous non-empty code line's receiver expression ends with `name`
/// — catches `self.by_app_scratch\n    .iter()`.
fn continues_chain(masked: &MaskedFile, idx: usize, name: &str, method: &str) -> bool {
    if !masked.code[idx].trim_start().starts_with(method) {
        return false;
    }
    let mut up = idx;
    while up > 0 {
        up -= 1;
        let code = masked.code[up].trim_end();
        if code.trim().is_empty() {
            continue;
        }
        return trailing_ident(code).is_some_and(|ident| ident == name);
    }
    false
}

/// True when `line` iterates `name` via a `for … in [&[mut]] name` header
/// (direct iteration, equivalent to `.iter()`/`.into_iter()`).
fn iterated_in_for(line: &str, name: &str) -> bool {
    let Some(at) = find_word(line, "for") else {
        return false;
    };
    let Some(in_at) = find_word(&line[at..], "in") else {
        return false;
    };
    let tail = line[at + in_at + 2..].trim_start();
    let tail = tail
        .strip_prefix("&mut ")
        .or_else(|| tail.strip_prefix('&'))
        .unwrap_or(tail)
        .trim_start();
    let tail = tail.strip_prefix("self.").unwrap_or(tail);
    tail.strip_prefix(name)
        .is_some_and(|rest| rest.trim_start().starts_with('{') || rest.trim_start().is_empty())
}

/// True when the flagged line (or the line directly above) carries the
/// `// simlint: order-independent` justification.
fn has_order_justification(masked: &MaskedFile, idx: usize) -> bool {
    let marker = "simlint: order-independent";
    masked.comments[idx].contains(marker) || (idx > 0 && masked.comments[idx - 1].contains(marker))
}

// -------------------------------------------------------------- find helpers

/// Byte offset of `word` in `line` with identifier boundaries on both sides.
fn find_word(line: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(at) = line[from..].find(word) {
        let abs = from + at;
        from = abs + word.len().max(1);
        let left_ok = !is_ident_boundary_violated(line, abs);
        let right = abs + word.len();
        let right_ok = !line[right..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if left_ok && right_ok {
            return Some(abs);
        }
    }
    None
}

fn is_ident_boundary_violated(line: &str, at: usize) -> bool {
    line[..at]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(path: &str, src: &str) -> Vec<String> {
        lint_file(path, src)
            .into_iter()
            .map(|f| format!("{}:{}", f.rule, f.line))
            .collect()
    }

    // ---- wall-clock ----------------------------------------------------

    #[test]
    fn wall_clock_fires_in_simulation_crates() {
        let src = "fn t() { let t0 = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_at("crates/cloudsim/src/engine.rs", src),
            ["wall-clock:1"]
        );
    }

    #[test]
    fn wall_clock_fires_on_system_time_too() {
        let src = "fn t() { let now = SystemTime::now(); }\n";
        assert_eq!(
            rules_at("crates/deepdive/src/warning.rs", src),
            ["wall-clock:1"]
        );
    }

    #[test]
    fn wall_clock_is_allowed_in_bench_and_pool() {
        let src = "fn t() { let t0 = Instant::now(); }\n";
        assert!(rules_at("crates/bench/src/lib.rs", src).is_empty());
        assert!(rules_at("crates/cloudsim/src/pool.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_in_comments_and_strings_is_ignored() {
        let src = "// Instant::now() would break determinism\nlet s = \"Instant::now()\";\n";
        assert!(rules_at("crates/cloudsim/src/engine.rs", src).is_empty());
    }

    // ---- safety-comment ------------------------------------------------

    #[test]
    fn unsafe_without_safety_comment_fires() {
        let src = "fn f() {\n    unsafe { do_it() };\n}\n";
        assert_eq!(
            rules_at("crates/cloudsim/src/pool.rs", src),
            ["safety-comment:2"]
        );
    }

    #[test]
    fn unsafe_with_adjacent_safety_comment_is_clean() {
        let src =
            "fn f() {\n    // SAFETY: the pointer outlives the call.\n    unsafe { do_it() };\n}\n";
        assert!(rules_at("crates/cloudsim/src/pool.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_reaches_across_a_statement_continuation() {
        // The comment sits above the statement *start*, the `unsafe` is on a
        // later line of the same statement.
        let src = "fn f() {\n    // SAFETY: closure outlives the scope.\n    let t: Task =\n        unsafe { std::mem::transmute(boxed) };\n}\n";
        assert!(rules_at("crates/cloudsim/src/pool.rs", src).is_empty());
    }

    #[test]
    fn doc_safety_section_satisfies_unsafe_fn() {
        let src = "/// Writes the slot.\n///\n/// # Safety\n/// Caller must hold the token.\nunsafe fn write(p: *mut u8) {}\n";
        assert!(rules_at("crates/cloudsim/src/pool.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_does_not_fire() {
        let src = "// unsafe is a keyword\nlet s = \"unsafe { }\";\n";
        assert!(rules_at("crates/cloudsim/src/pool.rs", src).is_empty());
    }

    // ---- hashmap-iteration ---------------------------------------------

    #[test]
    fn hashmap_iteration_fires_on_typed_binding() {
        let src =
            "fn f(m: &HashMap<u32, u32>) {\n    for (k, v) in m.iter() { use_kv(k, v); }\n}\n";
        assert_eq!(
            rules_at("crates/deepdive/src/controller.rs", src),
            ["hashmap-iteration:2"]
        );
    }

    #[test]
    fn hashmap_iteration_fires_on_initialisation_and_for_loop() {
        let src = "fn f() {\n    let m = HashMap::new();\n    for k in &m { touch(k); }\n}\n";
        assert_eq!(
            rules_at("crates/cloudsim/src/cluster.rs", src),
            ["hashmap-iteration:3"]
        );
    }

    #[test]
    fn hashmap_iteration_fires_on_a_wrapped_chain() {
        // rustfmt breaks long chains; the receiver ends one line, the
        // method starts the next.
        let src = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    let v: Vec<_> = m\n        .keys()\n        .collect();\n}\n";
        assert_eq!(
            rules_at("crates/deepdive/src/repository.rs", src),
            ["hashmap-iteration:4"]
        );
    }

    #[test]
    fn order_independent_marker_suppresses_on_same_line() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n    for v in m.values() { *count += v; } // simlint: order-independent\n}\n";
        assert!(rules_at("crates/deepdive/src/controller.rs", src).is_empty());
    }

    #[test]
    fn order_independent_marker_suppresses_from_line_above() {
        let src = "fn f(m: &mut HashMap<u32, Vec<u8>>) {\n    // Clearing touches each group once.  simlint: order-independent\n    for g in m.values_mut() { g.clear(); }\n}\n";
        assert!(rules_at("crates/deepdive/src/controller.rs", src).is_empty());
    }

    #[test]
    fn marker_two_lines_away_does_not_suppress() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n    // simlint: order-independent\n    let _unrelated = 0;\n    for v in m.values() { touch(v); }\n}\n";
        assert_eq!(
            rules_at("crates/deepdive/src/controller.rs", src),
            ["hashmap-iteration:4"]
        );
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src =
            "fn f(m: &BTreeMap<u32, u32>) {\n    for (k, v) in m.iter() { use_kv(k, v); }\n}\n";
        assert!(rules_at("crates/deepdive/src/controller.rs", src).is_empty());
    }

    #[test]
    fn hashmap_lookup_without_iteration_is_clean() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n    let v = m.get(&3);\n    m.insert(4, 5);\n}\n";
        assert!(rules_at("crates/deepdive/src/controller.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_inside_cfg_test_is_clean() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(m: &HashMap<u32, u32>) {\n        for v in m.values() { touch(v); }\n    }\n}\n";
        assert!(rules_at("crates/deepdive/src/controller.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_not_enforced_outside_order_sensitive_crates() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n    for v in m.values() { touch(v); }\n}\n";
        assert!(rules_at("crates/simlint/src/rules.rs", src).is_empty());
    }

    // ---- unwrap budget counting ----------------------------------------

    #[test]
    fn count_unwraps_counts_library_code_only() {
        let src = "\
fn f() {\n\
    let a = x.unwrap();\n\
    let b = y.expect(\"msg\");\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { z.unwrap(); }\n\
}\n";
        assert_eq!(count_unwraps("crates/hwsim/src/lib.rs", src), 2);
    }

    #[test]
    fn count_unwraps_ignores_comments_strings_and_non_library_paths() {
        let src = "// x.unwrap()\nlet s = \".unwrap()\";\nlet v = w.unwrap();\n";
        assert_eq!(count_unwraps("crates/hwsim/src/lib.rs", src), 1);
        // tests/ and benches/ trees are not library code.
        assert_eq!(count_unwraps("crates/hwsim/tests/integration.rs", src), 0);
        assert_eq!(count_unwraps("crates/bench/benches/epoch.rs", src), 0);
    }

    // ---- path classification -------------------------------------------

    #[test]
    fn crate_of_maps_umbrella_and_member_paths() {
        assert_eq!(crate_of("crates/deepdive/src/controller.rs"), "deepdive");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/determinism.rs"), "root");
        assert_eq!(crate_of("examples/outage.rs"), "root");
    }

    #[test]
    fn shims_are_never_library_paths() {
        assert!(!is_library_path("crates/shims/rand/src/lib.rs"));
        assert!(is_library_path("crates/cloudsim/src/engine.rs"));
        assert!(is_library_path("src/lib.rs"));
    }
}
