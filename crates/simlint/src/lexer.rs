//! A minimal Rust lexer: just enough to separate *code* from *comments*
//! and *literal contents* so the rule engine never fires on a `HashMap`
//! mentioned in a doc comment or an `unsafe` inside a raw string.
//!
//! The lexer produces a [`MaskedFile`]: two same-shaped views of the source
//! where every character is either kept or blanked to a space depending on
//! its class, plus a per-line flag marking `#[cfg(test)]` module spans.
//! Downstream rules do plain substring scanning on the masked views, which
//! keeps them simple without being fooled by:
//!
//! * line comments (`//`, `///`, `//!`),
//! * block comments, **nested** (`/* /* */ */`), including doc blocks,
//! * string literals with escapes (`"…\"…"`),
//! * raw strings with any hash depth (`r"…"`, `r##"…"##`),
//! * byte and raw-byte strings (`b"…"`, `br#"…"#`), C strings (`c"…"`),
//! * char and byte-char literals (`'x'`, `'\''`, `b'\n'`) vs. lifetimes
//!   (`'static`).

/// A source file split into per-character classes, line by line.
#[derive(Debug)]
pub struct MaskedFile {
    /// Source lines with comment text and literal *contents* blanked to
    /// spaces.  Literal delimiters (quotes, prefixes, hashes) survive so
    /// the code structure stays readable; braces inside strings do not.
    pub code: Vec<String>,
    /// Source lines with everything *but* comment text blanked.  Comment
    /// markers (`//`, `/*`, `*/`) survive, so `// SAFETY: …` and
    /// `// simlint: …` markers can be found verbatim.
    pub comments: Vec<String>,
    /// True for every line inside a `#[cfg(test)]`-attributed item's brace
    /// span (the attribute line itself included).
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum Class {
    Code,
    Comment,
    /// Inside a string/char literal's contents (delimiters are `Code`).
    Literal,
}

/// Lexes `source` into masked per-line views.
pub fn lex(source: &str) -> MaskedFile {
    let bytes = source.as_bytes();
    let mut classes = vec![Class::Code; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        let rest = &bytes[i..];
        if rest.starts_with(b"//") {
            let end = line_end(bytes, i);
            mark(&mut classes, i, end, Class::Comment);
            i = end;
        } else if rest.starts_with(b"/*") {
            let end = block_comment_end(bytes, i);
            mark(&mut classes, i, end, Class::Comment);
            i = end;
        } else if let Some((prefix_len, hashes)) = raw_string_start(bytes, i) {
            let open = i + prefix_len; // index of the opening quote
            let end = raw_string_end(bytes, open + 1, hashes);
            // Contents only; the prefix, quotes and hashes stay Code.
            mark(&mut classes, open + 1, end, Class::Literal);
            i = if end < bytes.len() {
                end + 1 + hashes // closing quote + hashes
            } else {
                end
            };
        } else if let Some(prefix_len) = plain_string_start(bytes, i) {
            let open = i + prefix_len;
            let end = escaped_end(bytes, open + 1, b'"');
            mark(&mut classes, open + 1, end, Class::Literal);
            i = end.saturating_add(1).min(bytes.len());
        } else if let Some(prefix_len) = char_literal_start(bytes, i) {
            let open = i + prefix_len;
            let end = escaped_end(bytes, open + 1, b'\'');
            mark(&mut classes, open + 1, end, Class::Literal);
            i = end.saturating_add(1).min(bytes.len());
        } else {
            i += 1;
        }
    }

    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut line_code = String::new();
    let mut line_comment = String::new();
    for (idx, &b) in bytes.iter().enumerate() {
        let c = b as char;
        if c == '\n' {
            code.push(std::mem::take(&mut line_code));
            comments.push(std::mem::take(&mut line_comment));
            continue;
        }
        match classes[idx] {
            Class::Code => {
                line_code.push(c);
                line_comment.push(' ');
            }
            Class::Comment => {
                line_code.push(' ');
                line_comment.push(c);
            }
            Class::Literal => {
                line_code.push(' ');
                line_comment.push(' ');
            }
        }
    }
    if !line_code.is_empty() || !line_comment.is_empty() || source.ends_with('\n') {
        code.push(line_code);
        comments.push(line_comment);
    }
    if code.is_empty() {
        code.push(String::new());
        comments.push(String::new());
    }

    let in_test = test_spans(&code);
    MaskedFile {
        code,
        comments,
        in_test,
    }
}

fn mark(classes: &mut [Class], from: usize, to: usize, class: Class) {
    for c in classes.iter_mut().take(to).skip(from) {
        *c = class;
    }
}

fn line_end(bytes: &[u8], from: usize) -> usize {
    bytes[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| from + p)
        .unwrap_or(bytes.len())
}

/// End of a (nested) block comment opened at `from`; returns the index one
/// past the final `*/` (or EOF for an unterminated comment).
fn block_comment_end(bytes: &[u8], from: usize) -> usize {
    let mut depth = 0usize;
    let mut i = from;
    while i < bytes.len() {
        if bytes[i..].starts_with(b"/*") {
            depth += 1;
            i += 2;
        } else if bytes[i..].starts_with(b"*/") {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    bytes.len()
}

/// True when the byte before `i` could continue an identifier, meaning a
/// letter at `i` is part of a longer name rather than a literal prefix.
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Detects `r"`, `r#"`, `br"`, `br##"`, `cr"` … at `i`.  Returns the prefix
/// length up to and including the opening quote's position offset (i.e. the
/// opening quote sits at `i + prefix_len`) and the hash count.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    if prev_is_ident(bytes, i) {
        return None;
    }
    let mut j = i;
    match bytes.get(j) {
        Some(b'r') => j += 1,
        Some(b'b') | Some(b'c') if bytes.get(j + 1) == Some(&b'r') => j += 2,
        _ => return None,
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((j - i, hashes))
    } else {
        None
    }
}

/// Index of the closing quote of a raw string whose contents start at
/// `from` (quote must be followed by `hashes` `#`s), or EOF.
fn raw_string_end(bytes: &[u8], from: usize, hashes: usize) -> usize {
    let mut i = from;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return i;
        }
        i += 1;
    }
    bytes.len()
}

/// Detects `"`, `b"` or `c"` at `i`; returns the offset of the opening quote.
fn plain_string_start(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i) {
        Some(b'"') => Some(0),
        Some(b'b') | Some(b'c') if bytes.get(i + 1) == Some(&b'"') && !prev_is_ident(bytes, i) => {
            Some(1)
        }
        _ => None,
    }
}

/// Detects a char/byte-char literal at `i` (as opposed to a lifetime).
/// Returns the offset of the opening quote.
fn char_literal_start(bytes: &[u8], i: usize) -> Option<usize> {
    let quote_at = match bytes.get(i) {
        Some(b'\'') => 0,
        Some(b'b') if bytes.get(i + 1) == Some(&b'\'') && !prev_is_ident(bytes, i) => 1,
        _ => return None,
    };
    let open = i + quote_at;
    // `'\…'` is always a char literal; `'x'` needs the closing quote right
    // after one character; anything else (`'static`, `'a,`) is a lifetime.
    match bytes.get(open + 1) {
        Some(b'\\') => Some(quote_at),
        Some(_) if bytes.get(open + 2) == Some(&b'\'') => Some(quote_at),
        _ => None,
    }
}

/// Index of the unescaped `delim` closing a literal whose contents start at
/// `from`, or EOF.
fn escaped_end(bytes: &[u8], from: usize, delim: u8) -> usize {
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b if b == delim => return i,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Marks every line covered by a `#[cfg(test)]`-attributed item's braces.
///
/// After the attribute, any further attributes are skipped; the item's span
/// runs from the attribute line to the brace that balances the first `{`
/// encountered (a `;` before any `{` — e.g. `mod tests;` — ends the search
/// with only the attribute lines marked).
fn test_spans(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let flat: Vec<(usize, char)> = code
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| {
            l.chars()
                .map(move |c| (ln, c))
                .chain(std::iter::once((ln, '\n')))
        })
        .collect();
    let text: String = flat.iter().map(|&(_, c)| c).collect();
    let mut search = 0usize;
    while let Some(found) = find_cfg_test(&text[search..]) {
        let attr_start = search + found.0;
        let mut pos = search + found.1; // one past the attribute's `]`
                                        // Skip whitespace and further attributes.
        loop {
            while text[pos..].starts_with(|c: char| c.is_whitespace()) {
                pos += 1;
            }
            if text[pos..].starts_with('#') {
                match text[pos..].find(']') {
                    Some(close) => pos += close + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        // Find the item's opening brace (bail at `;` or EOF).
        let mut open = None;
        for (off, c) in text[pos..].char_indices() {
            match c {
                '{' => {
                    open = Some(pos + off);
                    break;
                }
                ';' => break,
                _ => {}
            }
        }
        let end = match open {
            Some(open_at) => {
                let mut depth = 0usize;
                let mut end_at = text.len();
                for (off, c) in text[open_at..].char_indices() {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                end_at = open_at + off;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                end_at
            }
            None => pos,
        };
        let first_line = flat[attr_start.min(flat.len() - 1)].0;
        let last_line = flat[end.min(flat.len() - 1)].0;
        for flag in in_test.iter_mut().take(last_line + 1).skip(first_line) {
            *flag = true;
        }
        search = end.max(search + found.1);
    }
    in_test
}

/// Finds `#[cfg(test)]` (whitespace-tolerant) in `text`; returns the byte
/// range (start, one-past-`]`).
fn find_cfg_test(text: &str) -> Option<(usize, usize)> {
    let mut from = 0usize;
    while let Some(hash) = text[from..].find('#') {
        let start = from + hash;
        let rest = &text[start..];
        if let Some(close) = rest.find(']') {
            if rest[1..].trim_start().starts_with('[') {
                let inner: String = rest[..close]
                    .chars()
                    .filter(|c| !c.is_whitespace())
                    .collect();
                if inner == "#[cfg(test)" {
                    return Some((start, start + close + 1));
                }
            }
            from = start + 1;
        } else {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> MaskedFile {
        lex(src)
    }

    #[test]
    fn line_comments_are_separated_from_code() {
        let m = masked("let x = 1; // trailing HashMap note\n");
        assert!(m.code[0].contains("let x = 1;"));
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap note"));
    }

    #[test]
    fn nested_block_comments_close_at_the_outermost_level() {
        let src = "a(); /* outer /* inner */ still comment */ b();\n";
        let m = masked(src);
        assert!(m.code[0].contains("a();"));
        assert!(
            m.code[0].contains("b();"),
            "code after the nested close was eaten: {:?}",
            m.code[0]
        );
        assert!(!m.code[0].contains("still"));
        assert!(m.comments[0].contains("inner"));
        assert!(m.comments[0].contains("still comment"));
    }

    #[test]
    fn multi_line_nested_block_comment_spans_lines() {
        let src = "/* l1 /* l2\n l3 */ l4\n*/ code();\n";
        let m = masked(src);
        assert!(m.code[0].trim().is_empty());
        assert!(m.code[1].trim().is_empty());
        assert!(m.code[2].contains("code();"));
    }

    #[test]
    fn raw_strings_containing_keywords_are_masked() {
        let src = r####"let s = r#"unsafe { HashMap::new() } Instant::now()"#; touch();"####;
        let m = masked(src);
        assert!(!m.code[0].contains("unsafe"));
        assert!(!m.code[0].contains("HashMap"));
        assert!(!m.code[0].contains("Instant"));
        assert!(m.code[0].contains("let s = r#\""));
        assert!(m.code[0].contains("touch();"));
    }

    #[test]
    fn raw_string_hash_depth_is_respected() {
        // A `"#` inside an `r##"…"##` string must not close it.
        let src = "let s = r##\"inner \"# not closed HashMap\"##; after();\n";
        let m = masked(src);
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.code[0].contains("after();"));
    }

    #[test]
    fn plain_strings_with_escaped_quotes_stay_closed_correctly() {
        let src = "let s = \"a \\\" unsafe b\"; after();\n";
        let m = masked(src);
        assert!(!m.code[0].contains("unsafe"));
        assert!(m.code[0].contains("after();"));
    }

    #[test]
    fn byte_strings_and_byte_chars_are_literals() {
        let src = "let b = b\"unsafe\"; let c = b'u'; let r = br#\"HashMap\"#; x();\n";
        let m = masked(src);
        assert!(!m.code[0].contains("unsafe"));
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.code[0].contains("x();"));
    }

    #[test]
    fn char_literals_do_not_swallow_code_but_lifetimes_are_code() {
        let src = "let q = '\\''; let l: &'static str = x; fn f<'a>(v: &'a u8) {}\n";
        let m = masked(src);
        assert!(
            m.code[0].contains("'static"),
            "lifetime mangled: {:?}",
            m.code[0]
        );
        assert!(m.code[0].contains("&'a u8"));
        // The escaped quote char's contents are masked.
        assert!(m.code[0].contains("let q ="));
    }

    #[test]
    fn char_literal_containing_quote_does_not_open_a_string() {
        let src = "let c = '\"'; let s = \"text unsafe\"; after();\n";
        let m = masked(src);
        assert!(!m.code[0].contains("text unsafe"));
        assert!(m.code[0].contains("after();"));
    }

    #[test]
    fn cfg_test_module_span_is_marked_to_its_closing_brace() {
        let src = "\
fn library() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn helper() {}\n\
    mod nested { fn deeper() {} }\n\
}\n\
fn also_library() {}\n";
        let m = masked(src);
        assert!(!m.in_test[0], "library line marked as test");
        assert!(m.in_test[1], "attribute line not marked");
        assert!(
            m.in_test[2] && m.in_test[3] && m.in_test[4],
            "module body not marked"
        );
        assert!(m.in_test[5], "closing brace not marked");
        assert!(!m.in_test[6], "code after the module leaked into the span");
    }

    #[test]
    fn cfg_test_span_ignores_braces_in_strings_and_comments() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    const S: &str = \"}\"; // a } in a comment\n\
    fn f() {}\n\
}\n\
fn library() {}\n";
        let m = masked(src);
        assert!(m.in_test[3], "string brace closed the span early");
        assert!(m.in_test[4]);
        assert!(!m.in_test[5]);
    }

    #[test]
    fn cfg_test_with_stacked_attributes_still_finds_the_item() {
        let src = "\
#[cfg(test)]\n\
#[allow(dead_code)]\n\
mod tests {\n\
    fn f() {}\n\
}\n\
fn lib() {}\n";
        let m = masked(src);
        assert!(m.in_test[2] && m.in_test[3] && m.in_test[4]);
        assert!(!m.in_test[5]);
    }

    #[test]
    fn cfg_test_on_outline_module_marks_only_the_declaration() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() {}\n";
        let m = masked(src);
        assert!(!m.in_test[2]);
    }

    #[test]
    fn non_test_cfg_attributes_are_not_test_spans() {
        let src = "#[cfg(feature = \"x\")]\nmod gated {\n    fn f() {}\n}\n";
        let m = masked(src);
        assert!(m.in_test.iter().all(|&t| !t));
    }
}
