#![forbid(unsafe_code)]
//! # simlint — workspace-native static analysis for the determinism and
//! unsafety contracts
//!
//! The repository's north-star claim — interference detection that is
//! **bit-identical** across `Serial`/`Sharded`/`Pooled` execution — rests on
//! runtime proptests (`engine_equivalence`, `warning_equivalence`).  Nothing
//! in `cargo test` stops the *next* PR from reintroducing a wall-clock read,
//! a `HashMap`-iteration-order dependence, or an unaudited `unsafe` block.
//! This crate is that missing gate: an offline, dependency-free static
//! analysis binary run as `cargo run -p simlint` (locally and in CI, before
//! the test lanes).
//!
//! * [`lexer`] — a minimal Rust lexer (nested block comments, raw strings,
//!   char/byte literals, `#[cfg(test)]` span detection) that separates code
//!   from comments and literal contents, so rules never fire on a `HashMap`
//!   in a doc comment or an `unsafe` inside a raw string.
//! * [`rules`] — the rule engine; see its docs for the rule table and the
//!   justification-comment grammar.
//!
//! The `unwrap-budget` rule ratchets against
//! `crates/simlint/unwrap_budget.txt` ([`BUDGET_PATH`]): a
//! committed per-crate baseline of `.unwrap()`/`.expect(` counts in non-test
//! library code.  Counts above budget fail; counts *below* budget also fail
//! with a message telling you to shrink the baseline — that keeps the file
//! in lockstep with the tree, so the budget can only ever go down.
//!
//! Everything under `crates/shims/` is excluded: shims mimic external
//! crates' APIs and live outside the project's own invariants.

pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{Finding, FORBID_UNSAFE_CRATES};

/// Workspace-relative path of the committed unwrap/expect baseline.
pub const BUDGET_PATH: &str = "crates/simlint/unwrap_budget.txt";

/// Lints every workspace `.rs` file under `root` (shims and build
/// artefacts excluded) and returns all findings, sorted by path and line.
///
/// Errors only on environmental failures (unreadable files, missing or
/// malformed baseline) — lint findings are data, not errors.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    let mut unwraps: Vec<(String, usize)> = Vec::new();
    let mut forbid_missing: Vec<&str> = FORBID_UNSAFE_CRATES.to_vec();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        findings.extend(rules::lint_file(rel, &source));

        let crate_name = rules::crate_of(rel).to_string();
        let count = rules::count_unwraps(rel, &source);
        if count > 0 {
            match unwraps.iter_mut().find(|(c, _)| *c == crate_name) {
                Some((_, total)) => *total += count,
                None => unwraps.push((crate_name.clone(), count)),
            }
        }

        if is_crate_root(rel) && declares_forbid_unsafe(&source) {
            forbid_missing.retain(|c| *c != crate_name);
        }
    }

    for crate_name in forbid_missing {
        findings.push(Finding {
            path: crate_root_path(crate_name),
            line: 1,
            rule: "forbid-unsafe",
            message: format!(
                "crate `{crate_name}` must declare `#![forbid(unsafe_code)]` \
                 (only cloudsim's audited pool.rs may use unsafe)"
            ),
        });
    }

    check_budget(root, &unwraps, &mut findings)?;
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// The lib.rs (or the umbrella's `src/lib.rs`) path for a crate name.
fn crate_root_path(crate_name: &str) -> String {
    if crate_name == "root" {
        "src/lib.rs".to_string()
    } else {
        format!("crates/{crate_name}/src/lib.rs")
    }
}

fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || (rel.starts_with("crates/")
            && rel.ends_with("/src/lib.rs")
            && rel.matches('/').count() == 3)
}

/// True when the crate root's *code* (not a comment or string) declares
/// `#![forbid(unsafe_code)]`.
pub fn declares_forbid_unsafe(source: &str) -> bool {
    let masked = lexer::lex(source);
    masked.code.iter().any(|line| {
        let compact: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        compact.contains("#![forbid(unsafe_code)]")
    })
}

/// Compares per-crate unwrap/expect counts against the committed baseline.
///
/// Over budget is a finding; *under* budget is a finding too ("shrink the
/// baseline"), which is what makes the budget a one-way ratchet: the file
/// always states the true ceiling, and the ceiling only moves down.
fn check_budget(
    root: &Path,
    unwraps: &[(String, usize)],
    findings: &mut Vec<Finding>,
) -> Result<(), String> {
    let budget_file = root.join(BUDGET_PATH);
    let text = fs::read_to_string(&budget_file).map_err(|e| {
        format!("{BUDGET_PATH}: {e} (commit a baseline; one `crate count` per line)")
    })?;
    let mut budget: Vec<(String, usize)> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("{BUDGET_PATH}:{}: expected `crate count`", ln + 1));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("{BUDGET_PATH}:{}: `{count}` is not a count", ln + 1))?;
        budget.push((name.to_string(), count));
    }

    for (crate_name, actual) in unwraps {
        let allowed = budget
            .iter()
            .find(|(c, _)| c == crate_name)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        if *actual > allowed {
            findings.push(Finding {
                path: BUDGET_PATH.to_string(),
                line: 1,
                rule: "unwrap-budget",
                message: format!(
                    "crate `{crate_name}` has {actual} `.unwrap()`/`.expect(` calls in \
                     non-test library code, budget is {allowed}: handle the error or \
                     move the call into test code (the budget only shrinks)"
                ),
            });
        }
    }
    for (crate_name, allowed) in &budget {
        let actual = unwraps
            .iter()
            .find(|(c, _)| c == crate_name)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        if actual < *allowed {
            findings.push(Finding {
                path: BUDGET_PATH.to_string(),
                line: 1,
                rule: "unwrap-budget",
                message: format!(
                    "stale baseline: crate `{crate_name}` now has {actual} \
                     `.unwrap()`/`.expect(` calls but the budget still says {allowed} — \
                     ratchet {BUDGET_PATH} down to {actual}"
                ),
            });
        }
    }
    Ok(())
}

/// Recursively collects workspace-relative `.rs` paths, skipping build
/// artefacts, VCS metadata and the dependency shims.
fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            if path == root.join("crates/shims") {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Ascends from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]` — the root every path in the findings is relative to.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!("no workspace Cargo.toml above {}", start.display()));
        }
    }
}
