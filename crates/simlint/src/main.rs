#![forbid(unsafe_code)]
//! `cargo run -p simlint [WORKSPACE_ROOT]` — lints every workspace `.rs`
//! file against the project's determinism and unsafety contracts and exits
//! nonzero on any finding.  See the library docs for the rule table.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("simlint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match simlint::find_workspace_root(&cwd) {
                Ok(root) => root,
                Err(e) => {
                    eprintln!("simlint: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    match simlint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("simlint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            eprintln!("simlint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("simlint: {e}");
            ExitCode::from(2)
        }
    }
}
