//! The committed tree must lint clean: `cargo run -p simlint` exiting zero
//! is enforced in CI, and this test pins the same invariant from inside
//! `cargo test` so a violation fails the ordinary test lanes too.

use std::path::Path;

#[test]
fn committed_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let findings = simlint::lint_workspace(&root).expect("workspace walk failed");
    assert!(
        findings.is_empty(),
        "the committed tree has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_root_is_discovered_from_a_nested_directory() {
    let nested = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let root = simlint::find_workspace_root(&nested).expect("no workspace root found");
    assert!(root.join("Cargo.toml").is_file());
    assert!(root.join("crates").is_dir());
}
