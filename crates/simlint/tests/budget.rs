//! End-to-end checks of the `unwrap-budget` ratchet and the `forbid-unsafe`
//! rule against a miniature workspace built in a temp directory.

use std::fs;
use std::path::{Path, PathBuf};

fn mini_workspace(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    fs::create_dir_all(root.join("crates/simlint")).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    root
}

fn write_file(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, contents).unwrap();
}

fn rules_of<'a>(findings: &'a [simlint::Finding], rule: &str) -> Vec<&'a simlint::Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn over_budget_and_stale_baseline_both_fire() {
    let root = mini_workspace("budget_two_sided");
    // hwsim has budget 1 but two calls -> over budget.
    // queueing has budget 3 but zero calls -> stale baseline.
    write_file(
        &root,
        "crates/simlint/unwrap_budget.txt",
        "# comment\nhwsim 1\nqueueing 3\n",
    );
    write_file(
        &root,
        "crates/hwsim/src/lib.rs",
        "#![forbid(unsafe_code)]\nfn f() {\n    a.unwrap();\n    b.expect(\"x\");\n}\n",
    );

    let findings = simlint::lint_workspace(&root).unwrap();
    let budget = rules_of(&findings, "unwrap-budget");
    assert_eq!(budget.len(), 2, "findings: {findings:?}");
    assert!(budget
        .iter()
        .any(|f| f.message.contains("`hwsim` has 2") && f.message.contains("budget is 1")));
    assert!(budget
        .iter()
        .any(|f| f.message.contains("stale baseline") && f.message.contains("`queueing`")));
}

#[test]
fn matching_budget_is_clean_and_test_code_is_free() {
    let root = mini_workspace("budget_exact");
    write_file(&root, "crates/simlint/unwrap_budget.txt", "hwsim 1\n");
    write_file(
        &root,
        "crates/hwsim/src/lib.rs",
        "#![forbid(unsafe_code)]\nfn f() { a.unwrap(); }\n\
         #[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); c.unwrap(); }\n}\n",
    );

    let findings = simlint::lint_workspace(&root).unwrap();
    assert!(
        rules_of(&findings, "unwrap-budget").is_empty(),
        "{findings:?}"
    );
}

#[test]
fn missing_forbid_attribute_is_reported_per_crate() {
    let root = mini_workspace("forbid_missing");
    write_file(&root, "crates/simlint/unwrap_budget.txt", "");
    // hwsim declares the attribute, queueing does not.
    write_file(
        &root,
        "crates/hwsim/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    write_file(&root, "crates/queueing/src/lib.rs", "pub fn g() {}\n");

    let findings = simlint::lint_workspace(&root).unwrap();
    let forbid = rules_of(&findings, "forbid-unsafe");
    assert!(forbid
        .iter()
        .any(|f| f.path == "crates/queueing/src/lib.rs" && f.message.contains("`queueing`")));
    assert!(!forbid.iter().any(|f| f.message.contains("`hwsim`")));
    // cloudsim is the audited-unsafe island and must never be required.
    assert!(!forbid.iter().any(|f| f.message.contains("`cloudsim` must")));
}

#[test]
fn forbid_attribute_in_a_comment_does_not_count() {
    let root = mini_workspace("forbid_comment");
    write_file(&root, "crates/simlint/unwrap_budget.txt", "");
    write_file(
        &root,
        "crates/hwsim/src/lib.rs",
        "// #![forbid(unsafe_code)]\npub fn f() {}\n",
    );

    let findings = simlint::lint_workspace(&root).unwrap();
    assert!(rules_of(&findings, "forbid-unsafe")
        .iter()
        .any(|f| f.message.contains("`hwsim`")));
}

#[test]
fn missing_baseline_is_an_environment_error_not_a_finding() {
    let root = mini_workspace("budget_missing");
    write_file(&root, "crates/hwsim/src/lib.rs", "pub fn f() {}\n");
    let err = simlint::lint_workspace(&root).unwrap_err();
    assert!(err.contains("unwrap_budget.txt"), "{err}");
}

#[test]
fn malformed_baseline_line_is_an_error() {
    let root = mini_workspace("budget_malformed");
    write_file(&root, "crates/simlint/unwrap_budget.txt", "hwsim one\n");
    let err = simlint::lint_workspace(&root).unwrap_err();
    assert!(err.contains("not a count"), "{err}");
}

#[test]
fn shims_are_excluded_from_the_walk() {
    let root = mini_workspace("shims_excluded");
    write_file(&root, "crates/simlint/unwrap_budget.txt", "");
    // A shim full of violations must produce no findings at all.
    write_file(
        &root,
        "crates/shims/rand/src/lib.rs",
        "pub fn f() { unsafe { x() }; let t = Instant::now(); }\n",
    );

    let findings = simlint::lint_workspace(&root).unwrap();
    assert!(
        !findings.iter().any(|f| f.path.contains("shims")),
        "{findings:?}"
    );
}

#[test]
fn declares_forbid_unsafe_tolerates_whitespace() {
    assert!(simlint::declares_forbid_unsafe("#![forbid(unsafe_code)]\n"));
    assert!(simlint::declares_forbid_unsafe(
        "#![forbid( unsafe_code )]\n"
    ));
    assert!(!simlint::declares_forbid_unsafe(
        "// #![forbid(unsafe_code)]\n"
    ));
    assert!(!simlint::declares_forbid_unsafe(
        "let s = \"#![forbid(unsafe_code)]\";\n"
    ));
}
