//! Equivalence suite for the reusable [`EpochResolver`].
//!
//! The resolver refactor is a pure optimisation: it must change *no
//! observable outcome*.  This suite pins that property by keeping a frozen
//! copy of the pre-refactor allocating pipeline (`reference_resolve` below —
//! the old `resolve_epoch_with_duration` body, composed from the public
//! per-device model functions) and asserting, over arbitrary well-formed
//! placements, that a **reused** resolver produces bit-identical
//! [`EpochOutcome`]s: exact `f64` equality via `PartialEq`, not approximate
//! comparison.
//!
//! One deliberate behaviour change landed in the same PR and is *included*
//! in the reference: `net_stall_seconds` now clamps on the NIC's completed
//! fraction exactly like the disk counter (it used to clamp on 1.0 only).
//! That counter bugfix is pinned separately by
//! `saturated_io_stall_counters_clamp_on_the_completed_fraction` in
//! `contention.rs`; this suite guarantees the *refactor* added no drift on
//! top of it.
//!
//! Coverage includes empty placements, empty cache groups, multi-group
//! placements on both machine models, and oversubscribed demands (cache,
//! bus, disk and NIC all driven past saturation), with the resolver's
//! scratch state deliberately polluted by interleaved resolves of different
//! placements.

use hwsim::cache::resolve_cache_group;
use hwsim::contention::{resolve_epoch_with_duration, EpochOutcome, PlacedDemand, StallBreakdown};
use hwsim::core::core_cycles;
use hwsim::counters::CounterSnapshot;
use hwsim::disk::resolve_disk;
use hwsim::membus::resolve_bus;
use hwsim::nic::resolve_nic;
use hwsim::{EpochResolver, MachineSpec, ResourceDemand, CACHE_LINE_BYTES};
use proptest::prelude::*;

/// Fraction of memory references that are loads — must match the resolver.
const LOAD_FRACTION: f64 = 0.7;

/// Frozen copy of the pre-refactor allocating resolution pipeline.
///
/// The same copy serves as the timing baseline in
/// `crates/bench/benches/resolver_throughput.rs` (`allocating_resolve_epoch`
/// there); if one of them ever has to change, change both.
fn reference_resolve(
    spec: &MachineSpec,
    placements: &[PlacedDemand],
    epoch_seconds: f64,
) -> Vec<EpochOutcome> {
    assert!(spec.is_well_formed());
    assert!(epoch_seconds > 0.0);
    if placements.is_empty() {
        return Vec::new();
    }

    // Shared cache: resolve each cache group independently.
    let mut effective_mpki = vec![0.0_f64; placements.len()];
    for group in 0..spec.cache_groups() {
        let members: Vec<usize> = placements
            .iter()
            .enumerate()
            .filter(|(_, p)| p.cache_group == group)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        let demands: Vec<&ResourceDemand> =
            members.iter().map(|&i| &placements[i].demand).collect();
        let outcomes = resolve_cache_group(spec.shared_cache_mb, &demands);
        for (slot, outcome) in members.iter().zip(outcomes) {
            effective_mpki[*slot] = outcome.effective_mpki;
        }
    }

    // Memory interconnect: machine-wide shared channel.
    let llc_misses: Vec<f64> = placements
        .iter()
        .zip(&effective_mpki)
        .map(|(p, &mpki)| mpki / 1_000.0 * p.demand.instructions)
        .collect();
    let ifetch_misses: Vec<f64> = placements
        .iter()
        .map(|p| p.demand.ifetch_mpki / 1_000.0 * p.demand.instructions)
        .collect();
    let bus_traffic_mb: f64 = llc_misses
        .iter()
        .zip(&ifetch_misses)
        .map(|(&d, &i)| (d + i) * CACHE_LINE_BYTES / (1024.0 * 1024.0))
        .sum();
    let bus = resolve_bus(spec.memory_bandwidth_mbps, bus_traffic_mb, epoch_seconds);

    // Disk and NIC: machine-wide shared devices.
    let demand_refs: Vec<&ResourceDemand> = placements.iter().map(|p| &p.demand).collect();
    let disk = resolve_disk(
        spec.disk_seq_mbps,
        spec.disk_rand_mbps,
        &demand_refs,
        epoch_seconds,
    );
    let nic = resolve_nic(spec.nic_mbps, &demand_refs, epoch_seconds);

    // Per-VM assembly.
    placements
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let d = &p.demand;
            let core = core_cycles(d.instructions, d.base_cpi, d.branch_mpki);

            let llc_accesses = d.l1_mpki / 1_000.0 * d.instructions;
            let llc_miss = llc_misses[i];
            let llc_hit = (llc_accesses - llc_miss).max(0.0);

            let llc_hit_cycles = llc_hit * spec.shared_cache_hit_cycles;
            let llc_miss_cycles = llc_miss * spec.memory_latency_cycles;
            let bus_queue_cycles = llc_miss * spec.memory_latency_cycles * bus.queueing_overhead();

            let parallelism = d.parallelism.max(1.0).min(p.vcpus as f64);
            let to_seconds = |cycles: f64| cycles / (spec.clock_hz * parallelism);

            let breakdown = StallBreakdown {
                core_seconds: to_seconds(core.total()),
                llc_miss_seconds: to_seconds(llc_hit_cycles + llc_miss_cycles),
                bus_queue_seconds: to_seconds(bus_queue_cycles),
                disk_seconds: disk[i].stall_seconds,
                net_seconds: nic[i].stall_seconds,
            };

            let needed = breakdown.total();
            let achieved_fraction = if needed <= 0.0 {
                1.0
            } else {
                (epoch_seconds / needed).min(1.0)
            };

            let f = achieved_fraction;
            let inst_retired = d.instructions * f;
            let cpu_cycles =
                (core.total() + llc_hit_cycles + llc_miss_cycles + bus_queue_cycles) * f;
            let counters = CounterSnapshot {
                cpu_unhalted: cpu_cycles,
                inst_retired,
                l1d_repl: llc_accesses * f,
                l2_ifetch: d.ifetch_mpki / 1_000.0 * d.instructions * f,
                l2_lines_in: llc_miss * f,
                mem_load: d.mem_refs_per_instr * inst_retired * LOAD_FRACTION,
                resource_stalls: (llc_hit_cycles + llc_miss_cycles + bus_queue_cycles) * f,
                bus_tran_any: (llc_miss + ifetch_misses[i]) * f,
                bus_trans_ifetch: ifetch_misses[i] * f,
                bus_tran_brd: llc_miss * f,
                bus_req_out: llc_miss * spec.memory_latency_cycles * bus.latency_multiplier * f,
                br_miss_pred: d.branch_mpki / 1_000.0 * inst_retired,
                disk_stall_seconds: disk[i].stall_seconds
                    * f.min(disk[i].completed_fraction).clamp(0.0, 1.0),
                net_stall_seconds: nic[i].stall_seconds
                    * f.min(nic[i].completed_fraction).clamp(0.0, 1.0),
            };

            EpochOutcome {
                vm_id: p.vm_id,
                counters,
                achieved_fraction,
                demanded_instructions: d.instructions,
                breakdown,
            }
        })
        .collect()
}

/// Strategy generating one well-formed demand, spanning cache-friendly,
/// cache-thrashing and I/O-saturating profiles (disk and NIC ranges go far
/// past the Xeon's per-epoch capacity to exercise oversubscription).
fn demand_strategy() -> impl Strategy<Value = ResourceDemand> {
    (
        (
            1.0e7..2.0e10_f64, // instructions
            0.4..2.0_f64,      // base cpi
            0.05..0.6_f64,     // mem refs / instr
            0.1..80.0_f64,     // l1 mpki
            0.0..1.0_f64,      // locality (llc_mpki_solo derived below)
            0.5..1024.0_f64,   // working set MiB
        ),
        (
            0.0..12.0_f64,  // branch mpki
            0.0..3.0_f64,   // ifetch mpki
            1.0..8.0_f64,   // parallelism
            0.0..400.0_f64, // disk read MiB (capacity ~100 MiB/epoch)
            0.0..400.0_f64, // disk write MiB
            0.0..1.0_f64,   // disk seq fraction
            0.0..600.0_f64, // net tx MiB (capacity 125 MiB/epoch)
            0.0..600.0_f64, // net rx MiB
        ),
    )
        .prop_map(
            |((instr, cpi, refs, l1, locality, ws), (branch, ifetch, par, dr, dw, seq, tx, rx))| {
                ResourceDemand::builder()
                    .instructions(instr)
                    .base_cpi(cpi)
                    .mem_refs_per_instr(refs)
                    .l1_mpki(l1)
                    .llc_mpki_solo(l1 * locality * 0.5)
                    .working_set_mb(ws)
                    .locality(locality)
                    .branch_mpki(branch)
                    .ifetch_mpki(ifetch)
                    .parallelism(par)
                    .disk_read_mb(dr)
                    .disk_write_mb(dw)
                    .disk_seq_fraction(seq)
                    .net_tx_mb(tx)
                    .net_rx_mb(rx)
                    .build()
            },
        )
}

/// Strategy generating a placement list of 0..=8 VMs.  Cache groups are drawn
/// from 0..2, valid on both machine models; with up to 8 VMs over 2+ groups
/// this covers empty groups, solo groups and crowded groups alike.
fn placements_strategy() -> impl Strategy<Value = Vec<PlacedDemand>> {
    (
        0usize..=8,
        (
            (demand_strategy(), 1usize..=4, 0usize..2),
            (demand_strategy(), 1usize..=4, 0usize..2),
            (demand_strategy(), 1usize..=4, 0usize..2),
            (demand_strategy(), 1usize..=4, 0usize..2),
            (demand_strategy(), 1usize..=4, 0usize..2),
            (demand_strategy(), 1usize..=4, 0usize..2),
            (demand_strategy(), 1usize..=4, 0usize..2),
            (demand_strategy(), 1usize..=4, 0usize..2),
        ),
    )
        .prop_map(|(n, slots)| {
            let (a, b, c, d, e, f, g, h) = slots;
            [a, b, c, d, e, f, g, h]
                .into_iter()
                .take(n)
                .enumerate()
                .map(|(i, (demand, vcpus, group))| {
                    PlacedDemand::new(i as u64, demand, vcpus, group)
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A reused `EpochResolver` (scratch polluted by an interleaved resolve
    /// of a different placement) and the thread-local `resolve_epoch` wrapper
    /// both produce outcomes bit-identical to the frozen pre-refactor path,
    /// on both machine models.
    #[test]
    fn resolver_is_bit_identical_to_the_prerefactor_path(
        placements in placements_strategy(),
        pollution in placements_strategy(),
        epoch in 0.25..4.0_f64,
    ) {
        for spec in [MachineSpec::xeon_x5472(), MachineSpec::core_i7_nehalem()] {
            let expected = reference_resolve(&spec, &placements, epoch);

            let mut resolver = EpochResolver::new(spec.clone());
            let mut out = Vec::new();
            // Pollute every scratch buffer with an unrelated resolve first:
            // reuse must not leak state between epochs.
            resolver.resolve_into(&pollution, 1.0, &mut out);
            resolver.resolve_into(&placements, epoch, &mut out);
            prop_assert_eq!(&out, &expected);

            let via_wrapper = resolve_epoch_with_duration(&spec, &placements, epoch);
            prop_assert_eq!(&via_wrapper, &expected);
        }
    }

    /// Outcomes stay index-aligned with placements and well-formed even under
    /// heavy oversubscription.
    #[test]
    fn resolved_outcomes_stay_aligned_and_well_formed(
        placements in placements_strategy(),
    ) {
        let mut resolver = EpochResolver::new(MachineSpec::xeon_x5472());
        let mut out = Vec::new();
        resolver.resolve_into(&placements, 1.0, &mut out);
        prop_assert_eq!(out.len(), placements.len());
        for (o, p) in out.iter().zip(&placements) {
            prop_assert_eq!(o.vm_id, p.vm_id);
            prop_assert!(o.counters.is_well_formed());
            prop_assert!(o.achieved_fraction > 0.0 && o.achieved_fraction <= 1.0);
        }
    }
}
