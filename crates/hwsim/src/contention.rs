//! Epoch-resolution types and one-shot entry points: combining the cache,
//! bus, disk, NIC and core models into a single answer per VM — how much work
//! completed, where the cycles went, and what the Table 1 counters read.
//!
//! This is the boundary between the "hardware" and everything above it:
//!
//! * workload models produce [`crate::demand::ResourceDemand`]s,
//! * the virtualization substrate (`cloudsim`) decides which demands share a
//!   machine, which cores and which cache group each VM gets, and
//! * DeepDive (`deepdive`) sees only the [`crate::counters::CounterSnapshot`]
//!   the resolver emits.
//!
//! The resolution pipeline itself lives in [`crate::resolver`]: a reusable
//! [`EpochResolver`] owns all scratch state so that the hot path — every
//! epoch of every simulated machine — allocates nothing.  [`resolve_epoch`]
//! and [`resolve_epoch_with_duration`] remain as thin compatibility wrappers
//! that delegate to a thread-local resolver (rebuilt only when the machine
//! spec changes), so one-shot call sites keep their original signature while
//! still amortizing scratch allocations across calls.
//!
//! The resolver also returns a ground-truth [`StallBreakdown`] per VM, which
//! the evaluation harness uses to validate the analyzer's *estimated*
//! CPI-stack attribution (Fig. 6) without DeepDive ever reading it.

use std::cell::RefCell;

use crate::counters::CounterSnapshot;
use crate::demand::{AsDemand, ResourceDemand};
use crate::machine::MachineSpec;
use crate::resolver::EpochResolver;
use crate::EPOCH_SECONDS;

/// A VM's demand placed on specific machine resources for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedDemand {
    /// Caller-defined identifier (e.g. the VM id within the cluster).
    pub vm_id: u64,
    /// The intrinsic demand for this epoch.
    pub demand: ResourceDemand,
    /// Number of physical cores dedicated to the VM (vCPUs are pinned, §5.1).
    pub vcpus: usize,
    /// Index of the shared-cache group the VM's cores belong to.
    pub cache_group: usize,
}

impl PlacedDemand {
    /// Convenience constructor.
    pub fn new(vm_id: u64, demand: ResourceDemand, vcpus: usize, cache_group: usize) -> Self {
        Self {
            vm_id,
            demand,
            vcpus,
            cache_group,
        }
    }
}

impl AsDemand for PlacedDemand {
    fn as_demand(&self) -> &ResourceDemand {
        &self.demand
    }
}

/// Ground-truth decomposition of where a VM's epoch time went, in seconds.
///
/// The component names mirror Fig. 6 of the paper: in-core execution,
/// shared-cache-miss (memory) stalls, interconnect queueing stalls, and I/O
/// stalls.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StallBreakdown {
    /// Seconds executing instructions and hitting private caches ("Core").
    pub core_seconds: f64,
    /// Seconds stalled on shared-cache misses at the uncontended memory
    /// latency ("L2 miss").
    pub llc_miss_seconds: f64,
    /// Additional seconds stalled because the memory interconnect was
    /// congested ("FSB"/"QPI").
    pub bus_queue_seconds: f64,
    /// Seconds stalled waiting on the disk.
    pub disk_seconds: f64,
    /// Seconds stalled waiting on the network.
    pub net_seconds: f64,
}

impl StallBreakdown {
    /// Total busy-plus-stalled seconds the demanded work requires.
    pub fn total(&self) -> f64 {
        self.core_seconds
            + self.llc_miss_seconds
            + self.bus_queue_seconds
            + self.disk_seconds
            + self.net_seconds
    }

    /// Stalled cycles per instruction for each component, given a clock and
    /// an instruction count — the unit used in Fig. 6.
    pub fn per_instruction_cycles(&self, clock_hz: f64, instructions: f64) -> [f64; 4] {
        if instructions <= 0.0 {
            return [0.0; 4];
        }
        let to_cpi = clock_hz / instructions;
        [
            self.core_seconds * to_cpi,
            self.llc_miss_seconds * to_cpi,
            self.bus_queue_seconds * to_cpi,
            (self.disk_seconds + self.net_seconds) * to_cpi,
        ]
    }
}

/// Everything the hardware reports about one VM after one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// The caller-defined VM identifier from the placement.
    pub vm_id: u64,
    /// The Table 1 counters for this VM over the epoch.
    pub counters: CounterSnapshot,
    /// Fraction of the demanded work that completed (1.0 = kept up with the
    /// offered load).  This is the client-visible ground truth the
    /// evaluation uses; DeepDive itself never reads it.
    pub achieved_fraction: f64,
    /// Instructions the workload wanted to retire this epoch.
    pub demanded_instructions: f64,
    /// Ground-truth time breakdown for the *demanded* work.
    pub breakdown: StallBreakdown,
}

thread_local! {
    /// Resolver shared by the one-shot wrappers below, so that repeated
    /// `resolve_epoch` calls on the same machine spec reuse scratch buffers
    /// instead of re-allocating them (the pre-resolver behaviour).
    static SHARED_RESOLVER: RefCell<Option<EpochResolver>> = const { RefCell::new(None) };
}

/// Resolves one epoch of execution for every VM placed on a machine.
///
/// The returned vector is index-aligned with `placements`.
///
/// This is a compatibility wrapper over [`EpochResolver`] using a
/// thread-local resolver instance; call sites that resolve many epochs on a
/// machine they own should hold their own resolver and use
/// [`EpochResolver::resolve_into`] to also reuse the output vector.
///
/// # Panics
/// Panics if the machine spec or any demand is malformed, or if a placement
/// names a cache group the machine does not have.
pub fn resolve_epoch(spec: &MachineSpec, placements: &[PlacedDemand]) -> Vec<EpochOutcome> {
    resolve_epoch_with_duration(spec, placements, EPOCH_SECONDS)
}

/// Same as [`resolve_epoch`] but with an explicit epoch duration in seconds.
pub fn resolve_epoch_with_duration(
    spec: &MachineSpec,
    placements: &[PlacedDemand],
    epoch_seconds: f64,
) -> Vec<EpochOutcome> {
    SHARED_RESOLVER.with(|cell| {
        let mut slot = cell.borrow_mut();
        let rebuild = match slot.as_ref() {
            Some(resolver) => resolver.spec() != spec,
            None => true,
        };
        if rebuild {
            *slot = Some(EpochResolver::new(spec.clone()));
        }
        let resolver = slot.as_mut().expect("resolver built above");
        let mut out = Vec::with_capacity(placements.len());
        resolver.resolve_into(placements, epoch_seconds, &mut out);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_victim() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e9)
            .working_set_mb(8.0)
            .l1_mpki(25.0)
            .llc_mpki_solo(1.0)
            .locality(0.3)
            .parallelism(2.0)
            .build()
    }

    fn cache_aggressor() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e9)
            .working_set_mb(512.0)
            .l1_mpki(50.0)
            .llc_mpki_solo(35.0)
            .locality(0.0)
            .parallelism(2.0)
            .build()
    }

    fn io_aggressor() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e8)
            .disk_read_mb(80.0)
            .disk_seq_fraction(1.0)
            .net_tx_mb(100.0)
            .build()
    }

    #[test]
    fn empty_placement_resolves_to_nothing() {
        let spec = MachineSpec::xeon_x5472();
        assert!(resolve_epoch(&spec, &[]).is_empty());
    }

    #[test]
    fn solo_vm_on_idle_machine_keeps_up() {
        let spec = MachineSpec::xeon_x5472();
        let out = resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 2, 0)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vm_id, 1);
        assert!(
            out[0].achieved_fraction > 0.9,
            "fraction {}",
            out[0].achieved_fraction
        );
        assert!(out[0].counters.is_well_formed());
        assert!(out[0].counters.inst_retired > 0.0);
    }

    #[test]
    fn cache_interference_reduces_retired_instructions_and_grows_stalls() {
        let spec = MachineSpec::xeon_x5472();
        let solo = resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 2, 0)]);
        let shared = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, cache_victim(), 2, 0),
                PlacedDemand::new(2, cache_aggressor(), 2, 0),
            ],
        );
        assert!(shared[0].counters.inst_retired < solo[0].counters.inst_retired);
        assert!(
            shared[0].breakdown.llc_miss_seconds > solo[0].breakdown.llc_miss_seconds,
            "LLC stall must grow under cache interference"
        );
        // Normalized miss rate (per retired instruction) must also rise —
        // this is the signal the warning system clusters on.
        let n_solo = solo[0].counters.normalized_per_kilo_instruction();
        let n_shared = shared[0].counters.normalized_per_kilo_instruction();
        assert!(n_shared.l2_lines_in > n_solo.l2_lines_in);
    }

    #[test]
    fn separate_cache_groups_isolate_cache_interference() {
        let spec = MachineSpec::xeon_x5472();
        let same = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, cache_victim(), 2, 0),
                PlacedDemand::new(2, cache_aggressor(), 2, 0),
            ],
        );
        let split = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, cache_victim(), 2, 0),
                PlacedDemand::new(2, cache_aggressor(), 2, 1),
            ],
        );
        assert!(
            split[0].counters.inst_retired >= same[0].counters.inst_retired,
            "moving the aggressor to another cache group must not hurt the victim more"
        );
    }

    #[test]
    fn io_interference_grows_net_and_disk_stalls() {
        let spec = MachineSpec::xeon_x5472();
        let victim = ResourceDemand::builder()
            .instructions(1.0e9)
            .disk_read_mb(20.0)
            .net_tx_mb(40.0)
            .parallelism(2.0)
            .build();
        let solo = resolve_epoch(&spec, &[PlacedDemand::new(1, victim.clone(), 2, 0)]);
        let shared = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, victim, 2, 0),
                PlacedDemand::new(2, io_aggressor(), 2, 1),
            ],
        );
        assert!(shared[0].counters.disk_stall_seconds >= solo[0].counters.disk_stall_seconds);
        assert!(shared[0].counters.net_stall_seconds >= solo[0].counters.net_stall_seconds);
    }

    #[test]
    fn achieved_fraction_is_bounded() {
        let spec = MachineSpec::xeon_x5472();
        let heavy = ResourceDemand::builder()
            .instructions(1.0e11)
            .working_set_mb(1024.0)
            .l1_mpki(60.0)
            .llc_mpki_solo(40.0)
            .disk_read_mb(500.0)
            .net_tx_mb(500.0)
            .build();
        let out = resolve_epoch(&spec, &[PlacedDemand::new(1, heavy, 2, 0)]);
        assert!(out[0].achieved_fraction > 0.0);
        assert!(out[0].achieved_fraction < 1.0);
        assert!(out[0].counters.is_well_formed());
    }

    #[test]
    fn breakdown_per_instruction_cycles_has_four_components() {
        let spec = MachineSpec::xeon_x5472();
        let out = resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 2, 0)]);
        let cpis = out[0]
            .breakdown
            .per_instruction_cycles(spec.clock_hz, out[0].demanded_instructions);
        assert!(cpis.iter().all(|c| c.is_finite() && *c >= 0.0));
        assert!(
            cpis[0] > 0.0,
            "core component must be non-zero for a CPU-bound VM"
        );
    }

    #[test]
    fn saturated_io_stall_counters_clamp_on_the_completed_fraction() {
        // Regression test: the disk and net stall counters must follow the
        // same clamping rule — `stall * min(achieved, completed).clamp(0,1)`.
        // `net_stall_seconds` used to be scaled by `min(achieved, 1.0)` only,
        // overstating the NIC wait under saturation: a VM cannot have stalled
        // on traffic the NIC never carried.
        use crate::disk::resolve_disk;
        use crate::nic::resolve_nic;
        use crate::EPOCH_SECONDS;

        let spec = MachineSpec::xeon_x5472();
        let hog = ResourceDemand::builder()
            .instructions(1.0e9)
            .disk_read_mb(400.0)
            .disk_seq_fraction(0.5)
            .net_tx_mb(4_000.0)
            .parallelism(2.0)
            .build();
        let placements = [
            PlacedDemand::new(1, hog.clone(), 2, 0),
            PlacedDemand::new(2, hog, 2, 1),
        ];
        let out = resolve_epoch(&spec, &placements);
        let disk = resolve_disk(
            spec.disk_seq_mbps,
            spec.disk_rand_mbps,
            &placements,
            EPOCH_SECONDS,
        );
        let nic = resolve_nic(spec.nic_mbps, &placements, EPOCH_SECONDS);
        for ((o, d), n) in out.iter().zip(&disk).zip(&nic) {
            // The NIC and disk are both saturated in this scenario.
            assert!(n.completed_fraction < 1.0);
            assert!(d.completed_fraction < 1.0);
            let f = o.achieved_fraction;
            let expected_net = n.stall_seconds * f.min(n.completed_fraction).clamp(0.0, 1.0);
            let expected_disk = d.stall_seconds * f.min(d.completed_fraction).clamp(0.0, 1.0);
            assert!((o.counters.net_stall_seconds - expected_net).abs() < 1e-12);
            assert!((o.counters.disk_stall_seconds - expected_disk).abs() < 1e-12);
            // The clamp must bite: the counter reads strictly below the raw
            // stall time the breakdown reports.
            assert!(o.counters.net_stall_seconds < o.breakdown.net_seconds);
        }
    }

    #[test]
    #[should_panic(expected = "cache group")]
    fn invalid_cache_group_is_rejected() {
        let spec = MachineSpec::xeon_x5472();
        resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 2, 99)]);
    }

    #[test]
    #[should_panic(expected = "zero vCPUs")]
    fn zero_vcpus_is_rejected() {
        let spec = MachineSpec::xeon_x5472();
        resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 0, 0)]);
    }
}
