//! Epoch resolver: combines the cache, bus, disk, NIC and core models into a
//! single answer per VM — how much work completed, where the cycles went, and
//! what the Table 1 counters read.
//!
//! This is the boundary between the "hardware" and everything above it:
//!
//! * workload models produce [`crate::demand::ResourceDemand`]s,
//! * the virtualization substrate (`cloudsim`) decides which demands share a
//!   machine, which cores and which cache group each VM gets, and
//! * DeepDive (`deepdive`) sees only the [`crate::counters::CounterSnapshot`]
//!   this resolver emits.
//!
//! The resolver also returns a ground-truth [`StallBreakdown`] per VM, which
//! the evaluation harness uses to validate the analyzer's *estimated*
//! CPI-stack attribution (Fig. 6) without DeepDive ever reading it.

use crate::cache::resolve_cache_group;
use crate::core::core_cycles;
use crate::counters::CounterSnapshot;
use crate::demand::ResourceDemand;
use crate::disk::resolve_disk;
use crate::machine::MachineSpec;
use crate::membus::resolve_bus;
use crate::nic::resolve_nic;
use crate::{CACHE_LINE_BYTES, EPOCH_SECONDS};

/// Fraction of memory references that are loads (vs. stores); used only to
/// derive the `mem_load` counter from the memory-reference rate.
const LOAD_FRACTION: f64 = 0.7;

/// A VM's demand placed on specific machine resources for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedDemand {
    /// Caller-defined identifier (e.g. the VM id within the cluster).
    pub vm_id: u64,
    /// The intrinsic demand for this epoch.
    pub demand: ResourceDemand,
    /// Number of physical cores dedicated to the VM (vCPUs are pinned, §5.1).
    pub vcpus: usize,
    /// Index of the shared-cache group the VM's cores belong to.
    pub cache_group: usize,
}

impl PlacedDemand {
    /// Convenience constructor.
    pub fn new(vm_id: u64, demand: ResourceDemand, vcpus: usize, cache_group: usize) -> Self {
        Self {
            vm_id,
            demand,
            vcpus,
            cache_group,
        }
    }
}

/// Ground-truth decomposition of where a VM's epoch time went, in seconds.
///
/// The component names mirror Fig. 6 of the paper: in-core execution,
/// shared-cache-miss (memory) stalls, interconnect queueing stalls, and I/O
/// stalls.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StallBreakdown {
    /// Seconds executing instructions and hitting private caches ("Core").
    pub core_seconds: f64,
    /// Seconds stalled on shared-cache misses at the uncontended memory
    /// latency ("L2 miss").
    pub llc_miss_seconds: f64,
    /// Additional seconds stalled because the memory interconnect was
    /// congested ("FSB"/"QPI").
    pub bus_queue_seconds: f64,
    /// Seconds stalled waiting on the disk.
    pub disk_seconds: f64,
    /// Seconds stalled waiting on the network.
    pub net_seconds: f64,
}

impl StallBreakdown {
    /// Total busy-plus-stalled seconds the demanded work requires.
    pub fn total(&self) -> f64 {
        self.core_seconds
            + self.llc_miss_seconds
            + self.bus_queue_seconds
            + self.disk_seconds
            + self.net_seconds
    }

    /// Stalled cycles per instruction for each component, given a clock and
    /// an instruction count — the unit used in Fig. 6.
    pub fn per_instruction_cycles(&self, clock_hz: f64, instructions: f64) -> [f64; 4] {
        if instructions <= 0.0 {
            return [0.0; 4];
        }
        let to_cpi = clock_hz / instructions;
        [
            self.core_seconds * to_cpi,
            self.llc_miss_seconds * to_cpi,
            self.bus_queue_seconds * to_cpi,
            (self.disk_seconds + self.net_seconds) * to_cpi,
        ]
    }
}

/// Everything the hardware reports about one VM after one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// The caller-defined VM identifier from the placement.
    pub vm_id: u64,
    /// The Table 1 counters for this VM over the epoch.
    pub counters: CounterSnapshot,
    /// Fraction of the demanded work that completed (1.0 = kept up with the
    /// offered load).  This is the client-visible ground truth the
    /// evaluation uses; DeepDive itself never reads it.
    pub achieved_fraction: f64,
    /// Instructions the workload wanted to retire this epoch.
    pub demanded_instructions: f64,
    /// Ground-truth time breakdown for the *demanded* work.
    pub breakdown: StallBreakdown,
}

/// Resolves one epoch of execution for every VM placed on a machine.
///
/// The returned vector is index-aligned with `placements`.
///
/// # Panics
/// Panics if the machine spec or any demand is malformed, or if a placement
/// names a cache group the machine does not have.
pub fn resolve_epoch(spec: &MachineSpec, placements: &[PlacedDemand]) -> Vec<EpochOutcome> {
    resolve_epoch_with_duration(spec, placements, EPOCH_SECONDS)
}

/// Same as [`resolve_epoch`] but with an explicit epoch duration in seconds.
pub fn resolve_epoch_with_duration(
    spec: &MachineSpec,
    placements: &[PlacedDemand],
    epoch_seconds: f64,
) -> Vec<EpochOutcome> {
    assert!(
        spec.is_well_formed(),
        "malformed machine spec: {:?}",
        spec.name
    );
    assert!(epoch_seconds > 0.0, "epoch must have positive duration");
    for p in placements {
        assert!(
            p.demand.is_well_formed(),
            "malformed demand for VM {}: {:?}",
            p.vm_id,
            p.demand
        );
        assert!(
            p.cache_group < spec.cache_groups(),
            "VM {} placed on cache group {} but machine has {}",
            p.vm_id,
            p.cache_group,
            spec.cache_groups()
        );
        assert!(p.vcpus > 0, "VM {} placed with zero vCPUs", p.vm_id);
    }
    if placements.is_empty() {
        return Vec::new();
    }

    // --- Shared cache: resolve each cache group independently. -------------
    let mut effective_mpki = vec![0.0_f64; placements.len()];
    for group in 0..spec.cache_groups() {
        let members: Vec<usize> = placements
            .iter()
            .enumerate()
            .filter(|(_, p)| p.cache_group == group)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        let demands: Vec<&ResourceDemand> =
            members.iter().map(|&i| &placements[i].demand).collect();
        let outcomes = resolve_cache_group(spec.shared_cache_mb, &demands);
        for (slot, outcome) in members.iter().zip(outcomes) {
            effective_mpki[*slot] = outcome.effective_mpki;
        }
    }

    // --- Memory interconnect: machine-wide shared channel. -----------------
    let llc_misses: Vec<f64> = placements
        .iter()
        .zip(&effective_mpki)
        .map(|(p, &mpki)| mpki / 1_000.0 * p.demand.instructions)
        .collect();
    let ifetch_misses: Vec<f64> = placements
        .iter()
        .map(|p| p.demand.ifetch_mpki / 1_000.0 * p.demand.instructions)
        .collect();
    let bus_traffic_mb: f64 = llc_misses
        .iter()
        .zip(&ifetch_misses)
        .map(|(&d, &i)| (d + i) * CACHE_LINE_BYTES / (1024.0 * 1024.0))
        .sum();
    let bus = resolve_bus(spec.memory_bandwidth_mbps, bus_traffic_mb, epoch_seconds);

    // --- Disk and NIC: machine-wide shared devices. -------------------------
    let demand_refs: Vec<&ResourceDemand> = placements.iter().map(|p| &p.demand).collect();
    let disk = resolve_disk(
        spec.disk_seq_mbps,
        spec.disk_rand_mbps,
        &demand_refs,
        epoch_seconds,
    );
    let nic = resolve_nic(spec.nic_mbps, &demand_refs, epoch_seconds);

    // --- Per-VM assembly. ----------------------------------------------------
    placements
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let d = &p.demand;
            let core = core_cycles(d.instructions, d.base_cpi, d.branch_mpki);

            let llc_accesses = d.l1_mpki / 1_000.0 * d.instructions;
            let llc_miss = llc_misses[i];
            let llc_hit = (llc_accesses - llc_miss).max(0.0);

            // Off-core stall cycles: shared-cache hits at the LLC latency,
            // misses at the memory latency, and the interconnect queueing
            // surcharge on top of every miss.
            let llc_hit_cycles = llc_hit * spec.shared_cache_hit_cycles;
            let llc_miss_cycles = llc_miss * spec.memory_latency_cycles;
            let bus_queue_cycles = llc_miss * spec.memory_latency_cycles * bus.queueing_overhead();

            let parallelism = d.parallelism.max(1.0).min(p.vcpus as f64);
            let to_seconds = |cycles: f64| cycles / (spec.clock_hz * parallelism);

            let breakdown = StallBreakdown {
                core_seconds: to_seconds(core.total()),
                llc_miss_seconds: to_seconds(llc_hit_cycles + llc_miss_cycles),
                bus_queue_seconds: to_seconds(bus_queue_cycles),
                disk_seconds: disk[i].stall_seconds,
                net_seconds: nic[i].stall_seconds,
            };

            let needed = breakdown.total();
            let achieved_fraction = if needed <= 0.0 {
                1.0
            } else {
                (epoch_seconds / needed).min(1.0)
            };

            // Scale all event counts by the fraction of the demanded work
            // that actually completed within the epoch.
            let f = achieved_fraction;
            let inst_retired = d.instructions * f;
            let cpu_cycles =
                (core.total() + llc_hit_cycles + llc_miss_cycles + bus_queue_cycles) * f;
            let counters = CounterSnapshot {
                cpu_unhalted: cpu_cycles,
                inst_retired,
                l1d_repl: llc_accesses * f,
                l2_ifetch: d.ifetch_mpki / 1_000.0 * d.instructions * f,
                l2_lines_in: llc_miss * f,
                mem_load: d.mem_refs_per_instr * inst_retired * LOAD_FRACTION,
                resource_stalls: (llc_hit_cycles + llc_miss_cycles + bus_queue_cycles) * f,
                bus_tran_any: (llc_miss + ifetch_misses[i]) * f,
                bus_trans_ifetch: ifetch_misses[i] * f,
                bus_tran_brd: llc_miss * f,
                bus_req_out: llc_miss * spec.memory_latency_cycles * bus.latency_multiplier * f,
                br_miss_pred: d.branch_mpki / 1_000.0 * inst_retired,
                disk_stall_seconds: disk[i].stall_seconds
                    * f.min(disk[i].completed_fraction).clamp(0.0, 1.0),
                net_stall_seconds: nic[i].stall_seconds * f.min(1.0),
            };
            debug_assert!(
                counters.is_well_formed(),
                "produced malformed counters: {counters:?}"
            );

            EpochOutcome {
                vm_id: p.vm_id,
                counters,
                achieved_fraction,
                demanded_instructions: d.instructions,
                breakdown,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_victim() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e9)
            .working_set_mb(8.0)
            .l1_mpki(25.0)
            .llc_mpki_solo(1.0)
            .locality(0.3)
            .parallelism(2.0)
            .build()
    }

    fn cache_aggressor() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e9)
            .working_set_mb(512.0)
            .l1_mpki(50.0)
            .llc_mpki_solo(35.0)
            .locality(0.0)
            .parallelism(2.0)
            .build()
    }

    fn io_aggressor() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e8)
            .disk_read_mb(80.0)
            .disk_seq_fraction(1.0)
            .net_tx_mb(100.0)
            .build()
    }

    #[test]
    fn empty_placement_resolves_to_nothing() {
        let spec = MachineSpec::xeon_x5472();
        assert!(resolve_epoch(&spec, &[]).is_empty());
    }

    #[test]
    fn solo_vm_on_idle_machine_keeps_up() {
        let spec = MachineSpec::xeon_x5472();
        let out = resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 2, 0)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vm_id, 1);
        assert!(
            out[0].achieved_fraction > 0.9,
            "fraction {}",
            out[0].achieved_fraction
        );
        assert!(out[0].counters.is_well_formed());
        assert!(out[0].counters.inst_retired > 0.0);
    }

    #[test]
    fn cache_interference_reduces_retired_instructions_and_grows_stalls() {
        let spec = MachineSpec::xeon_x5472();
        let solo = resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 2, 0)]);
        let shared = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, cache_victim(), 2, 0),
                PlacedDemand::new(2, cache_aggressor(), 2, 0),
            ],
        );
        assert!(shared[0].counters.inst_retired < solo[0].counters.inst_retired);
        assert!(
            shared[0].breakdown.llc_miss_seconds > solo[0].breakdown.llc_miss_seconds,
            "LLC stall must grow under cache interference"
        );
        // Normalized miss rate (per retired instruction) must also rise —
        // this is the signal the warning system clusters on.
        let n_solo = solo[0].counters.normalized_per_kilo_instruction();
        let n_shared = shared[0].counters.normalized_per_kilo_instruction();
        assert!(n_shared.l2_lines_in > n_solo.l2_lines_in);
    }

    #[test]
    fn separate_cache_groups_isolate_cache_interference() {
        let spec = MachineSpec::xeon_x5472();
        let same = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, cache_victim(), 2, 0),
                PlacedDemand::new(2, cache_aggressor(), 2, 0),
            ],
        );
        let split = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, cache_victim(), 2, 0),
                PlacedDemand::new(2, cache_aggressor(), 2, 1),
            ],
        );
        assert!(
            split[0].counters.inst_retired >= same[0].counters.inst_retired,
            "moving the aggressor to another cache group must not hurt the victim more"
        );
    }

    #[test]
    fn io_interference_grows_net_and_disk_stalls() {
        let spec = MachineSpec::xeon_x5472();
        let victim = ResourceDemand::builder()
            .instructions(1.0e9)
            .disk_read_mb(20.0)
            .net_tx_mb(40.0)
            .parallelism(2.0)
            .build();
        let solo = resolve_epoch(&spec, &[PlacedDemand::new(1, victim.clone(), 2, 0)]);
        let shared = resolve_epoch(
            &spec,
            &[
                PlacedDemand::new(1, victim, 2, 0),
                PlacedDemand::new(2, io_aggressor(), 2, 1),
            ],
        );
        assert!(shared[0].counters.disk_stall_seconds >= solo[0].counters.disk_stall_seconds);
        assert!(shared[0].counters.net_stall_seconds >= solo[0].counters.net_stall_seconds);
    }

    #[test]
    fn achieved_fraction_is_bounded() {
        let spec = MachineSpec::xeon_x5472();
        let heavy = ResourceDemand::builder()
            .instructions(1.0e11)
            .working_set_mb(1024.0)
            .l1_mpki(60.0)
            .llc_mpki_solo(40.0)
            .disk_read_mb(500.0)
            .net_tx_mb(500.0)
            .build();
        let out = resolve_epoch(&spec, &[PlacedDemand::new(1, heavy, 2, 0)]);
        assert!(out[0].achieved_fraction > 0.0);
        assert!(out[0].achieved_fraction < 1.0);
        assert!(out[0].counters.is_well_formed());
    }

    #[test]
    fn breakdown_per_instruction_cycles_has_four_components() {
        let spec = MachineSpec::xeon_x5472();
        let out = resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 2, 0)]);
        let cpis = out[0]
            .breakdown
            .per_instruction_cycles(spec.clock_hz, out[0].demanded_instructions);
        assert!(cpis.iter().all(|c| c.is_finite() && *c >= 0.0));
        assert!(
            cpis[0] > 0.0,
            "core component must be non-zero for a CPU-bound VM"
        );
    }

    #[test]
    #[should_panic(expected = "cache group")]
    fn invalid_cache_group_is_rejected() {
        let spec = MachineSpec::xeon_x5472();
        resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 2, 99)]);
    }

    #[test]
    #[should_panic(expected = "zero vCPUs")]
    fn zero_vcpus_is_rejected() {
        let spec = MachineSpec::xeon_x5472();
        resolve_epoch(&spec, &[PlacedDemand::new(1, cache_victim(), 0, 0)]);
    }
}
