//! Shared last-level-cache contention model.
//!
//! The paper's canonical interference example is two VMs that "thrash in the
//! shared hardware cache when running together, but fit nicely in it when
//! each is running in isolation" (§1).  This module reproduces that effect:
//! VMs mapped to the same cache group compete for its capacity in proportion
//! to their access intensity, and a VM whose occupancy falls below what it
//! enjoyed alone sees its miss rate inflate.
//!
//! The model is deliberately simple — a proportional-occupancy partition with
//! a locality-weighted linear miss inflation — but it has the three
//! properties DeepDive's detection logic depends on:
//!
//! 1. running alone reproduces the solo miss rate exactly,
//! 2. adding a co-runner never *decreases* a VM's miss rate, and
//! 3. the inflation is monotone in the co-runners' access intensity and
//!    working-set size.

use crate::demand::AsDemand;

/// Per-VM result of resolving one cache group for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheOutcome {
    /// Effective shared-cache occupancy in MiB.
    pub occupancy_mb: f64,
    /// Effective misses per kilo-instruction after contention.
    pub effective_mpki: f64,
    /// The miss rate the VM would see running alone on this machine.
    pub solo_mpki: f64,
}

impl CacheOutcome {
    /// Ratio of contended to solo miss rate (1.0 = no inflation).
    pub fn miss_inflation(&self) -> f64 {
        if self.solo_mpki <= 0.0 {
            if self.effective_mpki > 0.0 {
                f64::INFINITY
            } else {
                1.0
            }
        } else {
            self.effective_mpki / self.solo_mpki
        }
    }
}

/// Reusable scratch buffers for [`resolve_cache_group_members_into`].
///
/// Constructed once (typically inside an `EpochResolver`) and reused across
/// epochs so resolving a cache group performs no heap allocation once the
/// buffers have grown to the machine's VM count.
#[derive(Debug, Default)]
pub struct CacheScratch {
    intensities: Vec<f64>,
    occupancy: Vec<f64>,
    capped: Vec<bool>,
    active: Vec<usize>,
    /// Outcomes of the most recent resolve, aligned with the member list it
    /// was given.
    pub outcomes: Vec<CacheOutcome>,
}

impl CacheScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resolves shared-cache contention for all demands mapped to one cache group.
///
/// `cache_mb` is the capacity of the group.  The slice may be empty (returns
/// an empty vector) or contain a single demand (returns the solo behaviour).
pub fn resolve_cache_group<D: AsDemand>(cache_mb: f64, demands: &[D]) -> Vec<CacheOutcome> {
    let members: Vec<usize> = (0..demands.len()).collect();
    let mut scratch = CacheScratch::new();
    resolve_cache_group_members_into(cache_mb, demands, &members, &mut scratch);
    scratch.outcomes
}

/// Resolves shared-cache contention for the subset of `demands` selected by
/// `members` (indices into `demands`), leaving one [`CacheOutcome`] per member
/// in `scratch.outcomes` (same order as `members`).
///
/// This is the allocation-free core of [`resolve_cache_group`]: the caller
/// owns the scratch buffers and the demand slice can be any placement record
/// implementing [`AsDemand`], so per-group membership never has to be
/// materialized as a fresh `Vec<&ResourceDemand>`.
pub fn resolve_cache_group_members_into<D: AsDemand>(
    cache_mb: f64,
    demands: &[D],
    members: &[usize],
    scratch: &mut CacheScratch,
) {
    assert!(cache_mb > 0.0, "cache capacity must be positive");
    scratch.outcomes.clear();
    if members.is_empty() {
        return;
    }

    // Access intensity: how hard each VM pushes on the shared cache.  L1
    // misses per kilo-instruction times the instruction volume gives the
    // number of shared-cache accesses this epoch.
    scratch.intensities.clear();
    scratch.intensities.extend(members.iter().map(|&i| {
        let d = demands[i].as_demand();
        (d.l1_mpki / 1_000.0 * d.instructions).max(0.0)
    }));

    partition_capacity(cache_mb, demands, members, scratch);

    for (j, &i) in members.iter().enumerate() {
        let d = demands[i].as_demand();
        let occ = scratch.occupancy[j];
        let solo_occ = d.working_set_mb.min(cache_mb);
        let solo_mpki = d.llc_mpki_solo;
        let effective_mpki = if solo_occ <= 0.0 || occ >= solo_occ {
            solo_mpki
        } else {
            // Fraction of the working set the VM can no longer keep
            // resident compared to running alone.
            let lost = 1.0 - occ / solo_occ;
            // Accesses that used to hit in the shared cache and now miss.
            // High temporal locality shields the VM: the hot fraction of
            // its accesses keeps hitting even in a smaller occupancy.
            let hitting_mpki = (d.l1_mpki - solo_mpki).max(0.0);
            let extra = hitting_mpki * lost * (1.0 - d.locality);
            (solo_mpki + extra).min(d.l1_mpki)
        };
        scratch.outcomes.push(CacheOutcome {
            occupancy_mb: occ,
            effective_mpki,
            solo_mpki,
        });
    }
}

/// Splits the cache capacity across the member VMs proportionally to access
/// intensity, without giving any VM more than its working set.  Surplus from
/// VMs whose working sets are smaller than their proportional share is
/// redistributed to the remaining VMs (two passes are sufficient for a fixed
/// point because the set of capped VMs only grows).  The result is left in
/// `scratch.occupancy`, aligned with `members`.
fn partition_capacity<D: AsDemand>(
    cache_mb: f64,
    demands: &[D],
    members: &[usize],
    scratch: &mut CacheScratch,
) {
    let n = members.len();
    scratch.occupancy.clear();
    scratch.occupancy.resize(n, 0.0);
    scratch.capped.clear();
    scratch.capped.resize(n, false);
    let occupancy = &mut scratch.occupancy;
    let capped = &mut scratch.capped;
    let active = &mut scratch.active;
    let intensities = &scratch.intensities;
    let working_set = |j: usize| demands[members[j]].as_demand().working_set_mb;
    let mut remaining = cache_mb;

    // Iterate until no newly-capped VM appears (at most n rounds).
    for _ in 0..n.max(1) {
        active.clear();
        active.extend((0..n).filter(|&j| !capped[j]));
        if active.is_empty() || remaining <= 0.0 {
            break;
        }
        let total_intensity: f64 = active.iter().map(|&j| intensities[j]).sum();
        let mut newly_capped = false;
        for &j in active.iter() {
            let share = if total_intensity > 0.0 {
                remaining * intensities[j] / total_intensity
            } else {
                remaining / active.len() as f64
            };
            let want = working_set(j);
            if want <= share {
                occupancy[j] = want;
                capped[j] = true;
                newly_capped = true;
            }
        }
        if newly_capped {
            remaining = cache_mb - occupancy.iter().sum::<f64>();
            continue;
        }
        // No one capped: hand out the proportional shares and finish.
        for &j in active.iter() {
            occupancy[j] = if total_intensity > 0.0 {
                remaining * intensities[j] / total_intensity
            } else {
                remaining / active.len() as f64
            };
        }
        return;
    }
    // Give any still-unassigned VMs an even split of what is left.
    active.clear();
    active.extend((0..n).filter(|&j| !capped[j] && occupancy[j] == 0.0));
    if !active.is_empty() {
        let each = (cache_mb - occupancy.iter().sum::<f64>()).max(0.0) / active.len() as f64;
        for &j in active.iter() {
            occupancy[j] = each.min(working_set(j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::ResourceDemand;

    fn vm(ws_mb: f64, l1_mpki: f64, llc_mpki: f64, locality: f64) -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(1.0e9)
            .working_set_mb(ws_mb)
            .l1_mpki(l1_mpki)
            .llc_mpki_solo(llc_mpki)
            .locality(locality)
            .build()
    }

    #[test]
    fn empty_group_resolves_to_nothing() {
        let empty: [&ResourceDemand; 0] = [];
        assert!(resolve_cache_group(12.0, &empty).is_empty());
    }

    #[test]
    fn solo_vm_sees_solo_miss_rate() {
        let d = vm(8.0, 20.0, 1.0, 0.5);
        let out = resolve_cache_group(12.0, &[&d]);
        assert_eq!(out.len(), 1);
        assert!((out[0].effective_mpki - 1.0).abs() < 1e-12);
        assert!((out[0].miss_inflation() - 1.0).abs() < 1e-12);
        assert!((out[0].occupancy_mb - 8.0).abs() < 1e-9);
    }

    #[test]
    fn two_small_working_sets_fit_without_inflation() {
        let a = vm(4.0, 20.0, 1.0, 0.5);
        let b = vm(4.0, 20.0, 1.0, 0.5);
        let out = resolve_cache_group(12.0, &[&a, &b]);
        for o in &out {
            assert!(
                (o.effective_mpki - 1.0).abs() < 1e-9,
                "no thrash expected: {:?}",
                o
            );
        }
    }

    #[test]
    fn aggressor_inflates_victim_miss_rate() {
        let victim = vm(8.0, 25.0, 1.0, 0.5);
        let aggressor = vm(512.0, 40.0, 30.0, 0.0);
        let solo = resolve_cache_group(12.0, &[&victim]);
        let together = resolve_cache_group(12.0, &[&victim, &aggressor]);
        assert!(
            together[0].effective_mpki > solo[0].effective_mpki,
            "victim must miss more next to the aggressor"
        );
        assert!(together[0].effective_mpki <= victim.l1_mpki);
        // The aggressor already missed everywhere alone; co-location cannot
        // make it much worse than its own L1 miss stream.
        assert!(together[1].effective_mpki <= aggressor.l1_mpki + 1e-9);
    }

    #[test]
    fn higher_locality_shields_the_victim() {
        let aggressor = vm(512.0, 40.0, 30.0, 0.0);
        let low_locality = vm(8.0, 25.0, 1.0, 0.1);
        let high_locality = vm(8.0, 25.0, 1.0, 0.9);
        let low = resolve_cache_group(12.0, &[&low_locality, &aggressor]);
        let high = resolve_cache_group(12.0, &[&high_locality, &aggressor]);
        assert!(low[0].effective_mpki > high[0].effective_mpki);
    }

    #[test]
    fn occupancy_never_exceeds_capacity_or_working_set() {
        let a = vm(6.0, 30.0, 2.0, 0.4);
        let b = vm(20.0, 10.0, 3.0, 0.6);
        let c = vm(3.0, 50.0, 1.0, 0.2);
        let out = resolve_cache_group(12.0, &[&a, &b, &c]);
        let total: f64 = out.iter().map(|o| o.occupancy_mb).sum();
        assert!(
            total <= 12.0 + 1e-9,
            "total occupancy {total} exceeds capacity"
        );
        for (o, d) in out.iter().zip([&a, &b, &c]) {
            assert!(o.occupancy_mb <= d.working_set_mb + 1e-9);
            assert!(o.occupancy_mb >= 0.0);
        }
    }

    #[test]
    fn inflation_is_monotone_in_aggressor_intensity() {
        let victim = vm(8.0, 25.0, 1.0, 0.5);
        let mild = vm(64.0, 10.0, 8.0, 0.0);
        let harsh = vm(512.0, 60.0, 40.0, 0.0);
        let with_mild = resolve_cache_group(12.0, &[&victim, &mild]);
        let with_harsh = resolve_cache_group(12.0, &[&victim, &harsh]);
        assert!(with_harsh[0].effective_mpki >= with_mild[0].effective_mpki);
    }

    #[test]
    #[should_panic(expected = "cache capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let d = vm(1.0, 1.0, 1.0, 0.5);
        resolve_cache_group(0.0, &[&d]);
    }
}
