//! Shared last-level-cache contention model.
//!
//! The paper's canonical interference example is two VMs that "thrash in the
//! shared hardware cache when running together, but fit nicely in it when
//! each is running in isolation" (§1).  This module reproduces that effect:
//! VMs mapped to the same cache group compete for its capacity in proportion
//! to their access intensity, and a VM whose occupancy falls below what it
//! enjoyed alone sees its miss rate inflate.
//!
//! The model is deliberately simple — a proportional-occupancy partition with
//! a locality-weighted linear miss inflation — but it has the three
//! properties DeepDive's detection logic depends on:
//!
//! 1. running alone reproduces the solo miss rate exactly,
//! 2. adding a co-runner never *decreases* a VM's miss rate, and
//! 3. the inflation is monotone in the co-runners' access intensity and
//!    working-set size.

use crate::demand::ResourceDemand;

/// Per-VM result of resolving one cache group for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheOutcome {
    /// Effective shared-cache occupancy in MiB.
    pub occupancy_mb: f64,
    /// Effective misses per kilo-instruction after contention.
    pub effective_mpki: f64,
    /// The miss rate the VM would see running alone on this machine.
    pub solo_mpki: f64,
}

impl CacheOutcome {
    /// Ratio of contended to solo miss rate (1.0 = no inflation).
    pub fn miss_inflation(&self) -> f64 {
        if self.solo_mpki <= 0.0 {
            if self.effective_mpki > 0.0 {
                f64::INFINITY
            } else {
                1.0
            }
        } else {
            self.effective_mpki / self.solo_mpki
        }
    }
}

/// Resolves shared-cache contention for all demands mapped to one cache group.
///
/// `cache_mb` is the capacity of the group.  The slice may be empty (returns
/// an empty vector) or contain a single demand (returns the solo behaviour).
pub fn resolve_cache_group(cache_mb: f64, demands: &[&ResourceDemand]) -> Vec<CacheOutcome> {
    assert!(cache_mb > 0.0, "cache capacity must be positive");
    if demands.is_empty() {
        return Vec::new();
    }

    // Access intensity: how hard each VM pushes on the shared cache.  L1
    // misses per kilo-instruction times the instruction volume gives the
    // number of shared-cache accesses this epoch.
    let intensities: Vec<f64> = demands
        .iter()
        .map(|d| (d.l1_mpki / 1_000.0 * d.instructions).max(0.0))
        .collect();

    let occupancies = partition_capacity(cache_mb, demands, &intensities);

    demands
        .iter()
        .zip(&occupancies)
        .map(|(d, &occ)| {
            let solo_occ = d.working_set_mb.min(cache_mb);
            let solo_mpki = d.llc_mpki_solo;
            let effective_mpki = if solo_occ <= 0.0 || occ >= solo_occ {
                solo_mpki
            } else {
                // Fraction of the working set the VM can no longer keep
                // resident compared to running alone.
                let lost = 1.0 - occ / solo_occ;
                // Accesses that used to hit in the shared cache and now miss.
                // High temporal locality shields the VM: the hot fraction of
                // its accesses keeps hitting even in a smaller occupancy.
                let hitting_mpki = (d.l1_mpki - solo_mpki).max(0.0);
                let extra = hitting_mpki * lost * (1.0 - d.locality);
                (solo_mpki + extra).min(d.l1_mpki)
            };
            CacheOutcome {
                occupancy_mb: occ,
                effective_mpki,
                solo_mpki,
            }
        })
        .collect()
}

/// Splits the cache capacity across VMs proportionally to access intensity,
/// without giving any VM more than its working set.  Surplus from VMs whose
/// working sets are smaller than their proportional share is redistributed to
/// the remaining VMs (two passes are sufficient for a fixed point because the
/// set of capped VMs only grows).
fn partition_capacity(cache_mb: f64, demands: &[&ResourceDemand], intensities: &[f64]) -> Vec<f64> {
    let n = demands.len();
    let mut occupancy = vec![0.0_f64; n];
    let mut capped = vec![false; n];
    let mut remaining = cache_mb;

    // Iterate until no newly-capped VM appears (at most n rounds).
    for _ in 0..n.max(1) {
        let active: Vec<usize> = (0..n).filter(|&i| !capped[i]).collect();
        if active.is_empty() || remaining <= 0.0 {
            break;
        }
        let total_intensity: f64 = active.iter().map(|&i| intensities[i]).sum();
        let mut newly_capped = false;
        for &i in &active {
            let share = if total_intensity > 0.0 {
                remaining * intensities[i] / total_intensity
            } else {
                remaining / active.len() as f64
            };
            let want = demands[i].working_set_mb;
            if want <= share {
                occupancy[i] = want;
                capped[i] = true;
                newly_capped = true;
            }
        }
        if newly_capped {
            remaining = cache_mb - occupancy.iter().sum::<f64>();
            continue;
        }
        // No one capped: hand out the proportional shares and finish.
        for &i in &active {
            occupancy[i] = if total_intensity > 0.0 {
                remaining * intensities[i] / total_intensity
            } else {
                remaining / active.len() as f64
            };
        }
        return occupancy;
    }
    // Give any still-unassigned VMs an even split of what is left.
    let leftover: Vec<usize> = (0..n)
        .filter(|&i| !capped[i] && occupancy[i] == 0.0)
        .collect();
    if !leftover.is_empty() {
        let each = (cache_mb - occupancy.iter().sum::<f64>()).max(0.0) / leftover.len() as f64;
        for i in leftover {
            occupancy[i] = each.min(demands[i].working_set_mb);
        }
    }
    occupancy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::ResourceDemand;

    fn vm(ws_mb: f64, l1_mpki: f64, llc_mpki: f64, locality: f64) -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(1.0e9)
            .working_set_mb(ws_mb)
            .l1_mpki(l1_mpki)
            .llc_mpki_solo(llc_mpki)
            .locality(locality)
            .build()
    }

    #[test]
    fn empty_group_resolves_to_nothing() {
        assert!(resolve_cache_group(12.0, &[]).is_empty());
    }

    #[test]
    fn solo_vm_sees_solo_miss_rate() {
        let d = vm(8.0, 20.0, 1.0, 0.5);
        let out = resolve_cache_group(12.0, &[&d]);
        assert_eq!(out.len(), 1);
        assert!((out[0].effective_mpki - 1.0).abs() < 1e-12);
        assert!((out[0].miss_inflation() - 1.0).abs() < 1e-12);
        assert!((out[0].occupancy_mb - 8.0).abs() < 1e-9);
    }

    #[test]
    fn two_small_working_sets_fit_without_inflation() {
        let a = vm(4.0, 20.0, 1.0, 0.5);
        let b = vm(4.0, 20.0, 1.0, 0.5);
        let out = resolve_cache_group(12.0, &[&a, &b]);
        for o in &out {
            assert!(
                (o.effective_mpki - 1.0).abs() < 1e-9,
                "no thrash expected: {:?}",
                o
            );
        }
    }

    #[test]
    fn aggressor_inflates_victim_miss_rate() {
        let victim = vm(8.0, 25.0, 1.0, 0.5);
        let aggressor = vm(512.0, 40.0, 30.0, 0.0);
        let solo = resolve_cache_group(12.0, &[&victim]);
        let together = resolve_cache_group(12.0, &[&victim, &aggressor]);
        assert!(
            together[0].effective_mpki > solo[0].effective_mpki,
            "victim must miss more next to the aggressor"
        );
        assert!(together[0].effective_mpki <= victim.l1_mpki);
        // The aggressor already missed everywhere alone; co-location cannot
        // make it much worse than its own L1 miss stream.
        assert!(together[1].effective_mpki <= aggressor.l1_mpki + 1e-9);
    }

    #[test]
    fn higher_locality_shields_the_victim() {
        let aggressor = vm(512.0, 40.0, 30.0, 0.0);
        let low_locality = vm(8.0, 25.0, 1.0, 0.1);
        let high_locality = vm(8.0, 25.0, 1.0, 0.9);
        let low = resolve_cache_group(12.0, &[&low_locality, &aggressor]);
        let high = resolve_cache_group(12.0, &[&high_locality, &aggressor]);
        assert!(low[0].effective_mpki > high[0].effective_mpki);
    }

    #[test]
    fn occupancy_never_exceeds_capacity_or_working_set() {
        let a = vm(6.0, 30.0, 2.0, 0.4);
        let b = vm(20.0, 10.0, 3.0, 0.6);
        let c = vm(3.0, 50.0, 1.0, 0.2);
        let out = resolve_cache_group(12.0, &[&a, &b, &c]);
        let total: f64 = out.iter().map(|o| o.occupancy_mb).sum();
        assert!(
            total <= 12.0 + 1e-9,
            "total occupancy {total} exceeds capacity"
        );
        for (o, d) in out.iter().zip([&a, &b, &c]) {
            assert!(o.occupancy_mb <= d.working_set_mb + 1e-9);
            assert!(o.occupancy_mb >= 0.0);
        }
    }

    #[test]
    fn inflation_is_monotone_in_aggressor_intensity() {
        let victim = vm(8.0, 25.0, 1.0, 0.5);
        let mild = vm(64.0, 10.0, 8.0, 0.0);
        let harsh = vm(512.0, 60.0, 40.0, 0.0);
        let with_mild = resolve_cache_group(12.0, &[&victim, &mild]);
        let with_harsh = resolve_cache_group(12.0, &[&victim, &harsh]);
        assert!(with_harsh[0].effective_mpki >= with_mild[0].effective_mpki);
    }

    #[test]
    #[should_panic(expected = "cache capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let d = vm(1.0, 1.0, 1.0, 0.5);
        resolve_cache_group(0.0, &[&d]);
    }
}
