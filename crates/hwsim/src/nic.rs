//! Network-interface contention model.
//!
//! The paper injects network interference with `iperf` streams (Fig. 5,
//! Scenario C of Fig. 6): when co-located VMs together demand more than the
//! PM's 1-Gb NIC can carry, packets queue, each VM's achieved throughput
//! drops to its fair share, and the victim VM accumulates "idle CPU cycles
//! while the system had a packet in the Snd/Rcv queue" — the `netstat` T_net
//! metric of Table 1.

use crate::demand::AsDemand;

/// Per-VM outcome of resolving the shared NIC for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicOutcome {
    /// MiB the VM actually transferred (tx + rx) this epoch.
    pub achieved_mb: f64,
    /// Fraction of the requested traffic that was carried.
    pub completed_fraction: f64,
    /// Seconds the VM spends stalled on queued packets (`netstat` T_net),
    /// capped at the epoch length.
    pub stall_seconds: f64,
}

/// Resolves NIC contention across every VM on a physical machine.
///
/// `nic_mbps` is the line rate in MiB/s.  When the combined demand exceeds
/// the line rate, bandwidth is shared in proportion to demand: the paper's
/// interfering workload is unthrottled bidirectional UDP (`iperf`), which
/// does not back off, so a small well-behaved flow loses roughly its
/// proportional share rather than being protected max-min-fairly.
pub fn resolve_nic<D: AsDemand>(
    nic_mbps: f64,
    demands: &[D],
    epoch_seconds: f64,
) -> Vec<NicOutcome> {
    let mut out = Vec::with_capacity(demands.len());
    resolve_nic_into(nic_mbps, demands, epoch_seconds, &mut out);
    out
}

/// Allocation-free core of [`resolve_nic`]: leaves one [`NicOutcome`] per
/// demand in `out` (cleared first), reusing its capacity across epochs.
pub fn resolve_nic_into<D: AsDemand>(
    nic_mbps: f64,
    demands: &[D],
    epoch_seconds: f64,
    out: &mut Vec<NicOutcome>,
) {
    assert!(nic_mbps > 0.0, "NIC bandwidth must be positive");
    assert!(epoch_seconds > 0.0, "epoch must have positive duration");
    out.clear();

    // Demand-proportional allocation: everything is granted when the total
    // demand fits the line rate; otherwise every flow is scaled by the same
    // factor (the paper's interfering workload is unthrottled bidirectional
    // UDP, which does not back off, so there is no max-min protection).
    let capacity = nic_mbps * epoch_seconds;
    let total: f64 = demands
        .iter()
        .map(|d| d.as_demand().net_total_mb().max(0.0))
        .sum();
    let scale = if total <= capacity || total <= 0.0 {
        1.0
    } else {
        capacity.max(0.0) / total
    };

    out.extend(demands.iter().map(|d| {
        let want = d.as_demand().net_total_mb().max(0.0);
        if want <= 0.0 {
            return NicOutcome {
                achieved_mb: 0.0,
                completed_fraction: 1.0,
                stall_seconds: 0.0,
            };
        }
        let got = want * scale;
        let completed_fraction = (got / want).min(1.0);
        // Transmission time at the achieved rate, plus the epoch fraction
        // spent blocked on traffic that never got through.
        let tx_time = got / nic_mbps;
        let blocked = (1.0 - completed_fraction) * epoch_seconds;
        NicOutcome {
            achieved_mb: got,
            completed_fraction,
            stall_seconds: (tx_time * 0.1 + blocked).min(epoch_seconds),
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::ResourceDemand;

    fn net_vm(tx: f64, rx: f64) -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(1.0e8)
            .net_tx_mb(tx)
            .net_rx_mb(rx)
            .build()
    }

    #[test]
    fn under_capacity_everything_completes() {
        let a = net_vm(30.0, 20.0);
        let b = net_vm(10.0, 10.0);
        let out = resolve_nic(125.0, &[&a, &b], 1.0);
        assert_eq!(out[0].completed_fraction, 1.0);
        assert_eq!(out[1].completed_fraction, 1.0);
        assert!((out[0].achieved_mb - 50.0).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_shares_in_proportion_to_demand() {
        let big = net_vm(200.0, 0.0);
        let small = net_vm(20.0, 0.0);
        let out = resolve_nic(125.0, &[&big, &small], 1.0);
        // Both flows are scaled by the same factor 125/220.
        let scale = 125.0 / 220.0;
        assert!((out[0].achieved_mb - 200.0 * scale).abs() < 1e-9);
        assert!((out[1].achieved_mb - 20.0 * scale).abs() < 1e-9);
        assert!((out[0].completed_fraction - out[1].completed_fraction).abs() < 1e-9);
        assert!(out[0].completed_fraction < 1.0);
    }

    #[test]
    fn idle_vm_has_zero_net_stall() {
        let idle = ResourceDemand::builder().instructions(1.0e9).build();
        let busy = net_vm(500.0, 0.0);
        let out = resolve_nic(125.0, &[&idle, &busy], 1.0);
        assert_eq!(out[0].stall_seconds, 0.0);
        assert_eq!(out[0].achieved_mb, 0.0);
    }

    #[test]
    fn stall_grows_with_oversubscription() {
        let victim = net_vm(60.0, 0.0);
        let mild = net_vm(60.0, 0.0);
        let harsh = net_vm(600.0, 0.0);
        let with_mild = resolve_nic(125.0, &[&victim, &mild], 1.0);
        let with_harsh = resolve_nic(125.0, &[&victim, &harsh], 1.0);
        assert!(with_harsh[0].stall_seconds >= with_mild[0].stall_seconds);
        assert!(with_harsh[0].completed_fraction <= with_mild[0].completed_fraction);
    }

    #[test]
    fn stall_never_exceeds_epoch() {
        let a = net_vm(10_000.0, 10_000.0);
        let b = net_vm(10_000.0, 10_000.0);
        for o in resolve_nic(125.0, &[&a, &b], 1.0) {
            assert!(o.stall_seconds <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn allocations_never_exceed_capacity() {
        let vms: Vec<ResourceDemand> = (0..5).map(|i| net_vm(40.0 * (i + 1) as f64, 0.0)).collect();
        let refs: Vec<&ResourceDemand> = vms.iter().collect();
        let out = resolve_nic(125.0, &refs, 1.0);
        let total: f64 = out.iter().map(|o| o.achieved_mb).sum();
        assert!(total <= 125.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "NIC bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let a = net_vm(1.0, 0.0);
        resolve_nic(0.0, &[&a], 1.0);
    }
}
