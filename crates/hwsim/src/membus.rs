//! Memory-interconnect (FSB / QPI) contention model.
//!
//! On the paper's Xeon X5472 testbed every last-level-cache miss crosses a
//! shared front-side bus; on the Core i7 port the equivalent shared resource
//! is the QuickPath interconnect plus the integrated memory controllers.
//! Either way, when the combined miss traffic of co-located VMs approaches
//! the interconnect's sustainable bandwidth, each individual access queues
//! behind the others and the *per-miss* stall grows — the paper's
//! "Scenario B" interference (Fig. 6).
//!
//! We model the interconnect as a single shared channel with an M/M/1-style
//! latency multiplier: at utilization `u` the average memory access costs
//! `memory_latency_cycles / (1 - u)` (capped), and when the offered traffic
//! exceeds capacity the excess simply does not complete this epoch.

/// Cap on the queueing-delay multiplier so that a saturated bus produces a
/// large but finite per-access latency.
pub const MAX_LATENCY_MULTIPLIER: f64 = 12.0;

/// Utilization at which the M/M/1 term is clamped to avoid division by ~zero.
pub const UTILIZATION_CLAMP: f64 = 0.95;

/// Outcome of resolving the interconnect for one PM and one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusOutcome {
    /// Offered traffic across all VMs, in MiB for the epoch.
    pub offered_mb: f64,
    /// Fraction of the offered traffic the bus can actually serve this epoch
    /// (1.0 when under capacity).
    pub served_fraction: f64,
    /// Average per-access latency multiplier relative to an idle bus.
    pub latency_multiplier: f64,
    /// Offered utilization (offered traffic / capacity); may exceed 1.
    pub utilization: f64,
}

/// Resolves bus contention given the total traffic offered by every VM on the
/// machine during an epoch of `epoch_seconds`.
///
/// `bandwidth_mbps` is the sustainable interconnect bandwidth in MiB/s.
pub fn resolve_bus(bandwidth_mbps: f64, offered_mb: f64, epoch_seconds: f64) -> BusOutcome {
    assert!(bandwidth_mbps > 0.0, "bus bandwidth must be positive");
    assert!(epoch_seconds > 0.0, "epoch must have positive duration");
    let offered_mb = offered_mb.max(0.0);
    let capacity_mb = bandwidth_mbps * epoch_seconds;
    let utilization = offered_mb / capacity_mb;

    let served_fraction = if utilization <= 1.0 {
        1.0
    } else {
        1.0 / utilization
    };
    let clamped = utilization.min(UTILIZATION_CLAMP);
    let latency_multiplier = (1.0 / (1.0 - clamped)).min(MAX_LATENCY_MULTIPLIER);

    BusOutcome {
        offered_mb,
        served_fraction,
        latency_multiplier,
        utilization,
    }
}

impl BusOutcome {
    /// Extra (queueing-only) fraction of the base memory latency each access
    /// pays; zero on an idle bus.  The CPI-stack attribution uses this to
    /// separate the "FSB" component from the plain "L2 miss" component.
    pub fn queueing_overhead(&self) -> f64 {
        (self.latency_multiplier - 1.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_has_unit_multiplier() {
        let out = resolve_bus(6_000.0, 0.0, 1.0);
        assert_eq!(out.latency_multiplier, 1.0);
        assert_eq!(out.served_fraction, 1.0);
        assert_eq!(out.queueing_overhead(), 0.0);
    }

    #[test]
    fn latency_grows_monotonically_with_traffic() {
        let low = resolve_bus(6_000.0, 600.0, 1.0);
        let mid = resolve_bus(6_000.0, 3_000.0, 1.0);
        let high = resolve_bus(6_000.0, 5_700.0, 1.0);
        assert!(low.latency_multiplier < mid.latency_multiplier);
        assert!(mid.latency_multiplier < high.latency_multiplier);
        assert!(high.latency_multiplier <= MAX_LATENCY_MULTIPLIER);
    }

    #[test]
    fn oversubscription_throttles_throughput() {
        let out = resolve_bus(6_000.0, 12_000.0, 1.0);
        assert!((out.served_fraction - 0.5).abs() < 1e-12);
        assert!(out.utilization > 1.0);
        assert_eq!(
            out.latency_multiplier,
            MAX_LATENCY_MULTIPLIER.min(1.0 / (1.0 - UTILIZATION_CLAMP))
        );
    }

    #[test]
    fn under_capacity_serves_everything() {
        let out = resolve_bus(6_000.0, 5_999.0, 1.0);
        assert_eq!(out.served_fraction, 1.0);
    }

    #[test]
    fn epoch_duration_scales_capacity() {
        // Half an epoch means half the deliverable bytes at the same rate.
        let full = resolve_bus(6_000.0, 6_000.0, 1.0);
        let half = resolve_bus(6_000.0, 6_000.0, 0.5);
        assert!(half.utilization > full.utilization);
    }

    #[test]
    fn negative_traffic_is_clamped() {
        let out = resolve_bus(6_000.0, -5.0, 1.0);
        assert_eq!(out.offered_mb, 0.0);
        assert_eq!(out.latency_multiplier, 1.0);
    }

    #[test]
    #[should_panic(expected = "bus bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        resolve_bus(0.0, 1.0, 1.0);
    }
}
