//! Per-epoch resource demand of a virtual machine.
//!
//! A workload model (crate `workloads`) translates its offered load for one
//! epoch — requests to serve, map tasks to run, bytes to ship — into a
//! [`ResourceDemand`]: how many instructions it wants to execute, how those
//! instructions behave in the cache hierarchy, and how much disk and network
//! traffic accompanies them.  The demand is *intrinsic* (what the VM would do
//! on ideal, uncontended hardware); the contention resolver in
//! [`crate::contention`] decides how much of it actually completes once the
//! VM shares a physical machine with others.

use serde::{Deserialize, Serialize};

/// Intrinsic resource demand of one VM for one epoch.
///
/// All fields describe the demand assuming no contention.  Rates are per
/// instruction (or per kilo-instruction) so that scaling the instruction
/// count up or down with load intensity keeps the demand self-consistent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceDemand {
    /// Instructions the workload wants to retire this epoch.
    pub instructions: f64,
    /// Base cycles per instruction when every memory access hits in the
    /// private caches (pure in-core component).
    pub base_cpi: f64,
    /// Loads + stores per instruction.
    pub mem_refs_per_instr: f64,
    /// L1 data-cache misses per kilo-instruction (intrinsic).
    pub l1_mpki: f64,
    /// Shared last-level-cache misses per kilo-instruction when the VM runs
    /// alone and its working set fits its fair share of the cache.
    pub llc_mpki_solo: f64,
    /// Working-set size competing for the shared cache, in MiB.
    pub working_set_mb: f64,
    /// Fraction of shared-cache accesses with high temporal locality.  Higher
    /// locality means losing occupancy hurts less (misses grow more slowly).
    pub locality: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Instruction-fetch misses per kilo-instruction that reach the bus.
    pub ifetch_mpki: f64,
    /// Number of vCPUs the workload can keep busy this epoch (1.0..=n_vcpus).
    pub parallelism: f64,
    /// Disk bytes read this epoch, in MiB.
    pub disk_read_mb: f64,
    /// Disk bytes written this epoch, in MiB.
    pub disk_write_mb: f64,
    /// Fraction of disk accesses that are sequential when the VM has the disk
    /// to itself (0.0 = fully random, 1.0 = fully sequential).
    pub disk_seq_fraction: f64,
    /// Network bytes transmitted this epoch, in MiB.
    pub net_tx_mb: f64,
    /// Network bytes received this epoch, in MiB.
    pub net_rx_mb: f64,
}

impl Default for ResourceDemand {
    fn default() -> Self {
        Self {
            instructions: 0.0,
            base_cpi: 0.8,
            mem_refs_per_instr: 0.3,
            l1_mpki: 20.0,
            llc_mpki_solo: 1.0,
            working_set_mb: 8.0,
            locality: 0.7,
            branch_mpki: 5.0,
            ifetch_mpki: 0.5,
            parallelism: 1.0,
            disk_read_mb: 0.0,
            disk_write_mb: 0.0,
            disk_seq_fraction: 1.0,
            net_tx_mb: 0.0,
            net_rx_mb: 0.0,
        }
    }
}

impl ResourceDemand {
    /// Starts a [`ResourceDemandBuilder`] with conservative CPU-bound defaults.
    pub fn builder() -> ResourceDemandBuilder {
        ResourceDemandBuilder::default()
    }

    /// An identically-shaped demand with the instruction count (and the disk
    /// and network volumes, which track offered load) scaled by `factor`.
    ///
    /// This is how workload models express load-intensity changes: the
    /// *normalized* behaviour stays identical, only the amount of work moves.
    pub fn scaled_by_load(&self, factor: f64) -> Self {
        let factor = factor.max(0.0);
        Self {
            instructions: self.instructions * factor,
            disk_read_mb: self.disk_read_mb * factor,
            disk_write_mb: self.disk_write_mb * factor,
            net_tx_mb: self.net_tx_mb * factor,
            net_rx_mb: self.net_rx_mb * factor,
            ..self.clone()
        }
    }

    /// Total disk traffic (read + write) in MiB.
    pub fn disk_total_mb(&self) -> f64 {
        self.disk_read_mb + self.disk_write_mb
    }

    /// Total network traffic (tx + rx) in MiB.
    pub fn net_total_mb(&self) -> f64 {
        self.net_tx_mb + self.net_rx_mb
    }

    /// True when every field is finite, non-negative and fractions are in
    /// range — the invariant the contention resolver assumes.
    pub fn is_well_formed(&self) -> bool {
        let non_negative = [
            self.instructions,
            self.base_cpi,
            self.mem_refs_per_instr,
            self.l1_mpki,
            self.llc_mpki_solo,
            self.working_set_mb,
            self.branch_mpki,
            self.ifetch_mpki,
            self.disk_read_mb,
            self.disk_write_mb,
            self.net_tx_mb,
            self.net_rx_mb,
        ]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0);
        non_negative
            && self.parallelism.is_finite()
            && self.parallelism >= 0.0
            && (0.0..=1.0).contains(&self.locality)
            && (0.0..=1.0).contains(&self.disk_seq_fraction)
    }
}

/// Access to the [`ResourceDemand`] carried by a larger value.
///
/// The contention models ([`crate::cache`], [`crate::disk`], [`crate::nic`])
/// are generic over this trait so they can iterate demands stored inside
/// placement records (e.g. `PlacedDemand`) directly, without the caller
/// materializing an intermediate `Vec<&ResourceDemand>` on every epoch — the
/// allocation the reusable epoch resolver exists to avoid.
pub trait AsDemand {
    /// The demand carried by this value.
    fn as_demand(&self) -> &ResourceDemand;
}

impl AsDemand for ResourceDemand {
    fn as_demand(&self) -> &ResourceDemand {
        self
    }
}

impl<T: AsDemand + ?Sized> AsDemand for &T {
    fn as_demand(&self) -> &ResourceDemand {
        (**self).as_demand()
    }
}

/// Builder for [`ResourceDemand`]; every setter overrides one field of the
/// CPU-bound default profile.
#[derive(Debug, Clone, Default)]
pub struct ResourceDemandBuilder {
    demand: ResourceDemand,
}

macro_rules! builder_setter {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        pub fn $name(mut self, value: f64) -> Self {
            self.demand.$name = value;
            self
        }
    };
}

impl ResourceDemandBuilder {
    builder_setter!(
        /// Instructions to retire this epoch.
        instructions
    );
    builder_setter!(
        /// Base (all-hit) cycles per instruction.
        base_cpi
    );
    builder_setter!(
        /// Loads + stores per instruction.
        mem_refs_per_instr
    );
    builder_setter!(
        /// L1D misses per kilo-instruction.
        l1_mpki
    );
    builder_setter!(
        /// Solo shared-cache misses per kilo-instruction.
        llc_mpki_solo
    );
    builder_setter!(
        /// Working-set size in MiB.
        working_set_mb
    );
    builder_setter!(
        /// Temporal locality in `[0, 1]`.
        locality
    );
    builder_setter!(
        /// Branch mispredictions per kilo-instruction.
        branch_mpki
    );
    builder_setter!(
        /// Instruction-fetch bus misses per kilo-instruction.
        ifetch_mpki
    );
    builder_setter!(
        /// Exploitable parallelism in vCPUs.
        parallelism
    );
    builder_setter!(
        /// Disk MiB read this epoch.
        disk_read_mb
    );
    builder_setter!(
        /// Disk MiB written this epoch.
        disk_write_mb
    );
    builder_setter!(
        /// Sequential fraction of disk accesses in `[0, 1]`.
        disk_seq_fraction
    );
    builder_setter!(
        /// Network MiB transmitted this epoch.
        net_tx_mb
    );
    builder_setter!(
        /// Network MiB received this epoch.
        net_rx_mb
    );

    /// Finalizes the demand.
    ///
    /// # Panics
    /// Panics if the assembled demand violates the well-formedness invariant
    /// (negative counts, out-of-range fractions, NaN).
    pub fn build(self) -> ResourceDemand {
        assert!(
            self.demand.is_well_formed(),
            "ResourceDemand built with invalid fields: {:?}",
            self.demand
        );
        self.demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_well_formed() {
        let d = ResourceDemand::builder().instructions(1.0e9).build();
        assert!(d.is_well_formed());
        assert_eq!(d.instructions, 1.0e9);
    }

    #[test]
    fn load_scaling_only_touches_volume_fields() {
        let d = ResourceDemand::builder()
            .instructions(1.0e9)
            .disk_read_mb(10.0)
            .net_tx_mb(5.0)
            .working_set_mb(64.0)
            .build();
        let half = d.scaled_by_load(0.5);
        assert_eq!(half.instructions, 0.5e9);
        assert_eq!(half.disk_read_mb, 5.0);
        assert_eq!(half.net_tx_mb, 2.5);
        // Behavioural (per-instruction) characteristics are untouched.
        assert_eq!(half.working_set_mb, 64.0);
        assert_eq!(half.l1_mpki, d.l1_mpki);
        assert_eq!(half.base_cpi, d.base_cpi);
    }

    #[test]
    fn load_scaling_clamps_negative_factor() {
        let d = ResourceDemand::builder().instructions(1.0e9).build();
        let z = d.scaled_by_load(-2.0);
        assert_eq!(z.instructions, 0.0);
    }

    #[test]
    fn totals_sum_read_write_and_tx_rx() {
        let d = ResourceDemand::builder()
            .disk_read_mb(3.0)
            .disk_write_mb(4.0)
            .net_tx_mb(1.0)
            .net_rx_mb(2.0)
            .build();
        assert_eq!(d.disk_total_mb(), 7.0);
        assert_eq!(d.net_total_mb(), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid fields")]
    fn builder_rejects_out_of_range_locality() {
        ResourceDemand::builder().locality(1.5).build();
    }

    #[test]
    fn well_formedness_rejects_nan() {
        let d = ResourceDemand {
            instructions: f64::NAN,
            ..ResourceDemand::default()
        };
        assert!(!d.is_well_formed());
    }
}
