//! Reusable, allocation-free epoch resolver.
//!
//! [`resolve_epoch`](crate::contention::resolve_epoch) is the hottest function
//! in the whole simulation: every epoch of every machine in every bench kernel
//! funnels through it, and the original implementation re-allocated roughly a
//! dozen intermediate vectors per call (per-group membership lists, demand
//! reference slices, miss vectors, per-device outcome vectors, the result
//! itself) and re-derived cache-group membership with one filtering pass per
//! group.
//!
//! [`EpochResolver`] is the batch-friendly replacement: a stateful object
//! built once per [`MachineSpec`] that owns every scratch buffer the pipeline
//! needs and exposes [`EpochResolver::resolve_into`], which writes outcomes
//! into a caller-provided vector.  After the first call on a machine the
//! resolver performs **zero heap allocations per epoch**, and cache-group
//! membership is derived in a single pass over the placements instead of one
//! pass per group.  The arithmetic is performed in exactly the same order as
//! the original allocating path, so outcomes are bit-identical to the old
//! pipeline (with the net-stall clamp fix that landed alongside the refactor
//! applied to both) — a property pinned by the `resolver_equivalence`
//! proptest suite.
//!
//! Call sites that resolve many epochs (the `cloudsim` physical machine, the
//! sandbox replayer, synthetic-benchmark training, the figure benches) hold a
//! resolver and reuse it; one-shot callers keep using the thin
//! [`resolve_epoch`](crate::contention::resolve_epoch) wrappers, which
//! delegate to a thread-local resolver.

use crate::cache::{resolve_cache_group_members_into, CacheScratch};
use crate::contention::{EpochOutcome, PlacedDemand, StallBreakdown};
use crate::core::core_cycles;
use crate::counters::CounterSnapshot;
use crate::disk::{resolve_disk_into, DiskOutcome};
use crate::machine::MachineSpec;
use crate::membus::resolve_bus;
use crate::nic::{resolve_nic_into, NicOutcome};
use crate::{CACHE_LINE_BYTES, EPOCH_SECONDS};

/// Fraction of memory references that are loads (vs. stores); used only to
/// derive the `mem_load` counter from the memory-reference rate.
const LOAD_FRACTION: f64 = 0.7;

/// A reusable epoch-resolution pipeline for one machine model.
///
/// Owns all the scratch state resolving an epoch needs, so that repeated
/// calls — the steady state of every simulated machine — allocate nothing.
///
/// # Example
///
/// ```
/// use hwsim::{EpochResolver, MachineSpec, ResourceDemand};
/// use hwsim::contention::PlacedDemand;
///
/// let mut resolver = EpochResolver::new(MachineSpec::xeon_x5472());
/// let demand = ResourceDemand::builder().instructions(1.0e9).build();
/// let mut outcomes = Vec::new();
/// for epoch in 0..3 {
///     let placements = [PlacedDemand::new(epoch, demand.clone(), 2, 0)];
///     resolver.resolve_into(&placements, 1.0, &mut outcomes);
///     assert_eq!(outcomes.len(), 1);
/// }
/// ```
#[derive(Debug)]
pub struct EpochResolver {
    spec: MachineSpec,
    /// Per-cache-group membership lists (indices into the placement slice).
    group_members: Vec<Vec<usize>>,
    effective_mpki: Vec<f64>,
    llc_misses: Vec<f64>,
    ifetch_misses: Vec<f64>,
    cache_scratch: CacheScratch,
    disk_out: Vec<DiskOutcome>,
    nic_out: Vec<NicOutcome>,
}

impl EpochResolver {
    /// Builds a resolver for one machine model.
    ///
    /// # Panics
    /// Panics if the spec is malformed.
    pub fn new(spec: MachineSpec) -> Self {
        assert!(
            spec.is_well_formed(),
            "malformed machine spec: {:?}",
            spec.name
        );
        let groups = spec.cache_groups();
        Self {
            spec,
            group_members: (0..groups).map(|_| Vec::new()).collect(),
            effective_mpki: Vec::new(),
            llc_misses: Vec::new(),
            ifetch_misses: Vec::new(),
            cache_scratch: CacheScratch::new(),
            disk_out: Vec::new(),
            nic_out: Vec::new(),
        }
    }

    /// The machine model this resolver was built for.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Convenience wrapper around [`EpochResolver::resolve_into`] using the
    /// default epoch duration and a fresh output vector.
    pub fn resolve(&mut self, placements: &[PlacedDemand]) -> Vec<EpochOutcome> {
        let mut out = Vec::with_capacity(placements.len());
        self.resolve_into(placements, EPOCH_SECONDS, &mut out);
        out
    }

    /// Resolves one epoch of execution for every VM placed on the machine,
    /// writing one [`EpochOutcome`] per placement into `out` (cleared first,
    /// index-aligned with `placements`).
    ///
    /// # Panics
    /// Panics if any demand is malformed, a placement names a cache group the
    /// machine does not have, a placement has zero vCPUs, or the epoch
    /// duration is not positive.
    pub fn resolve_into(
        &mut self,
        placements: &[PlacedDemand],
        epoch_seconds: f64,
        out: &mut Vec<EpochOutcome>,
    ) {
        let spec = &self.spec;
        assert!(epoch_seconds > 0.0, "epoch must have positive duration");
        for p in placements {
            assert!(
                p.demand.is_well_formed(),
                "malformed demand for VM {}: {:?}",
                p.vm_id,
                p.demand
            );
            assert!(
                p.cache_group < spec.cache_groups(),
                "VM {} placed on cache group {} but machine has {}",
                p.vm_id,
                p.cache_group,
                spec.cache_groups()
            );
            assert!(p.vcpus > 0, "VM {} placed with zero vCPUs", p.vm_id);
        }
        out.clear();
        if placements.is_empty() {
            return;
        }

        // --- Shared cache: resolve each cache group independently. ----------
        // One pass over the placements derives every group's membership.
        for members in self.group_members.iter_mut() {
            members.clear();
        }
        for (i, p) in placements.iter().enumerate() {
            self.group_members[p.cache_group].push(i);
        }
        self.effective_mpki.clear();
        self.effective_mpki.resize(placements.len(), 0.0);
        for members in self.group_members.iter() {
            if members.is_empty() {
                continue;
            }
            resolve_cache_group_members_into(
                spec.shared_cache_mb,
                placements,
                members,
                &mut self.cache_scratch,
            );
            for (slot, outcome) in members.iter().zip(&self.cache_scratch.outcomes) {
                self.effective_mpki[*slot] = outcome.effective_mpki;
            }
        }

        // --- Memory interconnect: machine-wide shared channel. --------------
        self.llc_misses.clear();
        self.llc_misses.extend(
            placements
                .iter()
                .zip(&self.effective_mpki)
                .map(|(p, &mpki)| mpki / 1_000.0 * p.demand.instructions),
        );
        self.ifetch_misses.clear();
        self.ifetch_misses.extend(
            placements
                .iter()
                .map(|p| p.demand.ifetch_mpki / 1_000.0 * p.demand.instructions),
        );
        let bus_traffic_mb: f64 = self
            .llc_misses
            .iter()
            .zip(&self.ifetch_misses)
            .map(|(&d, &i)| (d + i) * CACHE_LINE_BYTES / (1024.0 * 1024.0))
            .sum();
        let bus = resolve_bus(spec.memory_bandwidth_mbps, bus_traffic_mb, epoch_seconds);

        // --- Disk and NIC: machine-wide shared devices. ----------------------
        resolve_disk_into(
            spec.disk_seq_mbps,
            spec.disk_rand_mbps,
            placements,
            epoch_seconds,
            &mut self.disk_out,
        );
        resolve_nic_into(spec.nic_mbps, placements, epoch_seconds, &mut self.nic_out);
        let disk = &self.disk_out;
        let nic = &self.nic_out;

        // --- Per-VM assembly. ------------------------------------------------
        out.extend(placements.iter().enumerate().map(|(i, p)| {
            let d = &p.demand;
            let core = core_cycles(d.instructions, d.base_cpi, d.branch_mpki);

            let llc_accesses = d.l1_mpki / 1_000.0 * d.instructions;
            let llc_miss = self.llc_misses[i];
            let llc_hit = (llc_accesses - llc_miss).max(0.0);

            // Off-core stall cycles: shared-cache hits at the LLC latency,
            // misses at the memory latency, and the interconnect queueing
            // surcharge on top of every miss.
            let llc_hit_cycles = llc_hit * spec.shared_cache_hit_cycles;
            let llc_miss_cycles = llc_miss * spec.memory_latency_cycles;
            let bus_queue_cycles = llc_miss * spec.memory_latency_cycles * bus.queueing_overhead();

            let parallelism = d.parallelism.max(1.0).min(p.vcpus as f64);
            let to_seconds = |cycles: f64| cycles / (spec.clock_hz * parallelism);

            let breakdown = StallBreakdown {
                core_seconds: to_seconds(core.total()),
                llc_miss_seconds: to_seconds(llc_hit_cycles + llc_miss_cycles),
                bus_queue_seconds: to_seconds(bus_queue_cycles),
                disk_seconds: disk[i].stall_seconds,
                net_seconds: nic[i].stall_seconds,
            };

            let needed = breakdown.total();
            let achieved_fraction = if needed <= 0.0 {
                1.0
            } else {
                (epoch_seconds / needed).min(1.0)
            };

            // Scale all event counts by the fraction of the demanded work
            // that actually completed within the epoch.  The I/O stall
            // counters are additionally clamped by the fraction of the I/O
            // the device completed: a saturated disk or NIC cannot have been
            // waited on for traffic that never got through.
            let f = achieved_fraction;
            let inst_retired = d.instructions * f;
            let cpu_cycles =
                (core.total() + llc_hit_cycles + llc_miss_cycles + bus_queue_cycles) * f;
            let counters = CounterSnapshot {
                cpu_unhalted: cpu_cycles,
                inst_retired,
                l1d_repl: llc_accesses * f,
                l2_ifetch: d.ifetch_mpki / 1_000.0 * d.instructions * f,
                l2_lines_in: llc_miss * f,
                mem_load: d.mem_refs_per_instr * inst_retired * LOAD_FRACTION,
                resource_stalls: (llc_hit_cycles + llc_miss_cycles + bus_queue_cycles) * f,
                bus_tran_any: (llc_miss + self.ifetch_misses[i]) * f,
                bus_trans_ifetch: self.ifetch_misses[i] * f,
                bus_tran_brd: llc_miss * f,
                bus_req_out: llc_miss * spec.memory_latency_cycles * bus.latency_multiplier * f,
                br_miss_pred: d.branch_mpki / 1_000.0 * inst_retired,
                disk_stall_seconds: disk[i].stall_seconds
                    * f.min(disk[i].completed_fraction).clamp(0.0, 1.0),
                net_stall_seconds: nic[i].stall_seconds
                    * f.min(nic[i].completed_fraction).clamp(0.0, 1.0),
            };
            debug_assert!(
                counters.is_well_formed(),
                "produced malformed counters: {counters:?}"
            );

            EpochOutcome {
                vm_id: p.vm_id,
                counters,
                achieved_fraction,
                demanded_instructions: d.instructions,
                breakdown,
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::resolve_epoch_with_duration;
    use crate::demand::ResourceDemand;

    fn demand(instr: f64, ws: f64) -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(instr)
            .working_set_mb(ws)
            .l1_mpki(30.0)
            .llc_mpki_solo(4.0)
            .disk_read_mb(10.0)
            .net_tx_mb(20.0)
            .parallelism(2.0)
            .build()
    }

    #[test]
    fn reused_resolver_matches_the_wrapper() {
        let spec = MachineSpec::xeon_x5472();
        let mut resolver = EpochResolver::new(spec.clone());
        let mut out = Vec::new();
        let first = [
            PlacedDemand::new(1, demand(2.0e9, 8.0), 2, 0),
            PlacedDemand::new(2, demand(3.0e9, 256.0), 2, 1),
        ];
        let second = [PlacedDemand::new(9, demand(1.0e9, 64.0), 4, 3)];
        // Interleave two different placements through the same resolver and
        // check each against the one-shot path: reuse must not leak state.
        for _ in 0..3 {
            resolver.resolve_into(&first, 1.0, &mut out);
            assert_eq!(out, resolve_epoch_with_duration(&spec, &first, 1.0));
            resolver.resolve_into(&second, 0.5, &mut out);
            assert_eq!(out, resolve_epoch_with_duration(&spec, &second, 0.5));
        }
    }

    #[test]
    fn empty_placements_clear_the_output() {
        let mut resolver = EpochResolver::new(MachineSpec::xeon_x5472());
        let mut out = vec![];
        resolver.resolve_into(
            &[PlacedDemand::new(1, demand(1.0e9, 4.0), 2, 0)],
            1.0,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        resolver.resolve_into(&[], 1.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "malformed machine spec")]
    fn malformed_spec_is_rejected_at_construction() {
        let mut spec = MachineSpec::xeon_x5472();
        spec.cores_per_cache_group = 3;
        EpochResolver::new(spec);
    }
}
