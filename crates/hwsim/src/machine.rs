//! Physical-machine specifications.
//!
//! The paper evaluates DeepDive on two server generations:
//!
//! * the main testbed — Intel Xeon X5472: eight 3-GHz cores, 12 MiB of L2
//!   shared across each *pair* of cores, a front-side bus to memory, 8 GiB of
//!   DRAM, two 7200-rpm disks and a 1-Gb NIC (§5.1), and
//! * the portability case study (§4.4, Fig. 7) — a NUMA server with two
//!   quad-core Core i7-based Xeon E5640 processors at 2.67 GHz, per-core
//!   1-MiB L2, a 12-MiB shared L3 per socket and QuickPath instead of the FSB.
//!
//! [`MachineSpec`] captures the parameters the contention model needs; the
//! two constructors reproduce these machines so the benches can re-run the
//! paper's experiments on both.

use serde::{Deserialize, Serialize};

/// Kind of processor interconnect to memory; affects naming in the CPI stack
/// (FSB on the Xeon X5472, QPI on the Core i7 port) but not the model shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryInterconnect {
    /// Shared front-side bus (older Xeon generation used in the main testbed).
    FrontSideBus,
    /// Point-to-point QuickPath interconnect with integrated memory controllers.
    QuickPath,
}

impl MemoryInterconnect {
    /// Label used when printing CPI-stack breakdowns.
    pub fn label(&self) -> &'static str {
        match self {
            MemoryInterconnect::FrontSideBus => "FSB",
            MemoryInterconnect::QuickPath => "QPI",
        }
    }
}

/// Static description of a physical machine model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable model name.
    pub name: String,
    /// Core clock frequency in Hz.
    pub clock_hz: f64,
    /// Total number of physical cores.
    pub cores: usize,
    /// Number of cores sharing one last-level-cache group.
    pub cores_per_cache_group: usize,
    /// Capacity of each shared last-level cache group, in MiB.
    pub shared_cache_mb: f64,
    /// Average latency of a shared-cache hit, in core cycles.
    pub shared_cache_hit_cycles: f64,
    /// Average latency of a memory access (shared-cache miss) with an idle
    /// interconnect, in core cycles.
    pub memory_latency_cycles: f64,
    /// Sustainable interconnect (FSB or QPI) bandwidth, in MiB/s.
    pub memory_bandwidth_mbps: f64,
    /// Interconnect type (affects labels only).
    pub interconnect: MemoryInterconnect,
    /// DRAM capacity in MiB (used for admission checks, not contention).
    pub dram_mb: f64,
    /// Sequential disk bandwidth in MiB/s.
    pub disk_seq_mbps: f64,
    /// Random-access disk bandwidth in MiB/s (seek-bound).
    pub disk_rand_mbps: f64,
    /// NIC line rate in MiB/s.
    pub nic_mbps: f64,
}

impl MachineSpec {
    /// The paper's main testbed server: Intel Xeon X5472 (§5.1).
    ///
    /// Eight 3-GHz cores, 12 MiB of L2 shared per core pair, FSB-attached
    /// memory, 8 GiB DRAM, 7200-rpm disks and a 1-Gb NIC.
    pub fn xeon_x5472() -> Self {
        Self {
            name: "Intel Xeon X5472".to_string(),
            clock_hz: 3.0e9,
            cores: 8,
            cores_per_cache_group: 2,
            shared_cache_mb: 12.0,
            shared_cache_hit_cycles: 15.0,
            memory_latency_cycles: 300.0,
            memory_bandwidth_mbps: 6_000.0,
            interconnect: MemoryInterconnect::FrontSideBus,
            dram_mb: 8_192.0,
            disk_seq_mbps: 100.0,
            disk_rand_mbps: 2.0,
            nic_mbps: 125.0,
        }
    }

    /// The portability case study server: dual quad-core Core i7-based Xeon
    /// E5640 with a 12-MiB L3 per socket and QuickPath (§4.4, Fig. 7).
    pub fn core_i7_nehalem() -> Self {
        Self {
            name: "Intel Xeon E5640 (Core i7/Nehalem)".to_string(),
            clock_hz: 2.67e9,
            cores: 8,
            cores_per_cache_group: 4,
            shared_cache_mb: 12.0,
            shared_cache_hit_cycles: 40.0,
            memory_latency_cycles: 200.0,
            memory_bandwidth_mbps: 20_000.0,
            interconnect: MemoryInterconnect::QuickPath,
            dram_mb: 24_576.0,
            disk_seq_mbps: 120.0,
            disk_rand_mbps: 2.5,
            nic_mbps: 125.0,
        }
    }

    /// Number of shared-cache groups on the machine.
    pub fn cache_groups(&self) -> usize {
        self.cores / self.cores_per_cache_group
    }

    /// Total cycles one core can execute in an epoch of `seconds`.
    pub fn cycles_per_epoch(&self, seconds: f64) -> f64 {
        self.clock_hz * seconds
    }

    /// True when the spec is internally consistent (non-zero capacities,
    /// cores divisible into cache groups).
    pub fn is_well_formed(&self) -> bool {
        self.clock_hz > 0.0
            && self.cores > 0
            && self.cores_per_cache_group > 0
            && self.cores.is_multiple_of(self.cores_per_cache_group)
            && self.shared_cache_mb > 0.0
            && self.memory_bandwidth_mbps > 0.0
            && self.memory_latency_cycles > 0.0
            && self.disk_seq_mbps > 0.0
            && self.disk_rand_mbps > 0.0
            && self.nic_mbps > 0.0
            && self.dram_mb > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_spec_matches_paper_section_5_1() {
        let spec = MachineSpec::xeon_x5472();
        assert!(spec.is_well_formed());
        assert_eq!(spec.cores, 8);
        assert_eq!(spec.cores_per_cache_group, 2);
        assert_eq!(spec.cache_groups(), 4);
        assert!((spec.clock_hz - 3.0e9).abs() < 1.0);
        assert_eq!(spec.shared_cache_mb, 12.0);
        assert_eq!(spec.interconnect, MemoryInterconnect::FrontSideBus);
        // 1-Gb NIC = 125 MiB/s line rate.
        assert_eq!(spec.nic_mbps, 125.0);
    }

    #[test]
    fn i7_spec_matches_paper_section_4_4() {
        let spec = MachineSpec::core_i7_nehalem();
        assert!(spec.is_well_formed());
        assert_eq!(spec.cores, 8);
        assert_eq!(spec.cache_groups(), 2);
        assert_eq!(spec.interconnect, MemoryInterconnect::QuickPath);
        // QPI offers far more bandwidth than the old FSB — the property the
        // portability experiment relies on.
        assert!(spec.memory_bandwidth_mbps > MachineSpec::xeon_x5472().memory_bandwidth_mbps);
    }

    #[test]
    fn cycles_per_epoch_scales_with_duration() {
        let spec = MachineSpec::xeon_x5472();
        assert_eq!(spec.cycles_per_epoch(2.0), 2.0 * spec.clock_hz);
    }

    #[test]
    fn malformed_spec_is_rejected() {
        let mut spec = MachineSpec::xeon_x5472();
        spec.cores_per_cache_group = 3; // 8 % 3 != 0
        assert!(!spec.is_well_formed());
        let mut spec2 = MachineSpec::xeon_x5472();
        spec2.nic_mbps = 0.0;
        assert!(!spec2.is_well_formed());
    }

    #[test]
    fn interconnect_labels() {
        assert_eq!(MemoryInterconnect::FrontSideBus.label(), "FSB");
        assert_eq!(MemoryInterconnect::QuickPath.label(), "QPI");
    }
}
