#![forbid(unsafe_code)]
//! # hwsim — hardware substrate for the DeepDive reproduction
//!
//! DeepDive (Novakovic et al., USENIX ATC 2013) reads nothing but *low-level
//! metrics*: hardware performance counters plus `iostat`/`netstat`-style I/O
//! stall approximations (Table 1 of the paper).  The original system obtained
//! those metrics from Xen running on Intel Xeon X5472 servers.  This crate is
//! the substitute for that hardware: a discrete-epoch simulator of a physical
//! machine (PM) with cores, private caches, a shared last-level cache, a
//! front-side bus (or QuickPath interconnect), a disk and a network interface.
//!
//! The simulator's job is to turn the *resource demands* of the virtual
//! machines placed on a PM into
//!
//! 1. the amount of work each VM actually completes in the epoch (which the
//!    evaluation harness uses as client-visible ground truth), and
//! 2. a [`counters::CounterSnapshot`] per VM — the only thing the `deepdive`
//!    crate is allowed to look at.
//!
//! Interference is therefore *emergent*: when the combined working sets of
//! co-located VMs exceed the shared cache, or their combined bandwidth demand
//! exceeds the memory bus / disk / NIC capacity, stall cycles grow and
//! retired instructions drop — exactly the signal structure DeepDive's
//! warning system and CPI-stack analyzer rely on.
//!
//! ## Module map
//!
//! * [`counters`] — the Table 1 counter set and snapshot arithmetic.
//! * [`demand`] — [`demand::ResourceDemand`], the per-epoch demand vector a
//!   workload model hands to the machine.
//! * [`machine`] — [`machine::MachineSpec`] (Xeon X5472 and Core i7 models)
//!   and cache-group topology.
//! * [`cache`] — shared-cache occupancy and miss-rate inflation model.
//! * [`membus`] — FSB/QPI bandwidth and queueing-delay model.
//! * [`disk`] — disk model with seek inflation under sharing.
//! * [`nic`] — NIC fair-share bandwidth model.
//! * [`core`] — in-core execution model (base CPI, branch misses).
//! * [`contention`] — epoch-resolution types ([`contention::PlacedDemand`],
//!   [`contention::EpochOutcome`]) and the one-shot `resolve_epoch` wrappers.
//! * [`resolver`] — [`resolver::EpochResolver`], the reusable allocation-free
//!   pipeline behind those wrappers; hot call sites hold one per machine and
//!   call `resolve_into` every epoch.
//!
//! ## Example
//!
//! ```
//! use hwsim::machine::MachineSpec;
//! use hwsim::demand::ResourceDemand;
//! use hwsim::contention::{resolve_epoch, PlacedDemand};
//!
//! let spec = MachineSpec::xeon_x5472();
//! // A cache-friendly VM alone on the machine...
//! let friendly = ResourceDemand::builder()
//!     .instructions(2.0e9)
//!     .working_set_mb(4.0)
//!     .build();
//! let alone = resolve_epoch(&spec, &[PlacedDemand::new(0, friendly.clone(), 2, 0)]);
//! // ...and the same VM next to a cache-thrashing aggressor.
//! let aggressor = ResourceDemand::builder()
//!     .instructions(2.0e9)
//!     .working_set_mb(512.0)
//!     .llc_mpki_solo(30.0)
//!     .build();
//! let together = resolve_epoch(
//!     &spec,
//!     &[
//!         PlacedDemand::new(0, friendly, 2, 0),
//!         PlacedDemand::new(1, aggressor, 2, 0),
//!     ],
//! );
//! assert!(together[0].counters.inst_retired <= alone[0].counters.inst_retired);
//! ```

pub mod cache;
pub mod contention;
pub mod core;
pub mod counters;
pub mod demand;
pub mod disk;
pub mod machine;
pub mod membus;
pub mod nic;
pub mod resolver;

pub use contention::{resolve_epoch, EpochOutcome, PlacedDemand};
pub use counters::CounterSnapshot;
pub use demand::{AsDemand, ResourceDemand};
pub use machine::MachineSpec;
pub use resolver::EpochResolver;

/// Duration of one simulation epoch, in seconds.
///
/// DeepDive collects counters over short monitoring epochs; the paper's
/// prototype samples at a one-second granularity, which we adopt throughout.
pub const EPOCH_SECONDS: f64 = 1.0;

/// Cache line size in bytes, used to convert miss counts into bus traffic.
pub const CACHE_LINE_BYTES: f64 = 64.0;
