//! The low-level metric set DeepDive observes (Table 1 of the paper).
//!
//! The paper lists a dozen hardware performance counters covering the core,
//! the cache hierarchy and the front-side bus, and approximates disk and
//! network stalls from `iostat` / `netstat` (idle CPU cycles while an I/O
//! request or a packet is outstanding).  [`CounterSnapshot`] carries exactly
//! this set for one VM over one monitoring epoch.
//!
//! Snapshots support the arithmetic DeepDive needs: differencing consecutive
//! samples, accumulating over longer windows, and *normalizing by the number
//! of instructions retired* — the trick (§4.1) that makes metric values
//! insensitive to load intensity so that the warning system can distinguish
//! workload changes from interference.

use serde::{Deserialize, Serialize};

/// Identifier for each low-level metric used by DeepDive (Table 1).
///
/// The `iostat`/`netstat` entries are not hardware counters but system-level
/// statistics; they are included here because DeepDive treats all of them
/// uniformly as dimensions of its metric space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Clock cycles when the core was not halted.
    CpuUnhalted,
    /// Number of instructions retired.
    InstRetired,
    /// Cache lines allocated in the L1 data cache (L1D replacements).
    L1dRepl,
    /// L2-cacheable instruction fetches.
    L2Ifetch,
    /// Number of lines allocated in the L2 (last-level on the Xeon X5472).
    L2LinesIn,
    /// Retired loads.
    MemLoad,
    /// Cycles during which resource stalls occurred.
    ResourceStalls,
    /// Number of completed bus transactions (any type).
    BusTranAny,
    /// Number of instruction-fetch bus transactions.
    BusTransIfetch,
    /// Burst read bus transactions.
    BusTranBrd,
    /// Outstanding cacheable data-read bus request duration (cycles).
    BusReqOut,
    /// Number of mispredicted branches retired.
    BrMissPred,
    /// Idle CPU seconds while a disk I/O request was outstanding (`iostat`).
    DiskStallSeconds,
    /// Idle CPU seconds while a packet sat in the send/receive queue (`netstat`).
    NetStallSeconds,
}

impl Metric {
    /// All metrics, in a stable order used to build metric vectors.
    pub const ALL: [Metric; 14] = [
        Metric::CpuUnhalted,
        Metric::InstRetired,
        Metric::L1dRepl,
        Metric::L2Ifetch,
        Metric::L2LinesIn,
        Metric::MemLoad,
        Metric::ResourceStalls,
        Metric::BusTranAny,
        Metric::BusTransIfetch,
        Metric::BusTranBrd,
        Metric::BusReqOut,
        Metric::BrMissPred,
        Metric::DiskStallSeconds,
        Metric::NetStallSeconds,
    ];

    /// Human-readable counter name matching the paper's Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::CpuUnhalted => "cpu_unhalted",
            Metric::InstRetired => "inst_retired",
            Metric::L1dRepl => "l1d_repl",
            Metric::L2Ifetch => "l2_ifetch",
            Metric::L2LinesIn => "l2_lines_in",
            Metric::MemLoad => "mem_load",
            Metric::ResourceStalls => "resource_stalls",
            Metric::BusTranAny => "bus_tran_any",
            Metric::BusTransIfetch => "bus_trans_ifetch",
            Metric::BusTranBrd => "bus_tran_brd",
            Metric::BusReqOut => "bus_req_out",
            Metric::BrMissPred => "br_miss_pred",
            Metric::DiskStallSeconds => "iostat_t_disk",
            Metric::NetStallSeconds => "netstat_t_net",
        }
    }
}

/// The values of every Table 1 metric for one VM over one monitoring epoch.
///
/// All counter fields are event counts over the epoch (not rates); the two
/// I/O stall fields are in seconds of stalled (idle-but-waiting) CPU time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Clock cycles when the core was not halted.
    pub cpu_unhalted: f64,
    /// Instructions retired.
    pub inst_retired: f64,
    /// Cache lines allocated in the L1 data cache.
    pub l1d_repl: f64,
    /// L2-cacheable instruction fetches.
    pub l2_ifetch: f64,
    /// Lines allocated in the shared last-level cache.
    pub l2_lines_in: f64,
    /// Retired loads.
    pub mem_load: f64,
    /// Cycles during which resource stalls occurred.
    pub resource_stalls: f64,
    /// Completed bus transactions of any type.
    pub bus_tran_any: f64,
    /// Instruction-fetch bus transactions.
    pub bus_trans_ifetch: f64,
    /// Burst-read bus transactions.
    pub bus_tran_brd: f64,
    /// Outstanding cacheable data-read bus-request duration, in cycles.
    pub bus_req_out: f64,
    /// Mispredicted branches retired.
    pub br_miss_pred: f64,
    /// Idle CPU seconds with an outstanding disk request (`iostat` T_disk).
    pub disk_stall_seconds: f64,
    /// Idle CPU seconds with a queued packet (`netstat` T_net).
    pub net_stall_seconds: f64,
}

impl CounterSnapshot {
    /// Returns a snapshot with every field set to zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Looks up a single metric value by its [`Metric`] identifier.
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::CpuUnhalted => self.cpu_unhalted,
            Metric::InstRetired => self.inst_retired,
            Metric::L1dRepl => self.l1d_repl,
            Metric::L2Ifetch => self.l2_ifetch,
            Metric::L2LinesIn => self.l2_lines_in,
            Metric::MemLoad => self.mem_load,
            Metric::ResourceStalls => self.resource_stalls,
            Metric::BusTranAny => self.bus_tran_any,
            Metric::BusTransIfetch => self.bus_trans_ifetch,
            Metric::BusTranBrd => self.bus_tran_brd,
            Metric::BusReqOut => self.bus_req_out,
            Metric::BrMissPred => self.br_miss_pred,
            Metric::DiskStallSeconds => self.disk_stall_seconds,
            Metric::NetStallSeconds => self.net_stall_seconds,
        }
    }

    /// Sets a single metric value by its [`Metric`] identifier.
    pub fn set(&mut self, metric: Metric, value: f64) {
        match metric {
            Metric::CpuUnhalted => self.cpu_unhalted = value,
            Metric::InstRetired => self.inst_retired = value,
            Metric::L1dRepl => self.l1d_repl = value,
            Metric::L2Ifetch => self.l2_ifetch = value,
            Metric::L2LinesIn => self.l2_lines_in = value,
            Metric::MemLoad => self.mem_load = value,
            Metric::ResourceStalls => self.resource_stalls = value,
            Metric::BusTranAny => self.bus_tran_any = value,
            Metric::BusTransIfetch => self.bus_trans_ifetch = value,
            Metric::BusTranBrd => self.bus_tran_brd = value,
            Metric::BusReqOut => self.bus_req_out = value,
            Metric::BrMissPred => self.br_miss_pred = value,
            Metric::DiskStallSeconds => self.disk_stall_seconds = value,
            Metric::NetStallSeconds => self.net_stall_seconds = value,
        }
    }

    /// Returns the snapshot as a vector in the canonical [`Metric::ALL`] order.
    pub fn to_vec(&self) -> Vec<f64> {
        Metric::ALL.iter().map(|m| self.get(*m)).collect()
    }

    /// Builds a snapshot from a vector in the canonical [`Metric::ALL`] order.
    ///
    /// # Panics
    /// Panics if `values` does not have exactly [`Metric::ALL`] entries.
    pub fn from_vec(values: &[f64]) -> Self {
        assert_eq!(
            values.len(),
            Metric::ALL.len(),
            "counter vector must have {} entries",
            Metric::ALL.len()
        );
        let mut snap = Self::zero();
        for (metric, value) in Metric::ALL.iter().zip(values) {
            snap.set(*metric, *value);
        }
        snap
    }

    /// Element-wise sum of two snapshots (accumulating over epochs).
    pub fn add(&self, other: &Self) -> Self {
        let mut out = Self::zero();
        for metric in Metric::ALL {
            out.set(metric, self.get(metric) + other.get(metric));
        }
        out
    }

    /// Element-wise difference (`self - other`), used to turn two cumulative
    /// counter reads into a per-epoch delta.
    pub fn delta(&self, other: &Self) -> Self {
        let mut out = Self::zero();
        for metric in Metric::ALL {
            out.set(metric, self.get(metric) - other.get(metric));
        }
        out
    }

    /// Scales every field by `factor`.
    pub fn scale(&self, factor: f64) -> Self {
        let mut out = Self::zero();
        for metric in Metric::ALL {
            out.set(metric, self.get(metric) * factor);
        }
        out
    }

    /// Cycles per instruction observed in this epoch.
    ///
    /// Returns `0.0` when no instruction retired (an idle epoch), so callers
    /// never divide by zero.
    pub fn cpi(&self) -> f64 {
        if self.inst_retired <= 0.0 {
            0.0
        } else {
            self.cpu_unhalted / self.inst_retired
        }
    }

    /// Normalizes every counter by the number of instructions retired,
    /// yielding *per-kilo-instruction* values (and stall seconds per billion
    /// instructions for the two I/O metrics).
    ///
    /// This is the normalization of §4.1: it makes the metric vector
    /// insensitive to the load intensity, so that a workload running at 30%
    /// and 90% load maps to (nearly) the same point in the metric space while
    /// genuine interference moves the point.
    pub fn normalized_per_kilo_instruction(&self) -> CounterSnapshot {
        if self.inst_retired <= 0.0 {
            return CounterSnapshot::zero();
        }
        let per_ki = 1_000.0 / self.inst_retired;
        let mut out = CounterSnapshot::zero();
        for metric in Metric::ALL {
            let value = match metric {
                // Instructions normalize to a constant; keep the raw count so
                // the consumer can still recover absolute scale if needed.
                Metric::InstRetired => self.inst_retired,
                // I/O stall *seconds* are normalized per billion instructions
                // so they land in a comparable numeric range.
                Metric::DiskStallSeconds | Metric::NetStallSeconds => {
                    self.get(metric) * 1.0e9 / self.inst_retired
                }
                _ => self.get(metric) * per_ki,
            };
            out.set(metric, value);
        }
        out
    }

    /// True when every field is finite and non-negative — the well-formedness
    /// invariant every producer in this workspace maintains.
    pub fn is_well_formed(&self) -> bool {
        Metric::ALL
            .iter()
            .all(|m| self.get(*m).is_finite() && self.get(*m) >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterSnapshot {
        CounterSnapshot {
            cpu_unhalted: 3.0e9,
            inst_retired: 2.0e9,
            l1d_repl: 4.0e7,
            l2_ifetch: 1.0e6,
            l2_lines_in: 8.0e6,
            mem_load: 6.0e8,
            resource_stalls: 9.0e8,
            bus_tran_any: 9.0e6,
            bus_trans_ifetch: 5.0e5,
            bus_tran_brd: 7.0e6,
            bus_req_out: 2.0e8,
            br_miss_pred: 1.2e7,
            disk_stall_seconds: 0.05,
            net_stall_seconds: 0.01,
        }
    }

    #[test]
    fn metric_all_covers_every_field_exactly_once() {
        // Round-tripping through to_vec/from_vec must be lossless, which only
        // holds when ALL enumerates every field exactly once.
        let snap = sample();
        let round = CounterSnapshot::from_vec(&snap.to_vec());
        assert_eq!(snap, round);
        assert_eq!(Metric::ALL.len(), 14);
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len());
    }

    #[test]
    fn delta_and_add_are_inverse() {
        let a = sample();
        let b = sample().scale(2.5);
        let d = b.delta(&a);
        let b_again = a.add(&d);
        for m in Metric::ALL {
            assert!((b.get(m) - b_again.get(m)).abs() < 1e-9 * b.get(m).abs().max(1.0));
        }
    }

    #[test]
    fn cpi_is_ratio_of_cycles_to_instructions() {
        let snap = sample();
        assert!((snap.cpi() - 1.5).abs() < 1e-12);
        assert_eq!(CounterSnapshot::zero().cpi(), 0.0);
    }

    #[test]
    fn normalization_is_load_invariant() {
        // Doubling the work done in an epoch must not move the normalized
        // metric vector (other than the raw instruction count itself).
        let one = sample();
        let two = sample().scale(2.0);
        let n1 = one.normalized_per_kilo_instruction();
        let n2 = two.normalized_per_kilo_instruction();
        for m in Metric::ALL {
            if m == Metric::InstRetired {
                continue;
            }
            assert!(
                (n1.get(m) - n2.get(m)).abs() < 1e-9 * n1.get(m).abs().max(1e-12),
                "metric {:?} not load-invariant: {} vs {}",
                m,
                n1.get(m),
                n2.get(m)
            );
        }
    }

    #[test]
    fn normalization_of_idle_epoch_is_zero() {
        let idle = CounterSnapshot::zero();
        assert_eq!(
            idle.normalized_per_kilo_instruction(),
            CounterSnapshot::zero()
        );
    }

    #[test]
    fn well_formedness_rejects_nan_and_negative() {
        let mut bad = sample();
        assert!(bad.is_well_formed());
        bad.mem_load = f64::NAN;
        assert!(!bad.is_well_formed());
        let mut neg = sample();
        neg.bus_tran_any = -1.0;
        assert!(!neg.is_well_formed());
    }

    #[test]
    #[should_panic(expected = "counter vector must have")]
    fn from_vec_rejects_wrong_length() {
        CounterSnapshot::from_vec(&[1.0, 2.0]);
    }
}
