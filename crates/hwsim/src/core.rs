//! In-core execution model.
//!
//! The "core" component of the paper's augmented CPI stack (§4.2) is the time
//! a VM spends actually executing instructions and hitting in its private
//! caches — everything that is *not* a shared-resource stall.  We model it as
//! a base CPI plus a branch-misprediction penalty; private L1 misses that hit
//! in the shared cache are charged to the off-core component by the
//! contention resolver, matching the paper's definition of `T_core`.

/// Cycles lost per mispredicted branch (pipeline refill on Core-2-era parts).
pub const BRANCH_MISS_PENALTY_CYCLES: f64 = 15.0;

/// Cycle cost of executing a given number of instructions in-core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreCost {
    /// Cycles spent on useful execution at the base CPI.
    pub execution_cycles: f64,
    /// Cycles lost to branch mispredictions.
    pub branch_stall_cycles: f64,
}

impl CoreCost {
    /// Total in-core cycles.
    pub fn total(&self) -> f64 {
        self.execution_cycles + self.branch_stall_cycles
    }
}

/// Computes the in-core cycle cost of retiring `instructions` with the given
/// base CPI and branch misprediction rate (mispredictions per kilo-instruction).
pub fn core_cycles(instructions: f64, base_cpi: f64, branch_mpki: f64) -> CoreCost {
    let instructions = instructions.max(0.0);
    let execution_cycles = instructions * base_cpi.max(0.0);
    let branch_stall_cycles =
        instructions * branch_mpki.max(0.0) / 1_000.0 * BRANCH_MISS_PENALTY_CYCLES;
    CoreCost {
        execution_cycles,
        branch_stall_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_instructions_cost_nothing() {
        let c = core_cycles(0.0, 1.0, 10.0);
        assert_eq!(c.total(), 0.0);
    }

    #[test]
    fn execution_cycles_scale_with_cpi() {
        let a = core_cycles(1.0e9, 0.5, 0.0);
        let b = core_cycles(1.0e9, 1.0, 0.0);
        assert!((b.execution_cycles - 2.0 * a.execution_cycles).abs() < 1e-3);
    }

    #[test]
    fn branch_penalty_is_additive() {
        let no_miss = core_cycles(1.0e9, 0.8, 0.0);
        let misses = core_cycles(1.0e9, 0.8, 10.0);
        let expected_extra = 1.0e9 * 10.0 / 1_000.0 * BRANCH_MISS_PENALTY_CYCLES;
        assert!((misses.total() - no_miss.total() - expected_extra).abs() < 1.0);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let c = core_cycles(-5.0, -1.0, -2.0);
        assert_eq!(c.total(), 0.0);
    }
}
