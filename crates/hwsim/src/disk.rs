//! Shared-disk contention model.
//!
//! The paper's second canonical example (§1): "two VMs, each with sequential
//! disk I/O when running in isolation, may produce a random access pattern on
//! a shared disk when running together."  This module captures exactly that:
//! a VM's effective disk bandwidth depends on how sequential its accesses
//! remain once they are interleaved with other VMs' streams, and the disk's
//! time is shared among the contenders.
//!
//! The output per VM is a service time (how long its I/O needs), a stall time
//! (how long the VM sits idle waiting for the disk, the `iostat` T_disk of
//! Table 1) and the fraction of its requested bytes that completed.

use crate::demand::AsDemand;

/// Per-VM outcome of resolving the shared disk for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskOutcome {
    /// Seconds of disk service the VM's traffic requires under contention.
    pub service_seconds: f64,
    /// Seconds the VM spends stalled waiting on disk this epoch (capped at
    /// the epoch length).
    pub stall_seconds: f64,
    /// Fraction of the requested bytes the disk completed this epoch.
    pub completed_fraction: f64,
}

/// Resolves disk contention across every VM on a physical machine.
///
/// * `seq_mbps` / `rand_mbps` — the disk's sequential and random bandwidth.
/// * `demands` — one entry per VM (VMs without disk traffic get a zero outcome).
/// * `epoch_seconds` — epoch length.
pub fn resolve_disk<D: AsDemand>(
    seq_mbps: f64,
    rand_mbps: f64,
    demands: &[D],
    epoch_seconds: f64,
) -> Vec<DiskOutcome> {
    let mut out = Vec::with_capacity(demands.len());
    resolve_disk_into(seq_mbps, rand_mbps, demands, epoch_seconds, &mut out);
    out
}

/// Allocation-free core of [`resolve_disk`]: leaves one [`DiskOutcome`] per
/// demand in `out` (cleared first), reusing its capacity across epochs.
pub fn resolve_disk_into<D: AsDemand>(
    seq_mbps: f64,
    rand_mbps: f64,
    demands: &[D],
    epoch_seconds: f64,
    out: &mut Vec<DiskOutcome>,
) {
    assert!(
        seq_mbps > 0.0 && rand_mbps > 0.0,
        "disk bandwidths must be positive"
    );
    assert!(epoch_seconds > 0.0, "epoch must have positive duration");
    out.clear();

    let active: usize = demands
        .iter()
        .filter(|d| d.as_demand().disk_total_mb() > 0.0)
        .count();

    // Effective per-VM service time: interleaving with other active streams
    // destroys sequentiality.  With k active streams a VM retains roughly
    // 1/k of its original sequential runs.  The first pass stores the raw
    // service time in the outcome slot; the second finalizes it.
    out.extend(demands.iter().map(|d| {
        let d = d.as_demand();
        let bytes = d.disk_total_mb();
        let service_seconds = if bytes <= 0.0 {
            0.0
        } else {
            let seq_retained = if active <= 1 {
                d.disk_seq_fraction
            } else {
                d.disk_seq_fraction / active as f64
            };
            let bandwidth = seq_retained * seq_mbps + (1.0 - seq_retained) * rand_mbps;
            bytes / bandwidth.max(f64::MIN_POSITIVE)
        };
        DiskOutcome {
            service_seconds,
            stall_seconds: 0.0,
            completed_fraction: 1.0,
        }
    }));

    let total_service: f64 = out.iter().map(|o| o.service_seconds).sum();
    let utilization = total_service / epoch_seconds;
    let completed_fraction = if utilization <= 1.0 {
        1.0
    } else {
        1.0 / utilization
    };

    for o in out.iter_mut() {
        let s = o.service_seconds;
        if s <= 0.0 {
            *o = DiskOutcome {
                service_seconds: 0.0,
                stall_seconds: 0.0,
                completed_fraction: 1.0,
            };
            continue;
        }
        // The VM waits for its own transfers plus, on average, half of
        // the service demanded by every other VM queued ahead of it.
        let others = total_service - s;
        let wait = (s + 0.5 * others) * completed_fraction;
        *o = DiskOutcome {
            service_seconds: s * completed_fraction,
            stall_seconds: wait.min(epoch_seconds),
            completed_fraction,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::ResourceDemand;

    fn io_vm(read_mb: f64, seq: f64) -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(1.0e8)
            .disk_read_mb(read_mb)
            .disk_seq_fraction(seq)
            .build()
    }

    fn cpu_vm() -> ResourceDemand {
        ResourceDemand::builder().instructions(1.0e9).build()
    }

    #[test]
    fn vm_without_io_has_zero_stall() {
        let a = cpu_vm();
        let b = io_vm(50.0, 1.0);
        let out = resolve_disk(100.0, 2.0, &[&a, &b], 1.0);
        assert_eq!(out[0].stall_seconds, 0.0);
        assert_eq!(out[0].completed_fraction, 1.0);
        assert!(out[1].stall_seconds > 0.0);
    }

    #[test]
    fn solo_sequential_io_runs_at_sequential_bandwidth() {
        let a = io_vm(50.0, 1.0);
        let out = resolve_disk(100.0, 2.0, &[&a], 1.0);
        assert!((out[0].service_seconds - 0.5).abs() < 1e-9);
        assert_eq!(out[0].completed_fraction, 1.0);
    }

    #[test]
    fn sharing_breaks_sequentiality_and_inflates_stalls() {
        let a = io_vm(30.0, 1.0);
        let b = io_vm(30.0, 1.0);
        let solo = resolve_disk(100.0, 2.0, &[&a], 1.0);
        let shared = resolve_disk(100.0, 2.0, &[&a, &b], 1.0);
        // Together, each stream loses sequentiality and the same bytes take
        // far longer — the paper's §1 disk example.
        assert!(shared[0].stall_seconds > solo[0].stall_seconds);
        assert!(shared[0].completed_fraction < 1.0);
    }

    #[test]
    fn stall_never_exceeds_epoch() {
        let a = io_vm(10_000.0, 0.0);
        let b = io_vm(10_000.0, 0.0);
        let out = resolve_disk(100.0, 2.0, &[&a, &b], 1.0);
        for o in out {
            assert!(o.stall_seconds <= 1.0 + 1e-12);
            assert!(o.completed_fraction <= 1.0);
            assert!(o.completed_fraction > 0.0);
        }
    }

    #[test]
    fn random_io_is_slower_than_sequential() {
        let seq = io_vm(10.0, 1.0);
        let rnd = io_vm(10.0, 0.0);
        let s = resolve_disk(100.0, 2.0, &[&seq], 1.0);
        let r = resolve_disk(100.0, 2.0, &[&rnd], 1.0);
        assert!(r[0].service_seconds > s[0].service_seconds);
    }

    #[test]
    fn completed_fraction_is_shared_fairly() {
        let a = io_vm(200.0, 1.0);
        let b = io_vm(200.0, 1.0);
        let out = resolve_disk(100.0, 2.0, &[&a, &b], 1.0);
        assert!((out[0].completed_fraction - out[1].completed_fraction).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "disk bandwidths must be positive")]
    fn zero_bandwidth_rejected() {
        let a = io_vm(1.0, 1.0);
        resolve_disk(0.0, 2.0, &[&a], 1.0);
    }
}
