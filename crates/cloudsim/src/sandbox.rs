//! The sandboxed environment.
//!
//! "DeepDive clones the VM under test in a sandboxed environment that uses
//! non-work-conserving schedulers to tightly control the resource allocation"
//! (§4.2).  The clone, fed the duplicated request stream by the proxy, then
//! produces the *isolation* counters the analyzer compares against
//! production.
//!
//! Here a sandbox is a small pool of dedicated physical machines (the paper
//! shows a handful suffice, §5.5).  Running an analysis occupies one machine
//! for as long as the replayed window lasts; the pool size therefore bounds
//! how many concurrent analyses can run, which is exactly the quantity the
//! queueing experiments of Figs. 12–14 study.

use hwsim::contention::PlacedDemand;
use hwsim::{CounterSnapshot, EpochResolver, MachineSpec, ResourceDemand, EPOCH_SECONDS};

use crate::vm::VmId;

/// Result of replaying one VM's recorded demand stream in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationRun {
    /// The VM whose behaviour was reproduced.
    pub vm_id: VmId,
    /// Per-epoch counters observed in isolation (same order as the replayed
    /// demands).
    pub counters: Vec<CounterSnapshot>,
    /// Per-epoch achieved fractions in isolation.
    pub achieved_fractions: Vec<f64>,
    /// Wall-clock seconds of sandbox time the analysis consumed (cloning
    /// overhead plus one second per replayed epoch).
    pub profiling_seconds: f64,
}

impl IsolationRun {
    /// Sum of instructions retired across the replayed window.
    pub fn total_instructions(&self) -> f64 {
        self.counters.iter().map(|c| c.inst_retired).sum()
    }

    /// Element-wise average of the per-epoch counters.
    pub fn mean_counters(&self) -> CounterSnapshot {
        if self.counters.is_empty() {
            return CounterSnapshot::zero();
        }
        let sum = self
            .counters
            .iter()
            .fold(CounterSnapshot::zero(), |acc, c| acc.add(c));
        sum.scale(1.0 / self.counters.len() as f64)
    }
}

/// A pool of dedicated profiling machines.
///
/// The pool is homogeneous: isolation counters are only directly comparable
/// to production counters when the clone runs on the *same hardware model*
/// as the production host (the paper's testbed is uniform, §5.1).  On a
/// [`crate::Cluster::heterogeneous`] fleet, analyses of VMs hosted on a
/// model different from `spec` carry a systematic bias — e.g. a VM on a
/// Core i7 node replayed in a Xeon sandbox compares across clock rates and
/// memory systems.  Spec-aware sandbox pools (one per machine model in the
/// fleet) are the ROADMAP follow-up; until then, keep analyzed tenants on
/// machines matching the sandbox spec.
#[derive(Debug, Clone)]
pub struct Sandbox {
    /// Hardware model of the profiling machines (same as production, so that
    /// isolation counters are directly comparable).
    pub spec: MachineSpec,
    /// Number of machines in the pool.
    pub machines: usize,
    /// Fixed overhead per analysis for cloning the VM and warming it up, in
    /// seconds (the paper notes cloning time is "typically small compared to
    /// the frequency of invocation").
    pub clone_overhead_seconds: f64,
}

impl Sandbox {
    /// Creates a sandbox pool.
    ///
    /// # Panics
    /// Panics if the pool is empty or the overhead is negative.
    pub fn new(spec: MachineSpec, machines: usize, clone_overhead_seconds: f64) -> Self {
        assert!(machines > 0, "sandbox needs at least one machine");
        assert!(
            clone_overhead_seconds >= 0.0,
            "clone overhead cannot be negative"
        );
        assert!(spec.is_well_formed(), "malformed sandbox machine spec");
        Self {
            spec,
            machines,
            clone_overhead_seconds,
        }
    }

    /// Convenience constructor matching the paper's testbed: Xeon machines
    /// and a 30-second cloning overhead.
    pub fn xeon_pool(machines: usize) -> Self {
        Self::new(MachineSpec::xeon_x5472(), machines, 30.0)
    }

    /// Replays a recorded demand stream for `vm_id` on an idle sandbox
    /// machine and returns the isolation counters.
    ///
    /// The clone runs exactly the duplicated workload, alone, with the
    /// non-work-conserving scheduler — i.e. nothing else contends with it.
    pub fn run_in_isolation(
        &self,
        vm_id: VmId,
        demands: &[ResourceDemand],
        vcpus: usize,
    ) -> IsolationRun {
        assert!(vcpus > 0, "clone needs at least one vCPU");
        let mut counters = Vec::with_capacity(demands.len());
        let mut fractions = Vec::with_capacity(demands.len());
        // One resolver serves the whole replayed window: the clone runs solo,
        // so every epoch reuses the same scratch buffers.
        let mut resolver = EpochResolver::new(self.spec.clone());
        let mut outcomes = Vec::with_capacity(1);
        for demand in demands {
            resolver.resolve_into(
                &[PlacedDemand::new(vm_id.0, demand.clone(), vcpus, 0)],
                EPOCH_SECONDS,
                &mut outcomes,
            );
            let o = &outcomes[0];
            counters.push(o.counters);
            fractions.push(o.achieved_fraction);
        }
        IsolationRun {
            vm_id,
            counters,
            achieved_fractions: fractions,
            profiling_seconds: self.clone_overhead_seconds + demands.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::contention::resolve_epoch;
    use hwsim::ResourceDemand;

    fn demand() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e9)
            .working_set_mb(8.0)
            .l1_mpki(25.0)
            .llc_mpki_solo(1.0)
            .parallelism(2.0)
            .build()
    }

    #[test]
    fn isolation_run_replays_every_epoch() {
        let sandbox = Sandbox::xeon_pool(4);
        let demands = vec![demand(); 5];
        let run = sandbox.run_in_isolation(VmId(3), &demands, 2);
        assert_eq!(run.vm_id, VmId(3));
        assert_eq!(run.counters.len(), 5);
        assert_eq!(run.achieved_fractions.len(), 5);
        assert!(run.achieved_fractions.iter().all(|f| *f > 0.9));
        assert!((run.profiling_seconds - 35.0).abs() < 1e-9);
    }

    #[test]
    fn isolation_counters_reflect_uncontended_execution() {
        // The same demand resolved alongside an aggressor in "production"
        // must retire fewer instructions than the sandbox replay.
        let sandbox = Sandbox::xeon_pool(1);
        let run = sandbox.run_in_isolation(VmId(1), &[demand()], 2);
        let aggressor = ResourceDemand::builder()
            .instructions(2.5e9)
            .working_set_mb(512.0)
            .l1_mpki(70.0)
            .llc_mpki_solo(40.0)
            .locality(0.0)
            .parallelism(2.0)
            .build();
        let production = resolve_epoch(
            &sandbox.spec,
            &[
                PlacedDemand::new(1, demand(), 2, 0),
                PlacedDemand::new(2, aggressor, 2, 0),
            ],
        );
        assert!(production[0].counters.inst_retired < run.counters[0].inst_retired);
    }

    #[test]
    fn mean_counters_average_the_window() {
        let sandbox = Sandbox::xeon_pool(1);
        let run = sandbox.run_in_isolation(VmId(1), &[demand(), demand()], 2);
        let mean = run.mean_counters();
        assert!((mean.inst_retired - run.counters[0].inst_retired).abs() < 1e-3);
        assert!(run.total_instructions() > mean.inst_retired);
    }

    #[test]
    fn empty_replay_yields_empty_run() {
        let sandbox = Sandbox::xeon_pool(1);
        let run = sandbox.run_in_isolation(VmId(1), &[], 2);
        assert!(run.counters.is_empty());
        assert_eq!(run.mean_counters(), CounterSnapshot::zero());
        assert_eq!(run.total_instructions(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_pool_rejected() {
        Sandbox::new(MachineSpec::xeon_x5472(), 0, 1.0);
    }
}
