//! The sandboxed environment.
//!
//! "DeepDive clones the VM under test in a sandboxed environment that uses
//! non-work-conserving schedulers to tightly control the resource allocation"
//! (§4.2).  The clone, fed the duplicated request stream by the proxy, then
//! produces the *isolation* counters the analyzer compares against
//! production.
//!
//! Here a [`Sandbox`] is a small pool of dedicated physical machines of one
//! hardware model (the paper shows a handful suffice, §5.5).  Running an
//! analysis occupies one machine for as long as the replayed window lasts;
//! the pool size therefore bounds how many concurrent analyses can run,
//! which is exactly the quantity the queueing experiments of Figs. 12–14
//! study.
//!
//! Isolation counters are only directly comparable to production counters
//! when the clone runs on the *same hardware model* as the production host.
//! The paper's testbed is uniform (§5.1), so a single pool suffices there;
//! a [`crate::Cluster::heterogeneous`] fleet instead needs one pool **per
//! machine model**, selected by the victim's host spec at analysis time.
//! That is what [`SandboxFleet`] provides; a fleet built with
//! [`SandboxFleet::uniform`] (or `From<Sandbox>`) degenerates to the paper's
//! single-pool setup and behaves identically to the bare [`Sandbox`].

use hwsim::contention::PlacedDemand;
use hwsim::{CounterSnapshot, EpochResolver, MachineSpec, ResourceDemand, EPOCH_SECONDS};

use crate::cluster::Cluster;
use crate::vm::VmId;

/// Result of replaying one VM's recorded demand stream in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationRun {
    /// The VM whose behaviour was reproduced.
    pub vm_id: VmId,
    /// Per-epoch counters observed in isolation (same order as the replayed
    /// demands).
    pub counters: Vec<CounterSnapshot>,
    /// Per-epoch achieved fractions in isolation.
    pub achieved_fractions: Vec<f64>,
    /// Wall-clock seconds of sandbox time the analysis consumed (cloning
    /// overhead plus one second per replayed epoch).
    pub profiling_seconds: f64,
}

impl IsolationRun {
    /// Sum of instructions retired across the replayed window.
    pub fn total_instructions(&self) -> f64 {
        self.counters.iter().map(|c| c.inst_retired).sum()
    }

    /// Element-wise average of the per-epoch counters.
    pub fn mean_counters(&self) -> CounterSnapshot {
        if self.counters.is_empty() {
            return CounterSnapshot::zero();
        }
        let sum = self
            .counters
            .iter()
            .fold(CounterSnapshot::zero(), |acc, c| acc.add(c));
        sum.scale(1.0 / self.counters.len() as f64)
    }
}

/// A pool of dedicated profiling machines of one hardware model.
///
/// The pool is homogeneous by construction: isolation counters are only
/// directly comparable to production counters when the clone runs on the
/// *same hardware model* as the production host (the paper's testbed is
/// uniform, §5.1).  On a [`crate::Cluster::heterogeneous`] fleet, analyses
/// of VMs hosted on a model different from `spec` carry a systematic bias —
/// e.g. a VM on a Core i7 node replayed in a Xeon sandbox compares across
/// clock rates and memory systems, and under-detects whenever the host is
/// the faster machine for the workload.  Mixed fleets should therefore hold
/// a [`SandboxFleet`] (one pool per machine model, selected by the victim's
/// host spec); a bare `Sandbox` remains the right type for uniform clusters
/// and for the queueing experiments that model a single profiling farm.
#[derive(Debug, Clone)]
pub struct Sandbox {
    /// Hardware model of the profiling machines (same as production, so that
    /// isolation counters are directly comparable).
    pub spec: MachineSpec,
    /// Number of machines in the pool.
    pub machines: usize,
    /// Fixed overhead per analysis for cloning the VM and warming it up, in
    /// seconds (the paper notes cloning time is "typically small compared to
    /// the frequency of invocation").
    pub clone_overhead_seconds: f64,
}

impl Sandbox {
    /// Creates a sandbox pool.
    ///
    /// # Panics
    /// Panics if the pool is empty or the overhead is negative.
    pub fn new(spec: MachineSpec, machines: usize, clone_overhead_seconds: f64) -> Self {
        assert!(machines > 0, "sandbox needs at least one machine");
        assert!(
            clone_overhead_seconds >= 0.0,
            "clone overhead cannot be negative"
        );
        assert!(spec.is_well_formed(), "malformed sandbox machine spec");
        Self {
            spec,
            machines,
            clone_overhead_seconds,
        }
    }

    /// Convenience constructor matching the paper's testbed: Xeon machines
    /// and a 30-second cloning overhead.
    pub fn xeon_pool(machines: usize) -> Self {
        Self::new(MachineSpec::xeon_x5472(), machines, 30.0)
    }

    /// Replays a recorded demand stream for `vm_id` on an idle sandbox
    /// machine and returns the isolation counters.
    ///
    /// The clone runs exactly the duplicated workload, alone, with the
    /// non-work-conserving scheduler — i.e. nothing else contends with it.
    pub fn run_in_isolation(
        &self,
        vm_id: VmId,
        demands: &[ResourceDemand],
        vcpus: usize,
    ) -> IsolationRun {
        assert!(vcpus > 0, "clone needs at least one vCPU");
        let mut counters = Vec::with_capacity(demands.len());
        let mut fractions = Vec::with_capacity(demands.len());
        // One resolver serves the whole replayed window: the clone runs solo,
        // so every epoch reuses the same scratch buffers.
        let mut resolver = EpochResolver::new(self.spec.clone());
        let mut outcomes = Vec::with_capacity(1);
        for demand in demands {
            resolver.resolve_into(
                &[PlacedDemand::new(vm_id.0, demand.clone(), vcpus, 0)],
                EPOCH_SECONDS,
                &mut outcomes,
            );
            let o = &outcomes[0];
            counters.push(o.counters);
            fractions.push(o.achieved_fraction);
        }
        IsolationRun {
            vm_id,
            counters,
            achieved_fractions: fractions,
            profiling_seconds: self.clone_overhead_seconds + demands.len() as f64,
        }
    }
}

/// A spec-aware set of sandbox pools for heterogeneous clusters: one
/// [`Sandbox`] per machine model present in the fleet.
///
/// The analyzer's degradation estimate divides production instruction rates
/// by isolation instruction rates, so the isolation replay must run on the
/// same machine model that hosted the victim.  A `SandboxFleet` makes that
/// routing explicit: [`SandboxFleet::pool_for`] returns the pool whose spec
/// matches the victim's host, and [`SandboxFleet::select`] adds the
/// fallback policy (first pool, flagged as unmatched) that reproduces the
/// old single-pool behaviour when no model matches.
///
/// A machine model's **identity is its [`MachineSpec::name`]** — pools are
/// deduplicated, routed and accounted by name, consistently with how
/// `deepdive` keys its per-model synthetic benchmarks.  Two specs sharing a
/// name are treated as one model (the first wins); give variants distinct
/// names if they must be told apart.
///
/// [`SandboxFleet::uniform`] — or the `From<Sandbox>` conversion — builds a
/// one-pool fleet for homogeneous clusters; `tests/sandbox_fleet.rs` pins
/// that this compat path makes decisions bit-identical to a fleet derived
/// from the cluster's specs on uniform fleets.
#[derive(Debug, Clone)]
pub struct SandboxFleet {
    /// The pools, in construction order; `select` falls back to the first.
    pools: Vec<Sandbox>,
}

impl SandboxFleet {
    /// Creates a fleet from explicit pools.
    ///
    /// # Panics
    /// Panics if the pool list is empty or two pools share a machine-model
    /// name (per-pool accounting and spec routing key on the model).
    pub fn new(pools: Vec<Sandbox>) -> Self {
        assert!(!pools.is_empty(), "a sandbox fleet needs at least one pool");
        for (i, pool) in pools.iter().enumerate() {
            assert!(
                pools[..i].iter().all(|p| p.spec.name != pool.spec.name),
                "duplicate sandbox pool for machine model {:?}",
                pool.spec.name
            );
        }
        Self { pools }
    }

    /// A single-pool fleet: the paper's homogeneous setup (§5.1), and the
    /// compatibility path for uniform clusters.
    pub fn uniform(pool: Sandbox) -> Self {
        Self::new(vec![pool])
    }

    /// One pool per distinct machine model in `specs`, in first-appearance
    /// order, each with `machines_per_pool` machines and the given cloning
    /// overhead.
    ///
    /// # Panics
    /// Panics if `specs` is empty (via [`SandboxFleet::new`]) or a pool is
    /// malformed (via [`Sandbox::new`]).
    pub fn for_specs<'a>(
        specs: impl IntoIterator<Item = &'a MachineSpec>,
        machines_per_pool: usize,
        clone_overhead_seconds: f64,
    ) -> Self {
        let mut pools: Vec<Sandbox> = Vec::new();
        for spec in specs {
            // Dedup by name — the same key `new` enforces and `pool_for`
            // routes on — so a name can never reach `new` twice.
            if pools.iter().all(|p| p.spec.name != spec.name) {
                pools.push(Sandbox::new(
                    spec.clone(),
                    machines_per_pool,
                    clone_overhead_seconds,
                ));
            }
        }
        Self::new(pools)
    }

    /// Derives the fleet a cluster actually needs: one pool per machine
    /// model present in it, so every analysis can replay on the victim's
    /// host model.  This is what [`SandboxFleet::for_specs`] exists for;
    /// `deepdive`'s `DeepDive::for_cluster` calls it with its defaults.
    pub fn for_cluster(
        cluster: &Cluster,
        machines_per_pool: usize,
        clone_overhead_seconds: f64,
    ) -> Self {
        Self::for_specs(
            cluster.machines().iter().map(|m| &m.spec),
            machines_per_pool,
            clone_overhead_seconds,
        )
    }

    /// The pools, in construction order.
    pub fn pools(&self) -> &[Sandbox] {
        &self.pools
    }

    /// True when the fleet holds a single pool (the homogeneous setup).
    pub fn is_uniform(&self) -> bool {
        self.pools.len() == 1
    }

    /// Total number of profiling machines across every pool (the capacity
    /// the Figs. 12–14 queueing picture divides work over).
    pub fn total_machines(&self) -> usize {
        self.pools.iter().map(|p| p.machines).sum()
    }

    /// The pool for the machine model named by `spec`, if any (models are
    /// identified by [`MachineSpec::name`]).
    pub fn pool_for(&self, spec: &MachineSpec) -> Option<&Sandbox> {
        self.pools.iter().find(|p| p.spec.name == spec.name)
    }

    /// Selects the pool for a victim hosted on `spec`, falling back to the
    /// first pool when no model matches.
    ///
    /// The boolean is `true` when the pool's model matches the host — i.e.
    /// the isolation counters are directly comparable to production.  A
    /// `false` means the caller is on the old cross-model path (a uniform
    /// fleet analyzing a foreign model) and the degradation estimate is
    /// biased; `deepdive` counts these as `sandbox_spec_fallbacks`.
    pub fn select(&self, spec: &MachineSpec) -> (&Sandbox, bool) {
        let (idx, matched) = self.select_index(spec);
        (&self.pools[idx], matched)
    }

    /// Index-returning form of [`SandboxFleet::select`], for callers that
    /// keep per-pool accounting in arrays parallel to [`SandboxFleet::pools`].
    pub fn select_index(&self, spec: &MachineSpec) -> (usize, bool) {
        match self.pools.iter().position(|p| p.spec.name == spec.name) {
            Some(idx) => (idx, true),
            None => (0, false),
        }
    }
}

impl From<Sandbox> for SandboxFleet {
    fn from(pool: Sandbox) -> Self {
        Self::uniform(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Scheduler;
    use hwsim::contention::resolve_epoch;
    use hwsim::ResourceDemand;

    fn demand() -> ResourceDemand {
        ResourceDemand::builder()
            .instructions(2.0e9)
            .working_set_mb(8.0)
            .l1_mpki(25.0)
            .llc_mpki_solo(1.0)
            .parallelism(2.0)
            .build()
    }

    #[test]
    fn isolation_run_replays_every_epoch() {
        let sandbox = Sandbox::xeon_pool(4);
        let demands = vec![demand(); 5];
        let run = sandbox.run_in_isolation(VmId(3), &demands, 2);
        assert_eq!(run.vm_id, VmId(3));
        assert_eq!(run.counters.len(), 5);
        assert_eq!(run.achieved_fractions.len(), 5);
        assert!(run.achieved_fractions.iter().all(|f| *f > 0.9));
        assert!((run.profiling_seconds - 35.0).abs() < 1e-9);
    }

    #[test]
    fn isolation_counters_reflect_uncontended_execution() {
        // The same demand resolved alongside an aggressor in "production"
        // must retire fewer instructions than the sandbox replay.
        let sandbox = Sandbox::xeon_pool(1);
        let run = sandbox.run_in_isolation(VmId(1), &[demand()], 2);
        let aggressor = ResourceDemand::builder()
            .instructions(2.5e9)
            .working_set_mb(512.0)
            .l1_mpki(70.0)
            .llc_mpki_solo(40.0)
            .locality(0.0)
            .parallelism(2.0)
            .build();
        let production = resolve_epoch(
            &sandbox.spec,
            &[
                PlacedDemand::new(1, demand(), 2, 0),
                PlacedDemand::new(2, aggressor, 2, 0),
            ],
        );
        assert!(production[0].counters.inst_retired < run.counters[0].inst_retired);
    }

    #[test]
    fn mean_counters_average_the_window() {
        let sandbox = Sandbox::xeon_pool(1);
        let run = sandbox.run_in_isolation(VmId(1), &[demand(), demand()], 2);
        let mean = run.mean_counters();
        assert!((mean.inst_retired - run.counters[0].inst_retired).abs() < 1e-3);
        assert!(run.total_instructions() > mean.inst_retired);
    }

    #[test]
    fn empty_replay_yields_empty_run() {
        let sandbox = Sandbox::xeon_pool(1);
        let run = sandbox.run_in_isolation(VmId(1), &[], 2);
        assert!(run.counters.is_empty());
        assert_eq!(run.mean_counters(), CounterSnapshot::zero());
        assert_eq!(run.total_instructions(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_pool_rejected() {
        Sandbox::new(MachineSpec::xeon_x5472(), 0, 1.0);
    }

    #[test]
    fn fleet_routes_each_spec_to_its_own_pool() {
        let fleet = SandboxFleet::for_specs(
            [
                &MachineSpec::xeon_x5472(),
                &MachineSpec::core_i7_nehalem(),
                // Repeats collapse into the existing pool.
                &MachineSpec::xeon_x5472(),
            ],
            3,
            30.0,
        );
        assert_eq!(fleet.pools().len(), 2);
        assert!(!fleet.is_uniform());
        assert_eq!(fleet.total_machines(), 6);
        let (xeon, matched) = fleet.select(&MachineSpec::xeon_x5472());
        assert!(matched);
        assert_eq!(xeon.spec, MachineSpec::xeon_x5472());
        let (i7, matched) = fleet.select(&MachineSpec::core_i7_nehalem());
        assert!(matched);
        assert_eq!(i7.spec, MachineSpec::core_i7_nehalem());
    }

    #[test]
    fn uniform_fleet_falls_back_to_its_only_pool_for_foreign_models() {
        let fleet = SandboxFleet::from(Sandbox::xeon_pool(2));
        assert!(fleet.is_uniform());
        assert!(fleet.pool_for(&MachineSpec::core_i7_nehalem()).is_none());
        let (pool, matched) = fleet.select(&MachineSpec::core_i7_nehalem());
        assert!(!matched, "cross-model selection must be flagged");
        assert_eq!(pool.spec, MachineSpec::xeon_x5472());
    }

    #[test]
    fn fleet_for_cluster_covers_every_model_present() {
        let cluster = Cluster::heterogeneous(
            &[
                (MachineSpec::xeon_x5472(), 2),
                (MachineSpec::core_i7_nehalem(), 1),
            ],
            Scheduler::default(),
        );
        let fleet = SandboxFleet::for_cluster(&cluster, 4, 30.0);
        assert_eq!(fleet.pools().len(), 2);
        for machine in cluster.machines() {
            let (pool, matched) = fleet.select(&machine.spec);
            assert!(matched, "no pool for {}", machine.spec.name);
            assert_eq!(pool.spec, machine.spec);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate sandbox pool")]
    fn duplicate_pool_models_rejected() {
        SandboxFleet::new(vec![Sandbox::xeon_pool(1), Sandbox::xeon_pool(2)]);
    }

    #[test]
    fn model_identity_is_the_spec_name() {
        // Two spec values sharing a name are one model: `for_specs` must
        // collapse them into a single pool (first wins) instead of pushing
        // two same-named pools into the duplicate assert, and routing must
        // accept the variant.
        let stock = MachineSpec::xeon_x5472();
        let mut overclocked = MachineSpec::xeon_x5472();
        overclocked.clock_hz *= 1.1;
        let fleet = SandboxFleet::for_specs([&stock, &overclocked], 2, 30.0);
        assert!(fleet.is_uniform());
        assert_eq!(fleet.pools()[0].spec, stock);
        let (pool, matched) = fleet.select(&overclocked);
        assert!(matched, "same-named variant must route to its name's pool");
        assert_eq!(pool.spec.name, stock.name);
    }

    #[test]
    #[should_panic(expected = "at least one pool")]
    fn empty_fleet_rejected() {
        SandboxFleet::new(Vec::new());
    }
}
