//! Physical machines: hosting VMs and stepping simulation epochs.
//!
//! A [`PhysicalMachine`] owns the VMs placed on it.  Each call to
//! [`PhysicalMachine::step_epoch`] asks every hosted VM's workload for its
//! intrinsic demand at the offered load, hands all demands to the hwsim
//! contention resolver, and packages the result into one
//! [`VmEpochReport`] per VM: the Table 1 counters DeepDive reads, plus the
//! client-observed performance and ground-truth stall breakdown the
//! evaluation uses for scoring.
//!
//! ## Quiescence
//!
//! The sparse engine path ([`crate::engine::EpochEngine`] with sparse
//! stepping enabled, the default) asks each machine to *reuse* its last
//! resolved reports when nothing that could change them has changed: same
//! VM membership (tracked by a generation counter bumped on every add and
//! remove), same scheduler, same spec, same per-VM loads, and every hosted
//! workload declaring its demand a pure function of its configuration at
//! that load ([`workloads::Workload::demand_is_static_at`]).  Under those
//! conditions a fresh resolve would reproduce the cached reports bit for
//! bit (the per-`(vm, epoch)` RNG draws are consumed and discarded, and a
//! static demand ignores them by contract), so the machine clones the cache,
//! patches the epoch index, and skips demand generation and contention
//! resolution entirely.  [`PhysicalMachine::resolves`] /
//! [`PhysicalMachine::quiescent_steps`] count both outcomes.

use std::collections::HashMap;

use hwsim::contention::{EpochOutcome, PlacedDemand, StallBreakdown};
use hwsim::{CounterSnapshot, EpochResolver, MachineSpec, ResourceDemand, EPOCH_SECONDS};
use workloads::{AppId, ClientObservation};

use crate::rngs::ClusterSeed;
use crate::scheduler::Scheduler;
use crate::vm::{Vm, VmId};

/// Unique identifier of a physical machine within the simulated datacenter.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct PmId(pub u64);

impl std::fmt::Display for PmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pm-{}", self.0)
    }
}

/// Everything observed about one VM during one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct VmEpochReport {
    /// The VM.
    pub vm_id: VmId,
    /// The machine that hosted it this epoch.
    pub pm_id: PmId,
    /// The application the VM runs (for DeepDive's global-information check).
    pub app: AppId,
    /// Epoch index at which the report was taken.
    pub epoch: u64,
    /// The offered load the VM received this epoch (0..=1 of its peak).
    pub offered_load: f64,
    /// The Table 1 counters — the only field the `deepdive` crate reads.
    pub counters: CounterSnapshot,
    /// The intrinsic demand the workload generated (recorded by the proxy so
    /// the analyzer can replay it in the sandbox).
    pub demand: ResourceDemand,
    /// Fraction of the demanded work that completed (evaluation ground truth).
    pub achieved_fraction: f64,
    /// Client-visible performance (evaluation ground truth).
    pub observation: ClientObservation,
    /// Ground-truth stall breakdown (evaluation ground truth).
    pub breakdown: StallBreakdown,
}

/// Cached result of the machine's last fully-static resolve, reused
/// verbatim (with the epoch index patched) while the machine stays
/// quiescent.  Only populated when **every** hosted workload declared its
/// demand static at the load it was resolved with — the precondition under
/// which replaying the cache is bit-identical to resolving again.
struct QuiescentCache {
    /// Membership generation the cache was filled at; any add/remove bumps
    /// the machine's generation and thereby invalidates the cache.
    generation: u64,
    /// Scheduler in force at fill time (a policy change moves cache groups).
    scheduler: Scheduler,
    /// Per-VM loads (placement order) the reports were resolved with.
    loads: Vec<f64>,
    /// The reports of that resolve; `epoch` is patched on reuse.
    reports: Vec<VmEpochReport>,
}

impl QuiescentCache {
    /// True when the cache still describes the machine: same membership
    /// generation, same scheduler, and the load closure produced exactly
    /// the loads the cached reports were resolved with.  (Spec agreement
    /// is checked separately by the caller — the spec is a public field,
    /// so only `resolver.spec() == spec` proves the cache used it.)
    fn is_current(&self, generation: u64, scheduler: Scheduler, loads: &[f64]) -> bool {
        self.generation == generation && self.scheduler == scheduler && self.loads == loads
    }
}

/// A physical machine hosting zero or more VMs.
pub struct PhysicalMachine {
    /// Machine identity.
    pub id: PmId,
    /// Hardware model.
    pub spec: MachineSpec,
    /// Placement/admission policy in force on this machine.
    pub scheduler: Scheduler,
    vms: Vec<Vm>,
    /// VM id → index in `vms`, so migration/departure churn — which the
    /// datacenter service mode drives at far higher rates than the fixed
    /// fleets did — stays O(1) per removal instead of a scan.
    vm_index: HashMap<VmId, usize>,
    /// Bumped on every membership change; the quiescent cache stores the
    /// generation it was filled at.
    generation: u64,
    /// Reusable epoch-resolution pipeline for this machine's spec: scratch
    /// buffers survive across `step_epoch` calls so the hot path performs no
    /// per-epoch allocation beyond the returned reports.
    resolver: EpochResolver,
    loads: Vec<f64>,
    demands: Vec<ResourceDemand>,
    placements: Vec<PlacedDemand>,
    outcomes: Vec<EpochOutcome>,
    cache: Option<QuiescentCache>,
    resolves: u64,
    quiescent_steps: u64,
}

impl PhysicalMachine {
    /// Creates an empty machine.
    pub fn new(id: PmId, spec: MachineSpec, scheduler: Scheduler) -> Self {
        assert!(spec.is_well_formed(), "malformed machine spec");
        let resolver = EpochResolver::new(spec.clone());
        Self {
            id,
            spec,
            scheduler,
            vms: Vec::new(),
            vm_index: HashMap::new(),
            generation: 0,
            resolver,
            loads: Vec::new(),
            demands: Vec::new(),
            placements: Vec::new(),
            outcomes: Vec::new(),
            cache: None,
            resolves: 0,
            quiescent_steps: 0,
        }
    }

    /// The VMs currently hosted, in placement order.
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Number of hosted VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// True when the machine hosts the given VM.
    pub fn hosts(&self, vm_id: VmId) -> bool {
        self.vm_index.contains_key(&vm_id)
    }

    /// Number of epochs this machine actually ran demand generation and
    /// contention resolution for (as opposed to serving the quiescent cache).
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// Number of epochs served from the quiescent cache without resolving.
    pub fn quiescent_steps(&self) -> u64 {
        self.quiescent_steps
    }

    /// Attempts to place a VM on this machine; returns the VM back if the
    /// scheduler rejects it (no capacity).
    ///
    /// Crate-private: VM membership must change through the cluster's
    /// methods ([`crate::cluster::Cluster::place_on`] and friends) so its
    /// O(1) VM-location index stays consistent with the machines.
    pub(crate) fn try_add_vm(&mut self, vm: Vm) -> Result<(), Vm> {
        if self.scheduler.admits(&self.spec, &self.vms, &vm) {
            self.vm_index.insert(vm.id, self.vms.len());
            self.vms.push(vm);
            self.generation = self.generation.wrapping_add(1);
            Ok(())
        } else {
            Err(vm)
        }
    }

    /// Removes and returns a VM (for migration or departure); `None` if it
    /// is not here.  Crate-private for the same reason as
    /// [`PhysicalMachine::try_add_vm`].
    ///
    /// O(1): the id→index map locates the slot and `swap_remove` backfills
    /// it with the last VM (whose index entry is updated).  The swap means a
    /// removal can change the *slot* — and therefore the cache group via
    /// [`Scheduler::cache_group_for_slot`] — of the VM that backfills the
    /// hole.  That is still fully deterministic (a pure function of the
    /// operation sequence, identical across execution modes and thread
    /// counts), which is the property every equivalence proof in this crate
    /// rests on; no caller depends on removal preserving the relative order
    /// of the surviving VMs.  The old order-preserving linear scan was fine
    /// for fixed fleets but the service mode's continuous arrive/depart/
    /// migrate churn puts this on the per-event path.
    pub(crate) fn remove_vm(&mut self, vm_id: VmId) -> Option<Vm> {
        let idx = self.vm_index.remove(&vm_id)?;
        let vm = self.vms.swap_remove(idx);
        if let Some(swapped) = self.vms.get(idx) {
            self.vm_index.insert(swapped.id, idx);
        }
        self.generation = self.generation.wrapping_add(1);
        Some(vm)
    }

    /// Removes and returns every hosted VM at once (a crash being drained),
    /// in placement order.  One generation bump covers the whole drain, so
    /// the quiescent cache filled before the crash can never serve a repaired
    /// machine's first post-repair epoch.  Crate-private like the other
    /// membership mutators.
    pub(crate) fn drain_vms(&mut self) -> Vec<Vm> {
        self.vm_index.clear();
        self.generation = self.generation.wrapping_add(1);
        std::mem::take(&mut self.vms)
    }

    /// Unused core capacity.
    pub fn free_cores(&self) -> usize {
        let used: usize = self.vms.iter().map(|v| v.vcpus).sum();
        self.spec.cores.saturating_sub(used)
    }

    /// Advances the machine one epoch.
    ///
    /// `load_for` maps each VM id to its offered load for this epoch (the
    /// trace-driven client intensity).  Each VM draws its demand from its
    /// own `(vm, epoch)` stream derived from `seed`, so the reports are a
    /// pure function of `(seed, epoch, loads, placement)` — independent of
    /// how many other machines exist or the order they are stepped in, which
    /// is what lets [`crate::engine::EpochEngine`] step machines on
    /// concurrent shards.  Returns one report per hosted VM, in placement
    /// order.
    pub fn step_epoch<F>(
        &mut self,
        epoch: u64,
        load_for: &F,
        seed: ClusterSeed,
    ) -> Vec<VmEpochReport>
    where
        F: Fn(VmId) -> f64 + ?Sized,
    {
        let mut out = Vec::new();
        self.step_epoch_into(epoch, load_for, seed, false, &mut out);
        out
    }

    /// The stepping workhorse behind [`PhysicalMachine::step_epoch`] and the
    /// epoch engine: appends this machine's reports (placement order) to
    /// `out` and returns `true` when the epoch was actually resolved,
    /// `false` when it was served from the quiescent cache.
    ///
    /// With `use_cache` the machine may skip demand generation and
    /// contention resolution entirely when it is provably quiescent: same
    /// membership generation, scheduler and spec as the cached resolve, the
    /// load closure returning the cached per-VM loads, and every workload
    /// having declared its demand static at those loads
    /// ([`workloads::Workload::demand_is_static_at`]) when the cache was
    /// filled.  Replaying the cache is then bit-identical to resolving —
    /// static demands ignore their (discarded) per-epoch RNG streams by
    /// contract, the resolver is a pure function of demands, placements and
    /// spec, and the client observation is a pure function of load and
    /// achieved fraction — so only the report's `epoch` needs patching.
    pub(crate) fn step_epoch_into<F>(
        &mut self,
        epoch: u64,
        load_for: &F,
        seed: ClusterSeed,
        use_cache: bool,
        out: &mut Vec<VmEpochReport>,
    ) -> bool
    where
        F: Fn(VmId) -> f64 + ?Sized,
    {
        if self.vms.is_empty() {
            return false;
        }
        // 1. Evaluate the load closure (always — quiescence is defined over
        // its output, so it can never be skipped).
        self.loads.clear();
        for vm in self.vms.iter() {
            self.loads.push(load_for(vm.id).clamp(0.0, 1.0));
        }
        if use_cache {
            if let Some(cache) = &self.cache {
                // `resolver.spec()` tracks the spec the cache was resolved
                // under: a spec swap leaves the resolver stale until the
                // next dense resolve (which also drops the cache), so
                // equality here proves the cached reports used this spec.
                if cache.is_current(self.generation, self.scheduler, &self.loads)
                    && self.resolver.spec() == &self.spec
                {
                    self.quiescent_steps += 1;
                    let start = out.len();
                    out.extend_from_slice(&cache.reports);
                    for report in &mut out[start..] {
                        report.epoch = epoch;
                    }
                    return false;
                }
            }
        }
        self.resolve_current_loads(epoch, seed);

        // 4. Package per-VM reports.
        let start = out.len();
        out.extend(
            self.vms
                .iter()
                .zip(&self.demands)
                .zip(&self.loads)
                .zip(&self.outcomes)
                .map(|(((vm, demand), &load), outcome)| VmEpochReport {
                    vm_id: vm.id,
                    pm_id: self.id,
                    app: vm.app_id(),
                    epoch,
                    offered_load: load,
                    counters: outcome.counters,
                    demand: demand.clone(),
                    achieved_fraction: outcome.achieved_fraction,
                    observation: vm.client.observe(load, outcome.achieved_fraction),
                    breakdown: outcome.breakdown,
                }),
        );

        // 5. Seed the quiescent cache when every workload is static at the
        // load it was just resolved with — the only state from which a
        // later epoch may be skipped.  Active machines never reach here
        // with all-static loads, so they never pay the report clone.
        if use_cache && self.all_static() {
            let reports = &out[start..];
            match &mut self.cache {
                Some(cache) => {
                    cache.generation = self.generation;
                    cache.scheduler = self.scheduler;
                    cache.loads.clear();
                    cache.loads.extend_from_slice(&self.loads);
                    cache.reports.clear();
                    cache.reports.extend_from_slice(reports);
                }
                None => {
                    self.cache = Some(QuiescentCache {
                        generation: self.generation,
                        scheduler: self.scheduler,
                        loads: self.loads.clone(),
                        reports: reports.to_vec(),
                    });
                }
            }
        }
        true
    }

    /// Advances the machine `epochs` epochs with the offered loads held
    /// fixed at `load_for`'s output (evaluated once, at batch entry),
    /// without materializing reports.
    ///
    /// Bit-identical in *state* to `epochs` successive
    /// [`PhysicalMachine::step_epoch_into`] calls whose closure returns
    /// these same loads, with every report discarded: a machine whose
    /// demand can still change resolves every epoch (workload state,
    /// counters and RNG-consuming demands advance exactly as they would),
    /// while a machine whose workloads are all static at these loads
    /// resolves **at most once** — its reports are synthesized into the
    /// quiescent cache on that resolve, so a later report-returning step
    /// replays the same bytes the dense sweep would produce, and the
    /// remaining epochs of the batch cost nothing at all.  This is what
    /// makes bulk advancement O(active machines), not O(machines): the
    /// per-epoch loop never revisits a quiescent machine.
    pub(crate) fn advance_epochs<F>(
        &mut self,
        first_epoch: u64,
        epochs: u64,
        load_for: &F,
        seed: ClusterSeed,
        use_cache: bool,
    ) where
        F: Fn(VmId) -> f64 + ?Sized,
    {
        if self.vms.is_empty() || epochs == 0 {
            return;
        }
        self.loads.clear();
        for vm in self.vms.iter() {
            self.loads.push(load_for(vm.id).clamp(0.0, 1.0));
        }
        for offset in 0..epochs {
            if use_cache
                && self
                    .cache
                    .as_ref()
                    .is_some_and(|c| c.is_current(self.generation, self.scheduler, &self.loads))
                && self.resolver.spec() == &self.spec
            {
                // Loads are fixed for the rest of the batch by contract, so
                // one hit covers every remaining epoch.
                self.quiescent_steps += epochs - offset;
                return;
            }
            let epoch = first_epoch + offset;
            self.resolve_current_loads(epoch, seed);
            if use_cache && self.all_static() {
                self.fill_cache_from_outcomes(epoch);
            }
        }
    }

    /// Steps 2–3 of the epoch pipeline: per-(vm, epoch) demand generation
    /// and whole-machine contention resolution over `self.loads` (which the
    /// caller has already filled), bumping the resolve counter.
    fn resolve_current_loads(&mut self, epoch: u64, seed: ClusterSeed) {
        // 2. Collect intrinsic demands from every workload, each from its
        // own per-(vm, epoch) stream.
        self.demands.clear();
        for (vm, &load) in self.vms.iter_mut().zip(&self.loads) {
            let mut rng = seed.vm_epoch_rng(vm.id, epoch);
            self.demands.push(vm.workload.next_demand(load, &mut rng));
        }
        // 3. Resolve hardware contention for the whole machine, reusing the
        // machine's resolver and placement/outcome buffers across epochs.
        // `spec` is a public field, so guard against it having been swapped
        // out from under the resolver since the last epoch (the quiescent
        // cache was resolved under the old spec, so it goes too).
        if self.resolver.spec() != &self.spec {
            self.resolver = EpochResolver::new(self.spec.clone());
            self.cache = None;
        }
        self.placements.clear();
        self.placements
            .extend(
                self.vms
                    .iter()
                    .enumerate()
                    .zip(&self.demands)
                    .map(|((slot, vm), demand)| {
                        PlacedDemand::new(
                            vm.id.0,
                            demand.clone(),
                            vm.vcpus,
                            self.scheduler.cache_group_for_slot(&self.spec, slot),
                        )
                    }),
            );
        self.resolver
            .resolve_into(&self.placements, EPOCH_SECONDS, &mut self.outcomes);
        self.resolves += 1;
    }

    /// True when every hosted workload declares its demand static at the
    /// load in `self.loads` — the precondition for filling the cache.
    fn all_static(&self) -> bool {
        self.vms
            .iter()
            .zip(&self.loads)
            .all(|(vm, &load)| vm.workload.demand_is_static_at(load))
    }

    /// Builds this resolve's reports straight into the quiescent cache
    /// (used by the report-free [`PhysicalMachine::advance_epochs`] path,
    /// where there is no output vector to copy them from).  Every field is
    /// a pure function of the resolve, so the bytes match what step 4 of
    /// [`PhysicalMachine::step_epoch_into`] would have produced.
    fn fill_cache_from_outcomes(&mut self, epoch: u64) {
        let pm_id = self.id;
        let reports = self
            .vms
            .iter()
            .zip(&self.demands)
            .zip(&self.loads)
            .zip(&self.outcomes)
            .map(|(((vm, demand), &load), outcome)| VmEpochReport {
                vm_id: vm.id,
                pm_id,
                app: vm.app_id(),
                epoch,
                offered_load: load,
                counters: outcome.counters,
                demand: demand.clone(),
                achieved_fraction: outcome.achieved_fraction,
                observation: vm.client.observe(load, outcome.achieved_fraction),
                breakdown: outcome.breakdown,
            });
        match &mut self.cache {
            Some(cache) => {
                cache.generation = self.generation;
                cache.scheduler = self.scheduler;
                cache.loads.clear();
                cache.loads.extend_from_slice(&self.loads);
                cache.reports.clear();
                cache.reports.extend(reports);
            }
            None => {
                let reports = reports.collect();
                self.cache = Some(QuiescentCache {
                    generation: self.generation,
                    scheduler: self.scheduler,
                    loads: self.loads.clone(),
                    reports,
                });
            }
        }
    }
}

impl std::fmt::Debug for PhysicalMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalMachine")
            .field("id", &self.id)
            .field("spec", &self.spec.name)
            .field("vms", &self.vms.iter().map(|v| v.id).collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{ClientEmulator, DataServing, MemoryStress};

    fn seed() -> ClusterSeed {
        ClusterSeed::new(99)
    }

    fn serving_vm(id: u64) -> Vm {
        Vm::new(
            VmId(id),
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(8_000.0, 4.0),
        )
    }

    fn aggressor_vm(id: u64, ws_mb: f64) -> Vm {
        Vm::new(
            VmId(id),
            Box::new(MemoryStress::new(AppId(999), ws_mb)),
            ClientEmulator::new(1.0, 1.0),
        )
    }

    fn machine() -> PhysicalMachine {
        PhysicalMachine::new(PmId(0), MachineSpec::xeon_x5472(), Scheduler::default())
    }

    #[test]
    fn empty_machine_steps_to_empty_report() {
        let mut pm = machine();
        assert!(pm.step_epoch(0, &|_| 1.0, seed()).is_empty());
    }

    #[test]
    fn admission_and_removal_round_trip() {
        let mut pm = machine();
        for i in 0..4 {
            assert!(pm.try_add_vm(serving_vm(i)).is_ok());
        }
        // 8 cores consumed: a fifth 2-vCPU VM must be rejected.
        assert!(pm.try_add_vm(serving_vm(4)).is_err());
        assert_eq!(pm.vm_count(), 4);
        assert_eq!(pm.free_cores(), 0);
        let removed = pm.remove_vm(VmId(2)).expect("vm present");
        assert_eq!(removed.id, VmId(2));
        assert!(!pm.hosts(VmId(2)));
        assert!(pm.try_add_vm(serving_vm(4)).is_ok());
    }

    #[test]
    fn solo_vm_reports_healthy_performance() {
        let mut pm = machine();
        pm.try_add_vm(serving_vm(1)).unwrap();
        let reports = pm.step_epoch(0, &|_| 0.8, seed());
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.vm_id, VmId(1));
        assert_eq!(r.pm_id, PmId(0));
        assert!(r.achieved_fraction > 0.9);
        assert!(r.counters.is_well_formed());
        assert!(r.observation.latency_ms < 8.0);
    }

    #[test]
    fn colocated_aggressor_degrades_the_victim() {
        let mut solo = machine();
        solo.try_add_vm(serving_vm(1)).unwrap();
        let solo_reports = solo.step_epoch(0, &|_| 1.0, seed());

        let mut shared = machine();
        shared.try_add_vm(serving_vm(1)).unwrap();
        shared.try_add_vm(aggressor_vm(2, 512.0)).unwrap();
        let shared_reports = shared.step_epoch(0, &|_| 1.0, seed());

        let baseline = &solo_reports[0];
        let victim = &shared_reports[0];
        assert!(victim.achieved_fraction < baseline.achieved_fraction);
        assert!(victim.observation.latency_ms > baseline.observation.latency_ms);
        // Normalized cache-miss signature moves, which is what DeepDive sees.
        let n_base = baseline.counters.normalized_per_kilo_instruction();
        let n_victim = victim.counters.normalized_per_kilo_instruction();
        assert!(n_victim.l2_lines_in > n_base.l2_lines_in);
    }

    #[test]
    fn per_vm_loads_are_honoured() {
        let mut pm = machine();
        pm.try_add_vm(serving_vm(1)).unwrap();
        pm.try_add_vm(serving_vm(2)).unwrap();
        let reports = pm.step_epoch(0, &|id| if id == VmId(1) { 1.0 } else { 0.2 }, seed());
        assert!(reports[0].demand.instructions > 3.0 * reports[1].demand.instructions);
        assert!((reports[0].offered_load - 1.0).abs() < 1e-12);
        assert!((reports[1].offered_load - 0.2).abs() < 1e-12);
    }

    #[test]
    fn reports_carry_the_epoch_index() {
        let mut pm = machine();
        pm.try_add_vm(serving_vm(1)).unwrap();
        let reports = pm.step_epoch(17, &|_| 1.0, seed());
        assert_eq!(reports[0].epoch, 17);
    }
}
