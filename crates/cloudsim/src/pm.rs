//! Physical machines: hosting VMs and stepping simulation epochs.
//!
//! A [`PhysicalMachine`] owns the VMs placed on it.  Each call to
//! [`PhysicalMachine::step_epoch`] asks every hosted VM's workload for its
//! intrinsic demand at the offered load, hands all demands to the hwsim
//! contention resolver, and packages the result into one
//! [`VmEpochReport`] per VM: the Table 1 counters DeepDive reads, plus the
//! client-observed performance and ground-truth stall breakdown the
//! evaluation uses for scoring.

use hwsim::contention::{EpochOutcome, PlacedDemand, StallBreakdown};
use hwsim::{CounterSnapshot, EpochResolver, MachineSpec, ResourceDemand, EPOCH_SECONDS};
use workloads::{AppId, ClientObservation};

use crate::rngs::ClusterSeed;
use crate::scheduler::Scheduler;
use crate::vm::{Vm, VmId};

/// Unique identifier of a physical machine within the simulated datacenter.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct PmId(pub u64);

impl std::fmt::Display for PmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pm-{}", self.0)
    }
}

/// Everything observed about one VM during one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct VmEpochReport {
    /// The VM.
    pub vm_id: VmId,
    /// The machine that hosted it this epoch.
    pub pm_id: PmId,
    /// The application the VM runs (for DeepDive's global-information check).
    pub app: AppId,
    /// Epoch index at which the report was taken.
    pub epoch: u64,
    /// The offered load the VM received this epoch (0..=1 of its peak).
    pub offered_load: f64,
    /// The Table 1 counters — the only field the `deepdive` crate reads.
    pub counters: CounterSnapshot,
    /// The intrinsic demand the workload generated (recorded by the proxy so
    /// the analyzer can replay it in the sandbox).
    pub demand: ResourceDemand,
    /// Fraction of the demanded work that completed (evaluation ground truth).
    pub achieved_fraction: f64,
    /// Client-visible performance (evaluation ground truth).
    pub observation: ClientObservation,
    /// Ground-truth stall breakdown (evaluation ground truth).
    pub breakdown: StallBreakdown,
}

/// A physical machine hosting zero or more VMs.
pub struct PhysicalMachine {
    /// Machine identity.
    pub id: PmId,
    /// Hardware model.
    pub spec: MachineSpec,
    /// Placement/admission policy in force on this machine.
    pub scheduler: Scheduler,
    vms: Vec<Vm>,
    /// Reusable epoch-resolution pipeline for this machine's spec: scratch
    /// buffers survive across `step_epoch` calls so the hot path performs no
    /// per-epoch allocation beyond the returned reports.
    resolver: EpochResolver,
    loads: Vec<f64>,
    demands: Vec<ResourceDemand>,
    placements: Vec<PlacedDemand>,
    outcomes: Vec<EpochOutcome>,
}

impl PhysicalMachine {
    /// Creates an empty machine.
    pub fn new(id: PmId, spec: MachineSpec, scheduler: Scheduler) -> Self {
        assert!(spec.is_well_formed(), "malformed machine spec");
        let resolver = EpochResolver::new(spec.clone());
        Self {
            id,
            spec,
            scheduler,
            vms: Vec::new(),
            resolver,
            loads: Vec::new(),
            demands: Vec::new(),
            placements: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// The VMs currently hosted, in placement order.
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Number of hosted VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// True when the machine hosts the given VM.
    pub fn hosts(&self, vm_id: VmId) -> bool {
        self.vms.iter().any(|v| v.id == vm_id)
    }

    /// Attempts to place a VM on this machine; returns the VM back if the
    /// scheduler rejects it (no capacity).
    ///
    /// Crate-private: VM membership must change through the cluster's
    /// methods ([`crate::cluster::Cluster::place_on`] and friends) so its
    /// O(1) VM-location index stays consistent with the machines.
    pub(crate) fn try_add_vm(&mut self, vm: Vm) -> Result<(), Vm> {
        if self.scheduler.admits(&self.spec, &self.vms, &vm) {
            self.vms.push(vm);
            Ok(())
        } else {
            Err(vm)
        }
    }

    /// Removes and returns a VM (for migration); `None` if it is not here.
    /// Crate-private for the same reason as [`PhysicalMachine::try_add_vm`].
    ///
    /// The linear `position` scan plus order-preserving `Vec::remove` is
    /// deliberate, not an oversight: admission control bounds a machine to
    /// `spec.cores / vcpus` VMs (four 2-vCPU VMs on the Xeon X5472, eight on
    /// anything realistic), and the `cluster_throughput` bench's migration-
    /// churn measurement drives millions of migrations/sec through this path
    /// — many orders of magnitude beyond any plausible migration rate, so
    /// the scan never shows up in a profile.  A `swap_remove` or an id→slot
    /// index would be no faster at this VM count and would either reshuffle
    /// placement order (which feeds `Scheduler::cache_group_for_slot`) or
    /// add bookkeeping to every placement.
    pub(crate) fn remove_vm(&mut self, vm_id: VmId) -> Option<Vm> {
        let idx = self.vms.iter().position(|v| v.id == vm_id)?;
        Some(self.vms.remove(idx))
    }

    /// Unused core capacity.
    pub fn free_cores(&self) -> usize {
        let used: usize = self.vms.iter().map(|v| v.vcpus).sum();
        self.spec.cores.saturating_sub(used)
    }

    /// Advances the machine one epoch.
    ///
    /// `load_for` maps each VM id to its offered load for this epoch (the
    /// trace-driven client intensity).  Each VM draws its demand from its
    /// own `(vm, epoch)` stream derived from `seed`, so the reports are a
    /// pure function of `(seed, epoch, loads, placement)` — independent of
    /// how many other machines exist or the order they are stepped in, which
    /// is what lets [`crate::engine::EpochEngine`] step machines on
    /// concurrent shards.  Returns one report per hosted VM, in placement
    /// order.
    pub fn step_epoch<F>(
        &mut self,
        epoch: u64,
        load_for: &F,
        seed: ClusterSeed,
    ) -> Vec<VmEpochReport>
    where
        F: Fn(VmId) -> f64 + ?Sized,
    {
        if self.vms.is_empty() {
            return Vec::new();
        }
        // 1. Collect intrinsic demands from every workload, each from its
        // own per-(vm, epoch) stream.
        self.loads.clear();
        self.demands.clear();
        for vm in self.vms.iter_mut() {
            let load = load_for(vm.id).clamp(0.0, 1.0);
            let mut rng = seed.vm_epoch_rng(vm.id, epoch);
            let demand = vm.workload.next_demand(load, &mut rng);
            self.loads.push(load);
            self.demands.push(demand);
        }
        // 2. Resolve hardware contention for the whole machine, reusing the
        // machine's resolver and placement/outcome buffers across epochs.
        // `spec` is a public field, so guard against it having been swapped
        // out from under the resolver since the last epoch.
        if self.resolver.spec() != &self.spec {
            self.resolver = EpochResolver::new(self.spec.clone());
        }
        self.placements.clear();
        self.placements
            .extend(
                self.vms
                    .iter()
                    .enumerate()
                    .zip(&self.demands)
                    .map(|((slot, vm), demand)| {
                        PlacedDemand::new(
                            vm.id.0,
                            demand.clone(),
                            vm.vcpus,
                            self.scheduler.cache_group_for_slot(&self.spec, slot),
                        )
                    }),
            );
        self.resolver
            .resolve_into(&self.placements, EPOCH_SECONDS, &mut self.outcomes);

        // 3. Package per-VM reports.
        self.vms
            .iter()
            .zip(&self.demands)
            .zip(&self.loads)
            .zip(&self.outcomes)
            .map(|(((vm, demand), &load), outcome)| VmEpochReport {
                vm_id: vm.id,
                pm_id: self.id,
                app: vm.app_id(),
                epoch,
                offered_load: load,
                counters: outcome.counters,
                demand: demand.clone(),
                achieved_fraction: outcome.achieved_fraction,
                observation: vm.client.observe(load, outcome.achieved_fraction),
                breakdown: outcome.breakdown,
            })
            .collect()
    }
}

impl std::fmt::Debug for PhysicalMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalMachine")
            .field("id", &self.id)
            .field("spec", &self.spec.name)
            .field("vms", &self.vms.iter().map(|v| v.id).collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{ClientEmulator, DataServing, MemoryStress};

    fn seed() -> ClusterSeed {
        ClusterSeed::new(99)
    }

    fn serving_vm(id: u64) -> Vm {
        Vm::new(
            VmId(id),
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(8_000.0, 4.0),
        )
    }

    fn aggressor_vm(id: u64, ws_mb: f64) -> Vm {
        Vm::new(
            VmId(id),
            Box::new(MemoryStress::new(AppId(999), ws_mb)),
            ClientEmulator::new(1.0, 1.0),
        )
    }

    fn machine() -> PhysicalMachine {
        PhysicalMachine::new(PmId(0), MachineSpec::xeon_x5472(), Scheduler::default())
    }

    #[test]
    fn empty_machine_steps_to_empty_report() {
        let mut pm = machine();
        assert!(pm.step_epoch(0, &|_| 1.0, seed()).is_empty());
    }

    #[test]
    fn admission_and_removal_round_trip() {
        let mut pm = machine();
        for i in 0..4 {
            assert!(pm.try_add_vm(serving_vm(i)).is_ok());
        }
        // 8 cores consumed: a fifth 2-vCPU VM must be rejected.
        assert!(pm.try_add_vm(serving_vm(4)).is_err());
        assert_eq!(pm.vm_count(), 4);
        assert_eq!(pm.free_cores(), 0);
        let removed = pm.remove_vm(VmId(2)).expect("vm present");
        assert_eq!(removed.id, VmId(2));
        assert!(!pm.hosts(VmId(2)));
        assert!(pm.try_add_vm(serving_vm(4)).is_ok());
    }

    #[test]
    fn solo_vm_reports_healthy_performance() {
        let mut pm = machine();
        pm.try_add_vm(serving_vm(1)).unwrap();
        let reports = pm.step_epoch(0, &|_| 0.8, seed());
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.vm_id, VmId(1));
        assert_eq!(r.pm_id, PmId(0));
        assert!(r.achieved_fraction > 0.9);
        assert!(r.counters.is_well_formed());
        assert!(r.observation.latency_ms < 8.0);
    }

    #[test]
    fn colocated_aggressor_degrades_the_victim() {
        let mut solo = machine();
        solo.try_add_vm(serving_vm(1)).unwrap();
        let solo_reports = solo.step_epoch(0, &|_| 1.0, seed());

        let mut shared = machine();
        shared.try_add_vm(serving_vm(1)).unwrap();
        shared.try_add_vm(aggressor_vm(2, 512.0)).unwrap();
        let shared_reports = shared.step_epoch(0, &|_| 1.0, seed());

        let baseline = &solo_reports[0];
        let victim = &shared_reports[0];
        assert!(victim.achieved_fraction < baseline.achieved_fraction);
        assert!(victim.observation.latency_ms > baseline.observation.latency_ms);
        // Normalized cache-miss signature moves, which is what DeepDive sees.
        let n_base = baseline.counters.normalized_per_kilo_instruction();
        let n_victim = victim.counters.normalized_per_kilo_instruction();
        assert!(n_victim.l2_lines_in > n_base.l2_lines_in);
    }

    #[test]
    fn per_vm_loads_are_honoured() {
        let mut pm = machine();
        pm.try_add_vm(serving_vm(1)).unwrap();
        pm.try_add_vm(serving_vm(2)).unwrap();
        let reports = pm.step_epoch(0, &|id| if id == VmId(1) { 1.0 } else { 0.2 }, seed());
        assert!(reports[0].demand.instructions > 3.0 * reports[1].demand.instructions);
        assert!((reports[0].offered_load - 1.0).abs() < 1e-12);
        assert!((reports[1].offered_load - 0.2).abs() < 1e-12);
    }

    #[test]
    fn reports_carry_the_epoch_index() {
        let mut pm = machine();
        pm.try_add_vm(serving_vm(1)).unwrap();
        let reports = pm.step_epoch(17, &|_| 1.0, seed());
        assert_eq!(reports[0].epoch, 17);
    }
}
