//! The epoch engine: serial or sharded-parallel stepping of a cluster.
//!
//! [`EpochEngine`] owns the two knobs that used to be implicit in
//! `Cluster::step_epoch`: the RNG policy (a [`ClusterSeed`] deriving an
//! independent stream per `(vm, epoch)`, see [`crate::rngs`]) and the
//! execution strategy ([`ExecutionMode`]).  Because every VM's demand stream
//! is a pure function of its id, the epoch and the cluster seed, machines
//! are data-independent within an epoch — so sharded execution partitions
//! them into contiguous shards, steps each shard on its own
//! [`std::thread::scope`] thread, and merges the per-machine reports back in
//! machine-index order.  Serial and sharded runs are **bit-identical** (the
//! equivalence proptest at `tests/engine_equivalence.rs` pins this), which
//! means the thread count is purely a throughput knob, never a results knob.

use crate::cluster::Cluster;
use crate::pm::{PhysicalMachine, VmEpochReport};
use crate::rngs::ClusterSeed;
use crate::vm::VmId;

/// Environment variable read by [`ExecutionMode::from_env`]: `serial` (or
/// `1`) forces serial stepping, any larger integer selects
/// `Sharded { threads: n }`, unset/invalid falls back to the machine's
/// available parallelism.
pub const THREADS_ENV_VAR: &str = "CLOUDSIM_THREADS";

/// How the engine walks the machines of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One thread steps every machine in index order.
    Serial,
    /// Machines are split into `threads` contiguous shards, each stepped on
    /// its own scoped thread; reports are merged in machine-index order so
    /// the output is bit-identical to [`ExecutionMode::Serial`].
    Sharded {
        /// Number of shards/worker threads (clamped to the machine count; a
        /// value of 0 or 1 degenerates to serial stepping).
        threads: usize,
    },
}

impl ExecutionMode {
    /// Resolves the mode from the [`THREADS_ENV_VAR`] environment variable,
    /// defaulting to `Sharded { threads: available_parallelism }`.
    ///
    /// This is the benches' thread-count matrix knob; tests that pin exact
    /// values should construct [`ExecutionMode::Serial`] explicitly instead
    /// (the results are bit-identical either way — serial merely avoids
    /// paying thread spawns for tiny clusters).
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV_VAR) {
            Ok(v) if v.trim().eq_ignore_ascii_case("serial") => ExecutionMode::Serial,
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) | Err(_) => Self::available_parallelism(),
                Ok(1) => ExecutionMode::Serial,
                Ok(n) => ExecutionMode::Sharded { threads: n },
            },
            Err(_) => Self::available_parallelism(),
        }
    }

    /// `Sharded` over every hardware thread the OS grants this process
    /// (`Serial` on single-core machines).
    pub fn available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if threads <= 1 {
            ExecutionMode::Serial
        } else {
            ExecutionMode::Sharded { threads }
        }
    }

    /// Worker threads actually used for a fleet of `machines` machines.
    fn effective_threads(self, machines: usize) -> usize {
        match self {
            ExecutionMode::Serial => 1,
            ExecutionMode::Sharded { threads } => threads.clamp(1, machines.max(1)),
        }
    }
}

/// Steps a [`Cluster`] through epochs under a fixed seed and execution mode.
///
/// The engine is deliberately separate from the cluster: the cluster owns
/// *state* (machines, placements, the epoch counter), the engine owns
/// *policy* (seed derivation and parallelism), so one cluster can be driven
/// serially in a test and sharded in a capacity run without touching its
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochEngine {
    seed: ClusterSeed,
    mode: ExecutionMode,
}

impl EpochEngine {
    /// Creates an engine with an explicit execution mode.
    pub const fn new(seed: ClusterSeed, mode: ExecutionMode) -> Self {
        Self { seed, mode }
    }

    /// Serial engine — the right default for tests and small clusters.
    pub const fn serial(seed: ClusterSeed) -> Self {
        Self::new(seed, ExecutionMode::Serial)
    }

    /// Engine honouring the [`THREADS_ENV_VAR`] knob (default: all cores).
    pub fn from_env(seed: ClusterSeed) -> Self {
        Self::new(seed, ExecutionMode::from_env())
    }

    /// The cluster seed every stream derives from.
    pub const fn seed(&self) -> ClusterSeed {
        self.seed
    }

    /// The execution mode in force.
    pub const fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Switches execution mode (results are unaffected — bit-identical).
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        self.mode = mode;
    }

    /// Advances every machine one epoch and returns all per-VM reports, in
    /// machine-index order (and placement order within a machine) regardless
    /// of execution mode.
    ///
    /// `load_for` maps a VM to its offered load for this epoch (driven by
    /// the trace substrate); the `Sync` bound is what lets shards evaluate
    /// it concurrently.
    pub fn step<F>(&self, cluster: &mut Cluster, load_for: F) -> Vec<VmEpochReport>
    where
        F: Fn(VmId) -> f64 + Sync,
    {
        self.step_epochs(cluster, 1, |_, vm| load_for(vm))
            .pop()
            .expect("one epoch requested, one report batch returned")
    }

    /// Advances the cluster `epochs` epochs in one call and returns the
    /// reports of each epoch (outer index: epoch offset; inner order: the
    /// same machine-then-placement order [`EpochEngine::step`] produces).
    ///
    /// Bit-identical to calling [`EpochEngine::step`] `epochs` times — but
    /// in sharded mode every worker thread is spawned **once per batch**
    /// instead of once per epoch, amortising thread-churn across the batch
    /// (machines are independent across epochs as well as within one, so a
    /// shard can run its machines all the way to the horizon).  Use this
    /// whenever nothing needs to mutate the cluster between epochs — batch
    /// capacity sweeps, warm-up phases, throughput measurement; the
    /// controller loop, which migrates VMs between epochs, must keep
    /// calling [`EpochEngine::step`].
    ///
    /// `load_for` receives the absolute epoch index alongside the VM, so
    /// trace-driven loads stay expressible.
    pub fn step_epochs<F>(
        &self,
        cluster: &mut Cluster,
        epochs: usize,
        load_for: F,
    ) -> Vec<Vec<VmEpochReport>>
    where
        F: Fn(u64, VmId) -> f64 + Sync,
    {
        let first_epoch = cluster.epoch();
        let seed = self.seed;
        let machines = cluster.machines_mut();
        let threads = self.mode.effective_threads(machines.len());

        let step_shard = |shard: &mut [PhysicalMachine]| -> Vec<Vec<VmEpochReport>> {
            let mut per_epoch: Vec<Vec<VmEpochReport>> = (0..epochs).map(|_| Vec::new()).collect();
            for (offset, out) in per_epoch.iter_mut().enumerate() {
                let epoch = first_epoch + offset as u64;
                for machine in shard.iter_mut() {
                    out.extend(machine.step_epoch(epoch, &|vm| load_for(epoch, vm), seed));
                }
            }
            per_epoch
        };

        let reports = if threads <= 1 {
            step_shard(machines)
        } else {
            // Contiguous shards preserve machine order; the first shard runs
            // on the calling thread while the spawned ones work, and merging
            // in spawn order restores the serial report order exactly.
            let shard_len = machines.len().div_ceil(threads);
            let mut shards = machines.chunks_mut(shard_len);
            let first = shards.next().expect("cluster has at least one machine");
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .map(|shard| scope.spawn(|| step_shard(shard)))
                    .collect();
                let mut merged = step_shard(first);
                for handle in handles {
                    let shard_epochs = handle.join().expect("shard thread panicked");
                    for (into, from) in merged.iter_mut().zip(shard_epochs) {
                        into.extend(from);
                    }
                }
                merged
            })
        };
        for _ in 0..epochs {
            cluster.advance_epoch();
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pm::PmId;
    use crate::scheduler::Scheduler;
    use crate::vm::Vm;
    use hwsim::MachineSpec;
    use workloads::{AppId, ClientEmulator, DataServing, MemoryStress};

    fn cluster(machines: usize, vms: usize) -> Cluster {
        let mut c = Cluster::homogeneous(machines, MachineSpec::xeon_x5472(), Scheduler::default());
        for i in 0..vms {
            let vm = if i % 3 == 2 {
                Vm::new(
                    VmId(i as u64),
                    Box::new(MemoryStress::new(AppId(50), 256.0)),
                    ClientEmulator::new(1.0, 1.0),
                )
            } else {
                Vm::new(
                    VmId(i as u64),
                    Box::new(DataServing::with_defaults(AppId(1))),
                    ClientEmulator::new(8_000.0, 4.0),
                )
            };
            c.place_first_fit(vm).expect("cluster has room");
        }
        c
    }

    fn run(mode: ExecutionMode, epochs: usize) -> Vec<VmEpochReport> {
        let mut c = cluster(5, 12);
        let engine = EpochEngine::new(ClusterSeed::new(7), mode);
        let mut all = Vec::new();
        for _ in 0..epochs {
            all.extend(engine.step(&mut c, |vm| 0.4 + 0.05 * (vm.0 % 5) as f64));
        }
        all
    }

    #[test]
    fn serial_and_sharded_are_bit_identical() {
        let serial = run(ExecutionMode::Serial, 4);
        for threads in [1, 2, 3, 8, 64] {
            let sharded = run(ExecutionMode::Sharded { threads }, 4);
            assert_eq!(serial, sharded, "divergence at {threads} threads");
        }
    }

    #[test]
    fn step_advances_the_cluster_epoch() {
        let mut c = cluster(2, 2);
        let engine = EpochEngine::serial(ClusterSeed::new(1));
        assert_eq!(c.epoch(), 0);
        let first = engine.step(&mut c, |_| 0.7);
        assert_eq!(c.epoch(), 1);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].epoch, 0);
        let second = engine.step(&mut c, |_| 0.7);
        assert_eq!(second[0].epoch, 1);
    }

    #[test]
    fn reports_come_back_in_machine_then_placement_order() {
        let mut c = cluster(3, 9);
        let expected: Vec<(PmId, VmId)> = c
            .machines()
            .iter()
            .flat_map(|m| m.vms().iter().map(|v| (m.id, v.id)))
            .collect();
        let engine = EpochEngine::new(ClusterSeed::new(3), ExecutionMode::Sharded { threads: 3 });
        let reports = engine.step(&mut c, |_| 0.8);
        let got: Vec<(PmId, VmId)> = reports.iter().map(|r| (r.pm_id, r.vm_id)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn demand_streams_do_not_depend_on_placement() {
        // The same VM ids spread across different machine counts must draw
        // identical demands each epoch: the stream belongs to the VM, not to
        // its host or its neighbours.
        let engine = EpochEngine::serial(ClusterSeed::new(11));
        let mut narrow = cluster(1, 4); // all four VMs packed on one machine
                                        // Same four VM ids (and workloads), one per machine, reverse order.
        let mut wide = Cluster::homogeneous(4, MachineSpec::xeon_x5472(), Scheduler::default());
        for i in 0..4u64 {
            let vm = if i % 3 == 2 {
                Vm::new(
                    VmId(i),
                    Box::new(MemoryStress::new(AppId(50), 256.0)),
                    ClientEmulator::new(1.0, 1.0),
                )
            } else {
                Vm::new(
                    VmId(i),
                    Box::new(DataServing::with_defaults(AppId(1))),
                    ClientEmulator::new(8_000.0, 4.0),
                )
            };
            wide.place_on(PmId(3 - i), vm).expect("empty machine");
        }
        for _ in 0..3 {
            let mut packed = engine.step(&mut narrow, |_| 0.9);
            let mut spread = engine.step(&mut wide, |_| 0.9);
            packed.sort_by_key(|r| r.vm_id);
            spread.sort_by_key(|r| r.vm_id);
            for (a, b) in packed.iter().zip(&spread) {
                assert_eq!(a.vm_id, b.vm_id);
                assert_eq!(a.demand, b.demand, "demand stream moved with placement");
            }
        }
    }

    #[test]
    fn batched_stepping_is_bit_identical_to_repeated_step() {
        let load = |epoch: u64, vm: VmId| 0.3 + 0.04 * ((epoch + vm.0) % 9) as f64;
        // Reference: one step() call per epoch, serial.
        let mut reference = cluster(5, 12);
        let serial = EpochEngine::serial(ClusterSeed::new(21));
        let per_step: Vec<Vec<VmEpochReport>> = (0..6)
            .map(|_| {
                let epoch = reference.epoch();
                serial.step(&mut reference, |vm| load(epoch, vm))
            })
            .collect();
        for mode in [
            ExecutionMode::Serial,
            ExecutionMode::Sharded { threads: 2 },
            ExecutionMode::Sharded { threads: 8 },
        ] {
            let mut c = cluster(5, 12);
            let engine = EpochEngine::new(ClusterSeed::new(21), mode);
            // Split the horizon across two batches to exercise the resume.
            let mut batched = engine.step_epochs(&mut c, 2, load);
            batched.extend(engine.step_epochs(&mut c, 4, load));
            assert_eq!(c.epoch(), 6);
            assert_eq!(per_step, batched, "batched divergence under {mode:?}");
        }
    }

    #[test]
    fn mode_accessors_round_trip() {
        let mut engine = EpochEngine::serial(ClusterSeed::new(4));
        assert_eq!(engine.mode(), ExecutionMode::Serial);
        assert_eq!(engine.seed(), ClusterSeed::new(4));
        engine.set_mode(ExecutionMode::Sharded { threads: 4 });
        assert_eq!(engine.mode(), ExecutionMode::Sharded { threads: 4 });
    }
}
