//! The epoch engine: serial, sharded, or pool-backed stepping of a cluster.
//!
//! [`EpochEngine`] owns the two knobs that used to be implicit in
//! `Cluster::step_epoch`: the RNG policy (a [`ClusterSeed`] deriving an
//! independent stream per `(vm, epoch)`, see [`crate::rngs`]) and the
//! execution strategy ([`ExecutionMode`]).  Because every VM's demand stream
//! is a pure function of its id, the epoch and the cluster seed, machines
//! are data-independent within an epoch — so parallel execution partitions
//! them into contiguous, balanced shards
//! ([`crate::pool::split_balanced`]: shard count equals the effective
//! thread count, sizes differ by at most one) and merges the per-machine
//! reports back in machine-index order.  Serial and parallel runs are
//! **bit-identical** in every mode (the equivalence proptest at
//! `tests/engine_equivalence.rs` pins Serial vs Sharded vs Pooled), which
//! means the thread count is purely a throughput knob, never a results knob.
//!
//! Two parallel strategies exist:
//!
//! * [`ExecutionMode::Sharded`] — the original spawn-per-call strategy:
//!   scoped threads created and joined inside every `step`/`step_epochs`
//!   call.  Kept as the measured baseline; it only pays off when
//!   [`EpochEngine::step_epochs`] amortises the spawns over a batch.
//! * [`ExecutionMode::Pooled`] — the production strategy: shard jobs are
//!   enqueued on a persistent [`WorkerPool`] (spawned once, at engine
//!   construction) and `step` blocks on the pool's epoch barrier.  This is
//!   what lets the controller loop — which migrates VMs between epochs and
//!   therefore must step one epoch at a time — go parallel without paying a
//!   thread spawn per epoch.
//!
//! ## Service mode & sparse stepping
//!
//! By default the engine steps **sparsely**: each machine keeps a quiescent
//! report cache (see [`crate::pm`]), and an epoch in which every VM on a
//! machine is provably static at its offered load replays the cached
//! reports instead of re-running demand generation and contention
//! resolution.  The workload contract behind "provably static"
//! ([`workloads::Workload::demand_is_static_at`]) makes the replay
//! bit-identical to a dense resolve — the equivalence proptest pins sparse
//! vs dense across all three execution modes under arrival/departure/
//! migration churn — so [`EpochEngine::set_sparse`] is, like the thread
//! count, purely a throughput knob, never a results knob.  The event-driven
//! datacenter front end ([`crate::service::DatacenterService`]) leans on
//! this: with 10% of machines active per epoch, the other 90% cost one
//! cache-validity check and one report memcpy each, and
//! [`Cluster::total_resolves`] / [`Cluster::total_quiescent_steps`] expose
//! how much work was actually skipped.
//!
//! ## Panic policy
//!
//! A panicking `load_for` (or workload model) in any shard is re-raised on
//! the calling thread with its original payload, after **all** shards have
//! reached the barrier; when several shards panic, the lowest shard index
//! wins.  The cluster may be left half-stepped (some machines advanced,
//! others not), but the cluster epoch counter is **not** advanced, and a
//! pooled engine's workers survive — the pool is fully usable for the next
//! call.  See [`crate::pool`] for the pool's own contract.

use std::sync::Arc;

use crate::cluster::Cluster;
use crate::pm::{PhysicalMachine, VmEpochReport};
use crate::pool::{split_balanced, WorkerPool};
use crate::rngs::ClusterSeed;
use crate::vm::VmId;

/// Environment variable read by [`ExecutionMode::from_env`]: `serial` (or
/// `1`) forces serial stepping, any larger integer selects
/// `Pooled { threads: n }`, unset falls back to the machine's available
/// parallelism.  Any other value — `0`, negatives, non-numeric — is a hard
/// error (`from_env` panics with the offending value) rather than a silent
/// fallback, so a typo in a CI matrix cannot masquerade as all-cores.
pub const THREADS_ENV_VAR: &str = "CLOUDSIM_THREADS";

/// How the engine walks the machines of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One thread steps every machine in index order.
    Serial,
    /// Machines are split into `threads` balanced contiguous shards, each
    /// stepped on its own freshly spawned [`std::thread::scope`] thread;
    /// reports are merged in machine-index order so the output is
    /// bit-identical to [`ExecutionMode::Serial`].  Spawn-per-call: only
    /// wins when batched via [`EpochEngine::step_epochs`]; prefer
    /// [`ExecutionMode::Pooled`] for step-at-a-time callers.
    Sharded {
        /// Number of shards/worker threads (clamped to the machine count; a
        /// value of 0 or 1 degenerates to serial stepping).
        threads: usize,
    },
    /// Machines are split into the same balanced contiguous shards, but the
    /// shard jobs run on a persistent [`WorkerPool`] owned by the engine —
    /// no thread churn per call.  Output is bit-identical to
    /// [`ExecutionMode::Serial`].
    Pooled {
        /// Parallel lanes (pool workers + the calling thread; clamped to
        /// the machine count; 0 or 1 degenerates to serial stepping).
        threads: usize,
    },
}

impl ExecutionMode {
    /// Resolves the mode from the [`THREADS_ENV_VAR`] environment variable,
    /// defaulting to `Pooled { threads: available_parallelism }` when the
    /// variable is **unset**.
    ///
    /// A set-but-malformed value (`"0"`, `"-2"`, `"four"`, …) panics with
    /// the offending value instead of silently falling back — CI matrices
    /// set this variable, and a typo mapped to all-cores would make a
    /// mislabelled lane look like a healthy one.
    ///
    /// This is the benches' thread-count matrix knob; tests that pin exact
    /// values should construct [`ExecutionMode::Serial`] explicitly instead
    /// (the results are bit-identical either way — serial merely avoids
    /// paying parallelism overhead for tiny clusters).
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV_VAR) {
            Ok(raw) => match Self::parse_env_value(&raw) {
                Ok(mode) => mode,
                Err(message) => panic!("{message}"),
            },
            Err(_) => Self::available_parallelism(),
        }
    }

    /// Strict parser behind [`ExecutionMode::from_env`], separated out so
    /// tests can pin its behaviour without mutating process-global
    /// environment (the test binary runs threads in parallel, and the CI
    /// multi-thread lane sets the real variable).
    ///
    /// Accepts `serial` (case-insensitive) and positive integers, with
    /// surrounding whitespace tolerated; everything else — including `0`
    /// and negative numbers — is an error carrying the offending value.
    pub fn parse_env_value(raw: &str) -> Result<Self, String> {
        let value = raw.trim();
        if value.eq_ignore_ascii_case("serial") {
            return Ok(ExecutionMode::Serial);
        }
        match value.parse::<usize>() {
            Ok(0) | Err(_) => Err(format!(
                "{THREADS_ENV_VAR} must be `serial` or a positive thread count, got {raw:?}"
            )),
            Ok(1) => Ok(ExecutionMode::Serial),
            Ok(n) => Ok(ExecutionMode::Pooled { threads: n }),
        }
    }

    /// `Pooled` over every hardware thread the OS grants this process
    /// (`Serial` on single-core machines).
    pub fn available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if threads <= 1 {
            ExecutionMode::Serial
        } else {
            ExecutionMode::Pooled { threads }
        }
    }

    /// Worker threads actually used for a fleet of `machines` machines.
    fn effective_threads(self, machines: usize) -> usize {
        match self {
            ExecutionMode::Serial => 1,
            ExecutionMode::Sharded { threads } | ExecutionMode::Pooled { threads } => {
                threads.clamp(1, machines.max(1))
            }
        }
    }
}

/// What one [`EpochEngine::advance_epochs`] call did, in machine-epochs.
///
/// `resolved_machine_epochs + quiescent_machine_epochs` accounts for every
/// non-empty machine over every advanced epoch; the quiescent share is the
/// work the sparse path skipped (a dense advance keeps it at zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdvanceSummary {
    /// Resident VMs × epochs advanced — the throughput numerator.
    pub vm_epochs: u64,
    /// Machine-epochs that ran demand generation + contention resolution.
    pub resolved_machine_epochs: u64,
    /// Machine-epochs served by the quiescent fast path without resolving.
    pub quiescent_machine_epochs: u64,
}

/// Steps a [`Cluster`] through epochs under a fixed seed and execution mode.
///
/// The engine is deliberately separate from the cluster: the cluster owns
/// *state* (machines, placements, the epoch counter), the engine owns
/// *policy* (seed derivation and parallelism), so one cluster can be driven
/// serially in a test and pooled in a capacity run without touching its
/// construction.
///
/// A `Pooled` engine owns (a shared handle to) its [`WorkerPool`]; cloning
/// the engine shares the pool rather than spawning a second set of workers,
/// and [`EpochEngine::worker_pool`] exposes the handle so other subsystems
/// (the DeepDive controller's model refits and benchmark training) can ride
/// the same threads.  Equality ignores the pool: two engines are equal when
/// they produce identical results, i.e. same seed and mode.
#[derive(Debug, Clone)]
pub struct EpochEngine {
    seed: ClusterSeed,
    mode: ExecutionMode,
    pool: Option<Arc<WorkerPool>>,
    /// Quiescent machines replay cached reports instead of resolving (see
    /// the [module docs](self)); bit-identical either way, on by default.
    sparse: bool,
}

impl PartialEq for EpochEngine {
    fn eq(&self, other: &Self) -> bool {
        // The pool and the sparse knob are deliberately ignored: neither
        // changes a single output bit, and equality means "produce
        // identical results".
        self.seed == other.seed && self.mode == other.mode
    }
}

impl Eq for EpochEngine {}

impl EpochEngine {
    /// Creates an engine with an explicit execution mode.  A
    /// `Pooled { threads: n > 1 }` mode spawns the persistent worker pool
    /// here, once, sized `n - 1` (the calling thread is the n-th lane).
    pub fn new(seed: ClusterSeed, mode: ExecutionMode) -> Self {
        Self {
            seed,
            mode,
            pool: Self::pool_for(mode),
            sparse: true,
        }
    }

    /// Serial engine — the right default for tests and small clusters.
    pub const fn serial(seed: ClusterSeed) -> Self {
        Self {
            seed,
            mode: ExecutionMode::Serial,
            pool: None,
            sparse: true,
        }
    }

    /// Engine honouring the [`THREADS_ENV_VAR`] knob (default: all cores).
    pub fn from_env(seed: ClusterSeed) -> Self {
        Self::new(seed, ExecutionMode::from_env())
    }

    /// Pooled engine running on an existing pool (shared via `Arc`), for
    /// callers that already own one — the controller benches use this to
    /// share a single pool between stepping and model refits.
    pub fn with_pool(seed: ClusterSeed, pool: Arc<WorkerPool>) -> Self {
        Self {
            seed,
            mode: ExecutionMode::Pooled {
                threads: pool.lanes(),
            },
            pool: Some(pool),
            sparse: true,
        }
    }

    fn pool_for(mode: ExecutionMode) -> Option<Arc<WorkerPool>> {
        match mode {
            ExecutionMode::Pooled { threads } if threads > 1 => {
                Some(Arc::new(WorkerPool::for_threads(threads)))
            }
            _ => None,
        }
    }

    /// The cluster seed every stream derives from.
    pub const fn seed(&self) -> ClusterSeed {
        self.seed
    }

    /// The execution mode in force.
    pub const fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The engine's persistent worker pool (`Some` exactly for
    /// `Pooled { threads > 1 }`).  Share it to fan other independent work —
    /// model refits, benchmark training — across the same threads.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Switches execution mode (results are unaffected — bit-identical).
    /// Entering a pooled mode spawns the pool; leaving it releases this
    /// engine's handle (workers shut down when the last clone lets go).
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        if self.mode != mode {
            self.pool = Self::pool_for(mode);
        }
        self.mode = mode;
    }

    /// Whether quiescent machines replay their cached reports (the default)
    /// instead of resolving every epoch densely.
    pub const fn sparse(&self) -> bool {
        self.sparse
    }

    /// Toggles sparse stepping (results are unaffected — bit-identical; see
    /// the [module docs](self)).  `false` forces a dense resolve of every
    /// machine every epoch — the measured baseline the datacenter bench
    /// compares against.
    pub fn set_sparse(&mut self, sparse: bool) {
        self.sparse = sparse;
    }

    /// Advances every machine one epoch and returns all per-VM reports, in
    /// machine-index order (and placement order within a machine) regardless
    /// of execution mode.
    ///
    /// `load_for` maps a VM to its offered load for this epoch (driven by
    /// the trace substrate); the `Sync` bound is what lets shards evaluate
    /// it concurrently.
    pub fn step<F>(&self, cluster: &mut Cluster, load_for: F) -> Vec<VmEpochReport>
    where
        F: Fn(VmId) -> f64 + Sync,
    {
        self.step_epochs(cluster, 1, |_, vm| load_for(vm))
            .pop()
            .expect("one epoch requested, one report batch returned")
    }

    /// Advances the cluster `epochs` epochs in one call and returns the
    /// reports of each epoch (outer index: epoch offset; inner order: the
    /// same machine-then-placement order [`EpochEngine::step`] produces).
    /// `epochs == 0` is a no-op returning an empty vec.
    ///
    /// Bit-identical to calling [`EpochEngine::step`] `epochs` times — but a
    /// shard runs its machines all the way to the horizon (machines are
    /// independent across epochs as well as within one), so one
    /// barrier covers the whole batch.  Use this whenever nothing needs to
    /// mutate the cluster between epochs — capacity sweeps, warm-up phases,
    /// throughput measurement; the controller loop, which migrates VMs
    /// between epochs, calls [`EpochEngine::step`] and relies on
    /// [`ExecutionMode::Pooled`] to make that cheap.
    ///
    /// `load_for` receives the absolute epoch index alongside the VM, so
    /// trace-driven loads stay expressible.
    ///
    /// If `load_for` (or a workload model) panics, the panic propagates per
    /// the [module](self) policy: barrier first, lowest shard's payload
    /// re-raised here, epoch counter untouched, pool workers intact.
    pub fn step_epochs<F>(
        &self,
        cluster: &mut Cluster,
        epochs: usize,
        load_for: F,
    ) -> Vec<Vec<VmEpochReport>>
    where
        F: Fn(u64, VmId) -> f64 + Sync,
    {
        if epochs == 0 {
            return Vec::new();
        }
        let first_epoch = cluster.epoch();
        let seed = self.seed;
        let sparse = self.sparse;
        let machines = cluster.machines_mut();
        let threads = self.mode.effective_threads(machines.len());

        let step_shard = |shard: &mut [PhysicalMachine]| -> Vec<Vec<VmEpochReport>> {
            // One report per resident VM per epoch: reserving up front keeps
            // the output vector from realloc-copying its way to full size —
            // at 10k+ machines that copy traffic would dominate the sparse
            // path, whose real work is only a memcpy per quiescent machine.
            let shard_vms: usize = shard.iter().map(PhysicalMachine::vm_count).sum();
            let mut per_epoch: Vec<Vec<VmEpochReport>> =
                (0..epochs).map(|_| Vec::with_capacity(shard_vms)).collect();
            for (offset, out) in per_epoch.iter_mut().enumerate() {
                let epoch = first_epoch + offset as u64;
                for machine in shard.iter_mut() {
                    // Reports land straight in the epoch's output vector —
                    // no per-machine allocation on either the dense or the
                    // cached path.
                    machine.step_epoch_into(epoch, &|vm| load_for(epoch, vm), seed, sparse, out);
                }
            }
            per_epoch
        };

        let reports = if threads <= 1 {
            // Zero- and one-machine clusters (and serial mode) step entirely
            // on the calling thread: no shards, no pool traffic.
            step_shard(machines)
        } else {
            // Balanced contiguous shards preserve machine order — exactly
            // `threads` shards whose sizes differ by at most one (the old
            // `chunks_mut(len.div_ceil(threads))` sizing could leave half
            // the workers idle: 65 machines at 64 threads → 33 shards of 2).
            // Merging in shard order restores the serial report order.
            let mut shards = split_balanced(machines, threads);
            match (&self.pool, self.mode) {
                (Some(pool), ExecutionMode::Pooled { .. }) => {
                    // scatter_map shares one closure by reference across the
                    // shard slice: no per-shard closure boxing, no per-epoch
                    // job vector — the allocation-free path a controller
                    // loop stepping one epoch at a time stays hot on.
                    // The pool re-raises the lowest shard's panic after the
                    // barrier; workers survive it.
                    Self::merge_shards(
                        pool.scatter_map(&mut shards, &|shard: &mut &mut [PhysicalMachine]| {
                            step_shard(shard)
                        }),
                        epochs,
                    )
                }
                _ => {
                    let mut shards = shards.into_iter();
                    let first = shards.next().expect("at least one shard");
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = shards
                            .map(|shard| scope.spawn(|| step_shard(shard)))
                            .collect();
                        // Run shard 0 here under catch_unwind so a panic
                        // still joins every spawned shard (the barrier)
                        // before being re-raised.
                        let mut results = vec![std::panic::catch_unwind(
                            std::panic::AssertUnwindSafe(|| step_shard(first)),
                        )];
                        results.extend(handles.into_iter().map(|h| h.join()));
                        let mut merged: Vec<Vec<Vec<VmEpochReport>>> = Vec::new();
                        let mut panic = None;
                        for result in results {
                            match result {
                                Ok(shard_epochs) => merged.push(shard_epochs),
                                Err(payload) => {
                                    panic.get_or_insert(payload);
                                }
                            }
                        }
                        if let Some(payload) = panic {
                            std::panic::resume_unwind(payload);
                        }
                        Self::merge_shards(merged, epochs)
                    })
                }
            }
        };
        for _ in 0..epochs {
            cluster.advance_epoch();
        }
        reports
    }

    /// Advances the cluster `epochs` epochs **without materializing
    /// reports**, with every VM's offered load held fixed at `load_for`'s
    /// output for the whole batch (the closure is evaluated once per VM,
    /// at batch entry — not once per epoch).
    ///
    /// This is the bulk-throughput entry point for callers that do not
    /// consume per-epoch reports — fast-forwarding the quiescent valley of
    /// a diurnal trace, capacity sweeps, warm-up.  Cluster state evolves
    /// bit-identically to [`EpochEngine::step_epochs`] under a
    /// load closure constant over the batch: machines whose demand can
    /// still change resolve every epoch exactly as they would, and a
    /// machine whose workloads are all static at its loads resolves at
    /// most once, synthesizes its reports into its quiescent cache (so a
    /// later report-returning [`EpochEngine::step`] replays the same
    /// bytes), and is **never revisited** for the rest of the batch.  With
    /// sparse stepping that makes bulk advancement O(active machines),
    /// where the per-epoch paths are O(machines) — they must at least
    /// re-check and re-copy every quiescent machine's reports each epoch.
    ///
    /// Runs under the engine's [`ExecutionMode`] with the same balanced
    /// sharding, bit-identical results and barrier-first panic policy as
    /// [`EpochEngine::step_epochs`].  With sparse stepping disabled every
    /// machine resolves every epoch (the dense baseline, minus report
    /// packaging).
    pub fn advance_epochs<F>(
        &self,
        cluster: &mut Cluster,
        epochs: u64,
        load_for: F,
    ) -> AdvanceSummary
    where
        F: Fn(VmId) -> f64 + Sync,
    {
        if epochs == 0 {
            return AdvanceSummary::default();
        }
        let vm_epochs = cluster.vm_count() as u64 * epochs;
        let resolved_before = cluster.total_resolves();
        let quiescent_before = cluster.total_quiescent_steps();
        let first_epoch = cluster.epoch();
        let seed = self.seed;
        let sparse = self.sparse;
        let machines = cluster.machines_mut();
        let threads = self.mode.effective_threads(machines.len());

        let advance_shard = |shard: &mut [PhysicalMachine]| {
            for machine in shard.iter_mut() {
                machine.advance_epochs(first_epoch, epochs, &load_for, seed, sparse);
            }
        };

        if threads <= 1 {
            advance_shard(machines);
        } else {
            let mut shards = split_balanced(machines, threads);
            match (&self.pool, self.mode) {
                (Some(pool), ExecutionMode::Pooled { .. }) => {
                    pool.scatter_map(&mut shards, &|shard: &mut &mut [PhysicalMachine]| {
                        advance_shard(shard)
                    });
                }
                _ => {
                    let mut shards = shards.into_iter();
                    let first = shards.next().expect("at least one shard");
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = shards
                            .map(|shard| scope.spawn(|| advance_shard(shard)))
                            .collect();
                        // Barrier-first: join every spawned shard before
                        // re-raising a local panic.
                        let local = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            advance_shard(first)
                        }));
                        let mut panic = local.err();
                        for handle in handles {
                            if let Err(payload) = handle.join() {
                                panic.get_or_insert(payload);
                            }
                        }
                        if let Some(payload) = panic {
                            std::panic::resume_unwind(payload);
                        }
                    });
                }
            }
        }
        for _ in 0..epochs {
            cluster.advance_epoch();
        }
        AdvanceSummary {
            vm_epochs,
            resolved_machine_epochs: cluster.total_resolves() - resolved_before,
            quiescent_machine_epochs: cluster.total_quiescent_steps() - quiescent_before,
        }
    }

    /// Merges per-shard `[epoch][report]` batches (shards in machine-index
    /// order) into one `[epoch][report]` batch matching serial order.
    fn merge_shards(
        shard_results: Vec<Vec<Vec<VmEpochReport>>>,
        epochs: usize,
    ) -> Vec<Vec<VmEpochReport>> {
        let mut merged: Vec<Vec<VmEpochReport>> = (0..epochs).map(|_| Vec::new()).collect();
        for shard_epochs in shard_results {
            for (into, from) in merged.iter_mut().zip(shard_epochs) {
                into.extend(from);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pm::PmId;
    use crate::scheduler::Scheduler;
    use crate::vm::Vm;
    use hwsim::MachineSpec;
    use workloads::{AppId, ClientEmulator, DataServing, MemoryStress};

    fn cluster(machines: usize, vms: usize) -> Cluster {
        let mut c = Cluster::homogeneous(machines, MachineSpec::xeon_x5472(), Scheduler::default());
        for i in 0..vms {
            let vm = if i % 3 == 2 {
                Vm::new(
                    VmId(i as u64),
                    Box::new(MemoryStress::new(AppId(50), 256.0)),
                    ClientEmulator::new(1.0, 1.0),
                )
            } else {
                Vm::new(
                    VmId(i as u64),
                    Box::new(DataServing::with_defaults(AppId(1))),
                    ClientEmulator::new(8_000.0, 4.0),
                )
            };
            c.place_first_fit(vm).expect("cluster has room");
        }
        c
    }

    fn run(mode: ExecutionMode, epochs: usize) -> Vec<VmEpochReport> {
        let mut c = cluster(5, 12);
        let engine = EpochEngine::new(ClusterSeed::new(7), mode);
        let mut all = Vec::new();
        for _ in 0..epochs {
            all.extend(engine.step(&mut c, |vm| 0.4 + 0.05 * (vm.0 % 5) as f64));
        }
        all
    }

    #[test]
    fn serial_sharded_and_pooled_are_bit_identical() {
        let serial = run(ExecutionMode::Serial, 4);
        for threads in [1, 2, 3, 8, 64] {
            let sharded = run(ExecutionMode::Sharded { threads }, 4);
            assert_eq!(serial, sharded, "sharded divergence at {threads} threads");
            let pooled = run(ExecutionMode::Pooled { threads }, 4);
            assert_eq!(serial, pooled, "pooled divergence at {threads} threads");
        }
    }

    #[test]
    fn non_dividing_machine_thread_combos_use_every_shard() {
        // The regression the balanced split fixes: machine/thread counts
        // that do not divide evenly (65 @ 64 being the pathological case —
        // div_ceil chunking produced 33 shards of 2).  Equivalence is the
        // contract; shard-count correctness is pinned in `pool::tests`.
        for (machines, threads) in [(65usize, 64usize), (7, 3), (9, 4), (5, 64)] {
            let vms = machines; // one VM per machine is plenty
            let build = || {
                let mut c = cluster(machines, vms);
                assert_eq!(c.machines_mut().len(), machines);
                c
            };
            let serial = EpochEngine::serial(ClusterSeed::new(13));
            let mut c_serial = build();
            let expected = serial.step_epochs(&mut c_serial, 3, |e, vm| {
                0.2 + 0.05 * ((e + vm.0) % 7) as f64
            });
            for mode in [
                ExecutionMode::Sharded { threads },
                ExecutionMode::Pooled { threads },
            ] {
                let engine = EpochEngine::new(ClusterSeed::new(13), mode);
                let mut c = build();
                let got =
                    engine.step_epochs(&mut c, 3, |e, vm| 0.2 + 0.05 * ((e + vm.0) % 7) as f64);
                assert_eq!(
                    expected, got,
                    "{machines} machines at {threads} threads diverged under {mode:?}"
                );
            }
        }
    }

    #[test]
    fn step_advances_the_cluster_epoch() {
        let mut c = cluster(2, 2);
        let engine = EpochEngine::serial(ClusterSeed::new(1));
        assert_eq!(c.epoch(), 0);
        let first = engine.step(&mut c, |_| 0.7);
        assert_eq!(c.epoch(), 1);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].epoch, 0);
        let second = engine.step(&mut c, |_| 0.7);
        assert_eq!(second[0].epoch, 1);
    }

    #[test]
    fn reports_come_back_in_machine_then_placement_order() {
        for mode in [
            ExecutionMode::Sharded { threads: 3 },
            ExecutionMode::Pooled { threads: 3 },
        ] {
            let mut c = cluster(3, 9);
            let expected: Vec<(PmId, VmId)> = c
                .machines()
                .iter()
                .flat_map(|m| m.vms().iter().map(|v| (m.id, v.id)))
                .collect();
            let engine = EpochEngine::new(ClusterSeed::new(3), mode);
            let reports = engine.step(&mut c, |_| 0.8);
            let got: Vec<(PmId, VmId)> = reports.iter().map(|r| (r.pm_id, r.vm_id)).collect();
            assert_eq!(got, expected, "order broke under {mode:?}");
        }
    }

    #[test]
    fn demand_streams_do_not_depend_on_placement() {
        // The same VM ids spread across different machine counts must draw
        // identical demands each epoch: the stream belongs to the VM, not to
        // its host or its neighbours.
        let engine = EpochEngine::serial(ClusterSeed::new(11));
        let mut narrow = cluster(1, 4); // all four VMs packed on one machine
                                        // Same four VM ids (and workloads), one per machine, reverse order.
        let mut wide = Cluster::homogeneous(4, MachineSpec::xeon_x5472(), Scheduler::default());
        for i in 0..4u64 {
            let vm = if i % 3 == 2 {
                Vm::new(
                    VmId(i),
                    Box::new(MemoryStress::new(AppId(50), 256.0)),
                    ClientEmulator::new(1.0, 1.0),
                )
            } else {
                Vm::new(
                    VmId(i),
                    Box::new(DataServing::with_defaults(AppId(1))),
                    ClientEmulator::new(8_000.0, 4.0),
                )
            };
            wide.place_on(PmId(3 - i), vm).expect("empty machine");
        }
        for _ in 0..3 {
            let mut packed = engine.step(&mut narrow, |_| 0.9);
            let mut spread = engine.step(&mut wide, |_| 0.9);
            packed.sort_by_key(|r| r.vm_id);
            spread.sort_by_key(|r| r.vm_id);
            for (a, b) in packed.iter().zip(&spread) {
                assert_eq!(a.vm_id, b.vm_id);
                assert_eq!(a.demand, b.demand, "demand stream moved with placement");
            }
        }
    }

    #[test]
    fn batched_stepping_is_bit_identical_to_repeated_step() {
        let load = |epoch: u64, vm: VmId| 0.3 + 0.04 * ((epoch + vm.0) % 9) as f64;
        // Reference: one step() call per epoch, serial.
        let mut reference = cluster(5, 12);
        let serial = EpochEngine::serial(ClusterSeed::new(21));
        let per_step: Vec<Vec<VmEpochReport>> = (0..6)
            .map(|_| {
                let epoch = reference.epoch();
                serial.step(&mut reference, |vm| load(epoch, vm))
            })
            .collect();
        for mode in [
            ExecutionMode::Serial,
            ExecutionMode::Sharded { threads: 2 },
            ExecutionMode::Sharded { threads: 8 },
            ExecutionMode::Pooled { threads: 2 },
            ExecutionMode::Pooled { threads: 8 },
        ] {
            let mut c = cluster(5, 12);
            let engine = EpochEngine::new(ClusterSeed::new(21), mode);
            // Split the horizon across two batches to exercise the resume.
            let mut batched = engine.step_epochs(&mut c, 2, load);
            batched.extend(engine.step_epochs(&mut c, 4, load));
            assert_eq!(c.epoch(), 6);
            assert_eq!(per_step, batched, "batched divergence under {mode:?}");
        }
    }

    #[test]
    fn sparse_and_dense_stepping_are_bit_identical() {
        let load = |epoch: u64, vm: VmId| {
            // Half the VMs go fully idle on even epochs — exactly the
            // regime where sparse stepping starts skipping machines.
            if vm.0.is_multiple_of(2) && epoch.is_multiple_of(2) {
                0.0
            } else {
                0.5
            }
        };
        let mut dense_engine = EpochEngine::serial(ClusterSeed::new(31));
        dense_engine.set_sparse(false);
        assert!(!dense_engine.sparse());
        let sparse_engine = EpochEngine::serial(ClusterSeed::new(31));
        assert!(sparse_engine.sparse(), "sparse is the default");
        let mut dense_cluster = cluster(5, 12);
        let mut sparse_cluster = cluster(5, 12);
        let dense = dense_engine.step_epochs(&mut dense_cluster, 8, load);
        let sparse = sparse_engine.step_epochs(&mut sparse_cluster, 8, load);
        assert_eq!(dense, sparse);
        assert_eq!(
            dense_cluster.total_quiescent_steps(),
            0,
            "dense mode must never use the cache"
        );
    }

    #[test]
    fn a_fully_quiescent_epoch_resolves_zero_machines() {
        // All-idle DataServing VMs: static at load 0.  After the first
        // (cache-filling) epoch, no machine should resolve again.
        let mut c = Cluster::homogeneous(4, MachineSpec::xeon_x5472(), Scheduler::default());
        for i in 0..8u64 {
            c.place_first_fit(Vm::new(
                VmId(i),
                Box::new(DataServing::with_defaults(AppId(1))),
                ClientEmulator::new(8_000.0, 4.0),
            ))
            .expect("cluster has room");
        }
        let engine = EpochEngine::serial(ClusterSeed::new(5));
        let first = engine.step(&mut c, |_| 0.0);
        // First-fit packs the 8 VMs onto 2 machines; empty machines are
        // skipped outright, so only those 2 ever resolve.
        assert_eq!(c.total_resolves(), 2);
        assert_eq!(c.total_quiescent_steps(), 0);
        let later = engine.step_epochs(&mut c, 10, |_, _| 0.0);
        assert_eq!(c.total_resolves(), 2, "quiescent epochs must not resolve");
        assert_eq!(c.total_quiescent_steps(), 20);
        // And the replayed reports differ from the resolved one only in
        // the epoch stamp.
        for (offset, batch) in later.iter().enumerate() {
            for (cached, resolved) in batch.iter().zip(&first) {
                assert_eq!(cached.epoch, 1 + offset as u64);
                let mut patched = cached.clone();
                patched.epoch = resolved.epoch;
                assert_eq!(&patched, resolved);
            }
        }
    }

    #[test]
    fn advance_epochs_matches_stepping_with_constant_loads() {
        // VMs 0–3 idle (machine 0 all-static), the rest busy.
        let load = |vm: VmId| if vm.0 < 4 { 0.0 } else { 0.6 };
        // Reference: per-epoch report-returning stepping, dense serial.
        let mut reference = cluster(4, 10);
        let mut ref_engine = EpochEngine::serial(ClusterSeed::new(41));
        ref_engine.set_sparse(false);
        for _ in 0..5 {
            ref_engine.step(&mut reference, load);
        }
        let expected_tail = ref_engine.step(&mut reference, load);
        for mode in [
            ExecutionMode::Serial,
            ExecutionMode::Sharded { threads: 3 },
            ExecutionMode::Pooled { threads: 3 },
        ] {
            for sparse in [false, true] {
                let mut c = cluster(4, 10);
                let mut engine = EpochEngine::new(ClusterSeed::new(41), mode);
                engine.set_sparse(sparse);
                let summary = engine.advance_epochs(&mut c, 5, load);
                assert_eq!(c.epoch(), 5);
                assert_eq!(summary.vm_epochs, 50);
                // 3 non-empty machines × 5 epochs, split between the paths.
                assert_eq!(
                    summary.resolved_machine_epochs + summary.quiescent_machine_epochs,
                    15,
                    "machine-epoch accounting broke under {mode:?} sparse={sparse}"
                );
                if sparse {
                    // Machine 0 resolves once (filling its cache) and skips
                    // the remaining 4 epochs of the batch.
                    assert_eq!(summary.quiescent_machine_epochs, 4);
                } else {
                    assert_eq!(summary.quiescent_machine_epochs, 0);
                }
                // The real equivalence check: after advancing without
                // reports, the next report-returning epoch must be byte-
                // for-byte what per-epoch dense stepping would produce.
                let tail = engine.step(&mut c, load);
                assert_eq!(
                    expected_tail, tail,
                    "advance diverged from stepping under {mode:?} sparse={sparse}"
                );
            }
        }
    }

    #[test]
    fn advancing_zero_epochs_is_a_no_op() {
        let mut c = cluster(2, 4);
        let engine = EpochEngine::serial(ClusterSeed::new(6));
        assert_eq!(
            engine.advance_epochs(&mut c, 0, |_| 0.5),
            AdvanceSummary::default()
        );
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.total_resolves(), 0);
    }

    #[test]
    fn mode_accessors_round_trip() {
        let mut engine = EpochEngine::serial(ClusterSeed::new(4));
        assert_eq!(engine.mode(), ExecutionMode::Serial);
        assert_eq!(engine.seed(), ClusterSeed::new(4));
        assert!(engine.worker_pool().is_none());
        engine.set_mode(ExecutionMode::Sharded { threads: 4 });
        assert_eq!(engine.mode(), ExecutionMode::Sharded { threads: 4 });
        assert!(engine.worker_pool().is_none(), "sharded mode owns no pool");
        engine.set_mode(ExecutionMode::Pooled { threads: 4 });
        let pool = engine.worker_pool().expect("pooled mode spawns the pool");
        assert_eq!(pool.lanes(), 4);
        engine.set_mode(ExecutionMode::Serial);
        assert!(engine.worker_pool().is_none(), "leaving pooled drops it");
    }

    #[test]
    fn cloned_pooled_engines_share_one_pool() {
        let engine = EpochEngine::new(ClusterSeed::new(9), ExecutionMode::Pooled { threads: 3 });
        let clone = engine.clone();
        let a = engine.worker_pool().expect("pooled");
        let b = clone.worker_pool().expect("pooled");
        assert!(Arc::ptr_eq(a, b), "clone must not spawn a second pool");
        assert_eq!(engine, clone);
    }

    #[test]
    fn strict_env_parsing_pins_the_documented_grammar() {
        use ExecutionMode::{Pooled, Serial};
        assert_eq!(ExecutionMode::parse_env_value("serial"), Ok(Serial));
        assert_eq!(ExecutionMode::parse_env_value("SERIAL"), Ok(Serial));
        assert_eq!(ExecutionMode::parse_env_value(" serial "), Ok(Serial));
        assert_eq!(ExecutionMode::parse_env_value("1"), Ok(Serial));
        assert_eq!(
            ExecutionMode::parse_env_value(" 8 "),
            Ok(Pooled { threads: 8 })
        );
        assert_eq!(
            ExecutionMode::parse_env_value("4"),
            Ok(Pooled { threads: 4 })
        );
        // Malformed values are hard errors, not an all-cores fallback.
        for bad in ["0", "-2", "four", "", "  ", "8x", "1.5"] {
            let err = ExecutionMode::parse_env_value(bad)
                .expect_err(&format!("{bad:?} must be rejected"));
            assert!(
                err.contains(THREADS_ENV_VAR) && err.contains(&format!("{bad:?}")),
                "error for {bad:?} must name the variable and the value: {err}"
            );
        }
    }
}
