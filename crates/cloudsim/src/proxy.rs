//! Request-duplicating proxy.
//!
//! In the paper "DeepDive relies on a proxy that intercepts the clients'
//! traffic to: 1) duplicate and send copies of the requests to the sandboxed
//! environment, and 2) forward the traffic to/from the production VM" (§4.2).
//! The sandboxed clone therefore experiences *the same workload* as the
//! production VM.
//!
//! In the simulation, "the same workload" is exactly the per-epoch intrinsic
//! [`hwsim::ResourceDemand`] the production VM generated.  The proxy records
//! a sliding window of those demands for every VM so the interference
//! analyzer can replay the most recent window in the sandbox and compare
//! counters.

use std::collections::{HashMap, VecDeque};

use hwsim::ResourceDemand;

use crate::pm::VmEpochReport;
use crate::vm::VmId;

/// Default number of recent epochs the proxy retains per VM.
pub const DEFAULT_WINDOW: usize = 32;

/// Sliding window of recent request streams (as demands) per VM.
#[derive(Debug, Default)]
pub struct RequestProxy {
    window: usize,
    recorded: HashMap<VmId, VecDeque<ResourceDemand>>,
}

impl RequestProxy {
    /// Creates a proxy retaining `window` epochs of traffic per VM.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "proxy window must be at least one epoch");
        Self {
            window,
            recorded: HashMap::new(),
        }
    }

    /// Creates a proxy with the default window.
    pub fn with_default_window() -> Self {
        Self::new(DEFAULT_WINDOW)
    }

    /// Records the traffic (demand) observed for a VM this epoch.
    pub fn record(&mut self, vm_id: VmId, demand: ResourceDemand) {
        let entry = self.recorded.entry(vm_id).or_default();
        entry.push_back(demand);
        while entry.len() > self.window {
            entry.pop_front();
        }
    }

    /// Records every report of an epoch in one call.
    pub fn record_reports(&mut self, reports: &[VmEpochReport]) {
        for r in reports {
            self.record(r.vm_id, r.demand.clone());
        }
    }

    /// The recorded demand stream for a VM (oldest first); empty if unknown.
    pub fn replay(&self, vm_id: VmId) -> Vec<ResourceDemand> {
        self.recorded
            .get(&vm_id)
            .map(|d| d.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The most recent `n` recorded demands for a VM (oldest first).
    pub fn replay_last(&self, vm_id: VmId, n: usize) -> Vec<ResourceDemand> {
        let all = self.replay(vm_id);
        let skip = all.len().saturating_sub(n);
        all.into_iter().skip(skip).collect()
    }

    /// Drops everything recorded for a VM (e.g. after it is terminated).
    pub fn forget(&mut self, vm_id: VmId) {
        self.recorded.remove(&vm_id);
    }

    /// Number of epochs currently recorded for a VM.
    pub fn recorded_epochs(&self, vm_id: VmId) -> usize {
        self.recorded.get(&vm_id).map(|d| d.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(i: f64) -> ResourceDemand {
        ResourceDemand::builder().instructions(i).build()
    }

    #[test]
    fn records_and_replays_in_order() {
        let mut proxy = RequestProxy::new(4);
        for i in 0..3 {
            proxy.record(VmId(1), demand(i as f64));
        }
        let replay = proxy.replay(VmId(1));
        assert_eq!(replay.len(), 3);
        assert_eq!(replay[0].instructions, 0.0);
        assert_eq!(replay[2].instructions, 2.0);
    }

    #[test]
    fn window_evicts_oldest_entries() {
        let mut proxy = RequestProxy::new(2);
        for i in 0..5 {
            proxy.record(VmId(1), demand(i as f64));
        }
        let replay = proxy.replay(VmId(1));
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0].instructions, 3.0);
        assert_eq!(replay[1].instructions, 4.0);
    }

    #[test]
    fn replay_last_returns_tail() {
        let mut proxy = RequestProxy::new(10);
        for i in 0..6 {
            proxy.record(VmId(1), demand(i as f64));
        }
        let tail = proxy.replay_last(VmId(1), 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].instructions, 4.0);
        // Asking for more than recorded returns everything.
        assert_eq!(proxy.replay_last(VmId(1), 100).len(), 6);
    }

    #[test]
    fn unknown_vm_replays_nothing() {
        let proxy = RequestProxy::with_default_window();
        assert!(proxy.replay(VmId(42)).is_empty());
        assert_eq!(proxy.recorded_epochs(VmId(42)), 0);
    }

    #[test]
    fn forget_drops_history() {
        let mut proxy = RequestProxy::new(4);
        proxy.record(VmId(1), demand(1.0));
        proxy.forget(VmId(1));
        assert!(proxy.replay(VmId(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_window_rejected() {
        RequestProxy::new(0);
    }
}
