//! Cluster invariant auditing: the checks that make chaos testing honest.
//!
//! The fault plane deliberately drives the cluster through its nastiest
//! transitions — crash drains, evacuations, retried placements, repairs —
//! and a bug in any of them would silently corrupt the bookkeeping the
//! whole simulation rests on.  [`check_cluster`] sweeps a [`Cluster`] and
//! verifies, from the public API alone:
//!
//! * **No VM is resident on two machines** — every VM id appears on at most
//!   one machine's resident list.
//! * **No VM is lost** — every machine-resident VM is located by the
//!   cluster's O(1) id→machine index, the index points back at the hosting
//!   machine, and the index holds no phantom entries (its count equals the
//!   scanned resident count).
//! * **id→index maps are consistent** — [`Cluster::machine`] resolves every
//!   machine id to the machine carrying that id, machine ids are unique,
//!   and each machine's own id→slot map agrees with its resident list.
//! * **Capacity accounting is exact** — per machine, resident vCPUs never
//!   exceed the spec's cores and [`cloudsim::pm::PhysicalMachine::free_cores`]
//!   equals spec cores minus resident vCPUs.
//!
//! Findings come back as human-readable strings (empty = clean); the chaos
//! suite asserts emptiness after every epoch, and
//! [`crate::service::DatacenterService::audit`] layers the service-level
//! invariants (parked VMs are not resident, crashed machines host nothing)
//! on top.
//!
//! [`check_spread`] is a separate, *advisory* check of the failure-domain
//! spread policy: an application with two or more VMs should not have all
//! of them behind one power domain.  It is not part of the hard invariant
//! audit because capacity pressure can legitimately force co-location — the
//! spread constraint is best-effort by design.
//!
//! [`cloudsim::pm::PhysicalMachine::free_cores`]: crate::pm::PhysicalMachine::free_cores

use std::collections::{BTreeMap, BTreeSet};

use crate::cluster::Cluster;
use crate::faults::Topology;
use crate::vm::VmId;
use workloads::AppId;

/// Sweeps every machine and the location index; returns one message per
/// violated invariant (empty when the cluster is consistent).
pub fn check_cluster(cluster: &Cluster) -> Vec<String> {
    let mut findings = Vec::new();
    let mut seen_vms: BTreeSet<VmId> = BTreeSet::new();
    let mut seen_pms = BTreeSet::new();
    let mut scanned = 0usize;

    for machine in cluster.machines() {
        if !seen_pms.insert(machine.id) {
            findings.push(format!("duplicate machine id {}", machine.id));
        }
        match cluster.machine(machine.id) {
            Some(resolved) if resolved.id == machine.id => {}
            Some(resolved) => findings.push(format!(
                "pm index maps {} to a machine carrying id {}",
                machine.id, resolved.id
            )),
            None => findings.push(format!("{} missing from the pm index", machine.id)),
        }

        let mut used_vcpus = 0usize;
        for vm in machine.vms() {
            scanned += 1;
            used_vcpus += vm.vcpus;
            if !seen_vms.insert(vm.id) {
                findings.push(format!("{} is resident on two machines", vm.id));
            }
            if !machine.hosts(vm.id) {
                findings.push(format!(
                    "{} holds {} but its vm-slot map disagrees",
                    machine.id, vm.id
                ));
            }
            match cluster.locate(vm.id) {
                Some(pm) if pm == machine.id => {}
                Some(pm) => findings.push(format!(
                    "{} is resident on {} but the location index says {}",
                    vm.id, machine.id, pm
                )),
                None => findings.push(format!(
                    "{} is resident on {} but lost from the location index",
                    vm.id, machine.id
                )),
            }
        }

        if used_vcpus > machine.spec.cores {
            findings.push(format!(
                "{} overcommitted: {} resident vCPUs on {} cores",
                machine.id, used_vcpus, machine.spec.cores
            ));
        }
        let expected_free = machine.spec.cores.saturating_sub(used_vcpus);
        if machine.free_cores() != expected_free {
            findings.push(format!(
                "{} capacity accounting drifted: free_cores() = {}, expected {}",
                machine.id,
                machine.free_cores(),
                expected_free
            ));
        }
    }

    if cluster.vm_count() != scanned {
        findings.push(format!(
            "location index tracks {} VMs but machines host {} (phantom or lost entries)",
            cluster.vm_count(),
            scanned
        ));
    }

    findings
}

/// Checks the failure-domain spread policy under `topology`: every
/// application with two or more resident VMs should span at least two
/// power domains, provided the fleet itself does (a single-domain fleet
/// cannot spread anything and audits clean by definition).  Returns one
/// message per concentrated application.
///
/// This is advisory, not a hard invariant — under capacity pressure the
/// service places wherever room exists rather than reject, so callers
/// assert emptiness only in scenarios with known headroom.
pub fn check_spread(cluster: &Cluster, topology: &Topology) -> Vec<String> {
    let mut fleet_domains: BTreeSet<u64> = BTreeSet::new();
    let mut apps: BTreeMap<AppId, (usize, BTreeSet<u64>)> = BTreeMap::new();
    for machine in cluster.machines() {
        let domain = topology.domain_of(machine.id);
        fleet_domains.insert(domain);
        for vm in machine.vms() {
            let entry = apps.entry(vm.app_id()).or_default();
            entry.0 += 1;
            entry.1.insert(domain);
        }
    }
    if fleet_domains.len() < 2 {
        return Vec::new();
    }
    apps.iter()
        .filter(|(_, (count, domains))| *count >= 2 && domains.len() < 2)
        .map(|(app, (count, domains))| {
            let domain = domains.first().copied().unwrap_or(0);
            format!(
                "{app:?} concentrates all {count} of its VMs in power domain \
                 {domain} of a {}-domain fleet",
                fleet_domains.len()
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::pm::PmId;
    use crate::scheduler::Scheduler;
    use crate::vm::Vm;
    use hwsim::MachineSpec;
    use workloads::{AppId, ClientEmulator, DataServing};

    fn vm(id: u64) -> Vm {
        Vm::new(
            VmId(id),
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(8_000.0, 4.0),
        )
    }

    #[test]
    fn a_consistent_cluster_audits_clean() {
        let mut cluster = Cluster::homogeneous(3, MachineSpec::xeon_x5472(), Scheduler::default());
        for i in 0..7 {
            cluster.place_first_fit(vm(i)).unwrap();
        }
        cluster.migrate(VmId(0), PmId(2)).unwrap();
        cluster.remove_vm(VmId(3)).unwrap();
        assert_eq!(check_cluster(&cluster), Vec::<String>::new());
    }

    #[test]
    fn a_drained_machine_audits_clean() {
        let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
        for i in 0..5 {
            cluster.place_first_fit(vm(i)).unwrap();
        }
        let drained = cluster.drain_machine(PmId(0));
        assert_eq!(drained.len(), 4);
        assert_eq!(check_cluster(&cluster), Vec::<String>::new());
        assert_eq!(cluster.vm_count(), 1);
    }

    #[test]
    fn an_empty_cluster_audits_clean() {
        let cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
        assert!(check_cluster(&cluster).is_empty());
    }

    #[test]
    fn the_spread_check_fires_on_a_concentrated_app() {
        // Four machines, one per rack, two racks per domain → machines
        // {0, 1} form domain 0, {2, 3} domain 1.
        let topo = Topology::new(1, 2);
        let mut cluster = Cluster::homogeneous(4, MachineSpec::xeon_x5472(), Scheduler::default());
        // Both of app 1's VMs land in domain 0: a violation.
        cluster.place_on(PmId(0), vm(0)).unwrap();
        cluster.place_on(PmId(1), vm(1)).unwrap();
        let findings = check_spread(&cluster, &topo);
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert!(findings[0].contains("power domain 0"), "got: {findings:?}");
        // Moving one VM across the domain boundary clears it.
        cluster.migrate(VmId(1), PmId(2)).unwrap();
        assert_eq!(check_spread(&cluster, &topo), Vec::<String>::new());
    }

    #[test]
    fn the_spread_check_ignores_singletons_and_single_domain_fleets() {
        let mut cluster = Cluster::homogeneous(2, MachineSpec::xeon_x5472(), Scheduler::default());
        cluster.place_on(PmId(0), vm(0)).unwrap();
        cluster.place_on(PmId(0), vm(1)).unwrap();
        // Both machines share the one domain: nothing can be spread.
        assert!(check_spread(&cluster, &Topology::new(2, 1)).is_empty());
        // Two domains, but app 1 has a co-located pair → fires; a lone VM
        // of another app never does.
        let topo = Topology::new(1, 1);
        assert_eq!(check_spread(&cluster, &topo).len(), 1);
        cluster.remove_vm(VmId(1)).unwrap();
        assert!(check_spread(&cluster, &topo).is_empty());
    }
}
