//! A persistent worker pool for epoch-parallel work.
//!
//! [`WorkerPool`] owns long-lived OS threads, one bounded-lifetime work
//! queue per worker, and a barrier-style handoff: [`WorkerPool::scatter`]
//! enqueues one job per shard, runs the first shard on the calling thread,
//! blocks until every job has completed, and returns the results in job
//! order.  This is the execution substrate behind
//! [`ExecutionMode::Pooled`](crate::engine::ExecutionMode::Pooled) — and,
//! via the `deepdive` controller, behind parallel warning-model refits and
//! synthetic-benchmark training.  It exists because spawn-per-step scoped
//! threads made sharded stepping a *pessimization*: the controller loop
//! steps one epoch at a time (it migrates VMs between epochs), so it paid a
//! full thread spawn + join per epoch and could never amortise the way
//! batched `step_epochs` callers do.
//!
//! ## Contract
//!
//! * **Determinism** — the pool never reorders results: `scatter(jobs)`
//!   returns `jobs[i]`'s result at index `i` regardless of which worker ran
//!   it or in what order jobs finished.  Callers that merge shard results
//!   in input order therefore get output bit-identical to running the jobs
//!   serially.
//! * **Panic policy** — every job runs under [`std::panic::catch_unwind`].
//!   A panicking job never takes its worker down; `scatter` waits for the
//!   full barrier (so no job can outlive the borrows it captured), then
//!   re-raises the **first panicking job's payload** (lowest job index) on
//!   the calling thread via [`std::panic::resume_unwind`].  The pool stays
//!   fully usable for the next `scatter`.
//! * **Shutdown** — dropping the pool closes every queue and joins every
//!   worker thread; no threads outlive the pool.
//! * **No nesting** — a job must not call `scatter` on the pool that is
//!   running it: the inner call would enqueue work onto workers that may be
//!   blocked on the outer barrier (including the job's own worker) and
//!   deadlock.  Use a separate pool, or restructure so only the
//!   coordinating thread scatters.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A type-erased unit of work.  Tasks are constructed by [`WorkerPool::
/// scatter`], which guarantees (via its completion barrier) that every
/// borrow a task captures outlives the task — that is what makes the
/// lifetime erasure in `scatter` sound.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Raw-pointer wrapper so a task can carry the address of its private
/// result slot across threads.  Safety rests on `scatter`'s barrier: the
/// slot storage outlives every task, and each task writes only its own
/// slot.
struct SlotPtr<T>(*mut Option<std::thread::Result<T>>);

impl<T> SlotPtr<T> {
    /// Writes the slot through the wrapper (a method, so closures capture
    /// the `Send` wrapper rather than its non-`Send` raw-pointer field).
    ///
    /// # Safety
    /// Caller must guarantee exclusive ownership of the pointee and that it
    /// is alive — `scatter`'s per-task slot assignment plus its barrier.
    unsafe fn write(self, value: Option<std::thread::Result<T>>) {
        self.0.write(value);
    }
}

// SAFETY: the pointee is written exactly once, by exactly one task, and the
// write is published to the coordinating thread through the completion
// channel's happens-before edge.
unsafe impl<T: Send> Send for SlotPtr<T> {}

/// Long-lived worker threads with one work queue each.
///
/// See the [module docs](self) for the determinism, panic and shutdown
/// contract.  The pool is `Send + Sync`; share it across owners with
/// [`std::sync::Arc`] (the epoch engine and the DeepDive controller are
/// designed to share one pool this way).
pub struct WorkerPool {
    /// One queue per worker, index-aligned with `handles`.
    queues: Vec<Sender<Task>>,
    /// The worker threads; joined (in order) on drop, after their queues
    /// are closed.
    handles: Vec<JoinHandle<()>>,
    /// Upgradeable while at least one worker thread is still running —
    /// each worker owns one strong clone of the token, and nothing else
    /// does.  This is what lets lifecycle tests prove drop really joins.
    liveness: std::sync::Weak<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` persistent worker threads.
    ///
    /// `workers` counts *helper* threads only: `scatter` always runs the
    /// first job on the calling thread, so a pool built for `t`-way
    /// parallelism wants `t - 1` workers (see [`WorkerPool::for_threads`]).
    /// A pool with zero workers is valid — `scatter` then runs every job
    /// inline, which is the degenerate serial case.
    pub fn new(workers: usize) -> Self {
        let token = Arc::new(());
        let liveness = Arc::downgrade(&token);
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = mpsc::channel::<Task>();
            let alive = Arc::clone(&token);
            let handle = std::thread::Builder::new()
                .name(format!("cloudsim-pool-{index}"))
                .spawn(move || {
                    let _alive = alive;
                    // Tasks never unwind (scatter wraps every job in
                    // catch_unwind), so this loop only ends when the queue
                    // disconnects at pool drop.
                    for task in rx {
                        task();
                    }
                })
                .expect("spawn cloudsim pool worker");
            queues.push(tx);
            handles.push(handle);
        }
        Self {
            queues,
            handles,
            liveness,
        }
    }

    /// A pool sized for `threads`-way parallelism: `threads - 1` workers
    /// plus the calling thread (`threads <= 1` yields an inline-only pool).
    pub fn for_threads(threads: usize) -> Self {
        Self::new(threads.saturating_sub(1))
    }

    /// Number of worker threads (excluding the calling thread).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Total parallel lanes a `scatter` call can use: the workers plus the
    /// calling thread.
    pub fn lanes(&self) -> usize {
        self.workers() + 1
    }

    /// A probe that upgrades while any worker thread is still running and
    /// fails once the pool has been dropped — the hook lifecycle tests use
    /// to prove drop joins every worker instead of leaking them.
    pub fn liveness(&self) -> std::sync::Weak<()> {
        self.liveness.clone()
    }

    /// Runs the jobs concurrently and returns their results in job order.
    ///
    /// Job 0 runs on the calling thread; jobs `1..` are distributed
    /// round-robin over the per-worker queues (with more jobs than workers,
    /// a worker drains its queue in FIFO order).  The call blocks until
    /// every job has finished — the epoch barrier — and only then returns,
    /// so jobs may freely borrow from the caller's stack.  Panics follow
    /// the [module](self) policy: barrier first, then the lowest-index
    /// panic payload is re-raised here.
    pub fn scatter<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut slots: Vec<Option<std::thread::Result<T>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slot_base = slots.as_mut_ptr();
        let mut jobs = jobs.into_iter();
        let first = jobs.next().expect("n >= 1");
        let dispatched = n - 1;
        let (done_tx, done_rx) = mpsc::channel::<()>();
        for (offset, job) in jobs.enumerate() {
            // SAFETY: index < n, within the `slots` allocation.
            let slot = SlotPtr(unsafe { slot_base.add(offset + 1) });
            let done = done_tx.clone();
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(job));
                // SAFETY: this task exclusively owns its slot, and the
                // barrier below keeps `slots` alive until the completion
                // signal (sent after the write) has been received.
                unsafe { slot.write(Some(result)) };
                let _ = done.send(());
            });
            // SAFETY: lifetime erasure to queue the task on a persistent
            // thread.  The barrier below guarantees the task has finished
            // (or been destroyed unrun, dropping its captures) before any
            // borrow it holds expires, so the 'static lie is never
            // observable.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
            if self.queues.is_empty() {
                task();
            } else if let Err(rejected) = self.queues[offset % self.queues.len()].send(task) {
                // A closed queue is unreachable while the pool is alive
                // (workers only exit when their Sender drops, in Drop), but
                // degrade to inline execution rather than lose the job.
                (rejected.0)();
            }
        }
        drop(done_tx);
        // The calling thread is lane 0.  catch_unwind so a panicking first
        // shard still reaches the barrier below — unwinding past it while
        // workers hold pointers into `slots` would be undefined behaviour.
        let first_result = catch_unwind(AssertUnwindSafe(first));
        // SAFETY: slot 0 belongs to the calling thread; written through the
        // same pointer provenance as the workers' slots.
        unsafe { slot_base.write(Some(first_result)) };
        // The barrier: every dispatched task signals exactly once after
        // writing its slot.  Err (all senders gone) can only mean every
        // remaining task was destroyed without running, so no pointers are
        // outstanding either way.
        for _ in 0..dispatched {
            if done_rx.recv().is_err() {
                break;
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn Any + Send>> = None;
        for slot in slots {
            match slot.expect("barrier guarantees every job ran") {
                Ok(value) => out.push(value),
                Err(payload) => {
                    panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing a worker's queue ends its receive loop; joining then
        // completes promptly.  Workers never unwind (tasks are
        // catch_unwind-wrapped), so a join error is unreachable.
        self.queues.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Splits `items` into at most `shards` contiguous chunks whose lengths
/// differ by at most one (the first `len % shards` chunks take the extra
/// item).  With `len >= shards` the result has **exactly** `shards`
/// non-empty chunks — unlike `chunks_mut(len.div_ceil(shards))`, which can
/// produce far fewer (65 items at 64 shards → 33 chunks of 2, half the
/// workers idle).  Concatenating the chunks in order reproduces `items`.
pub fn split_balanced<T>(mut items: &mut [T], shards: usize) -> Vec<&mut [T]> {
    let shards = shards.clamp(1, items.len().max(1));
    let base = items.len() / shards;
    let extra = items.len() % shards;
    let mut out = Vec::with_capacity(shards);
    for index in 0..shards {
        let take = base + usize::from(index < extra);
        let (head, rest) = items.split_at_mut(take);
        out.push(head);
        items = rest;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_preserves_job_order() {
        let pool = WorkerPool::new(3);
        for jobs in [1usize, 2, 4, 17] {
            let work: Vec<_> = (0..jobs).map(|i| move || i * i).collect();
            let results = pool.scatter(work);
            let expected: Vec<_> = (0..jobs).map(|i| i * i).collect();
            assert_eq!(results, expected, "order lost at {jobs} jobs");
        }
    }

    #[test]
    fn scatter_runs_inline_with_zero_workers() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        assert_eq!(pool.lanes(), 1);
        let results = pool.scatter((0..5).map(|i| move || i + 10).collect::<Vec<_>>());
        assert_eq!(results, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn scatter_borrows_caller_state_mutably() {
        let pool = WorkerPool::new(2);
        let mut buckets = [0u64; 6];
        {
            let shards = split_balanced(&mut buckets, 3);
            let jobs: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(i, shard)| {
                    move || {
                        for slot in shard.iter_mut() {
                            *slot = 100 + i as u64;
                        }
                    }
                })
                .collect();
            pool.scatter(jobs);
        }
        assert_eq!(buckets, [100, 100, 101, 101, 102, 102]);
    }

    #[test]
    fn panic_payload_of_the_lowest_index_job_is_reraised() {
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(
                (0..6)
                    .map(|i| {
                        move || {
                            if i >= 2 {
                                panic!("job {i} failed");
                            }
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        let payload = result.expect_err("scatter must re-raise the panic");
        let message = payload
            .downcast_ref::<String>()
            .expect("payload preserved verbatim");
        assert_eq!(message, "job 2 failed");
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        let pool = WorkerPool::new(2);
        for round in 0..3 {
            let crashed = catch_unwind(AssertUnwindSafe(|| {
                pool.scatter(
                    (0..4)
                        .map(|i| move || if i == 3 { panic!("boom {round}") } else { i })
                        .collect::<Vec<_>>(),
                )
            }));
            assert!(crashed.is_err());
            // The pool must keep working after every crash.
            let ok = pool.scatter((0..4).map(|i| move || i * 2).collect::<Vec<_>>());
            assert_eq!(ok, vec![0, 2, 4, 6]);
        }
    }

    #[test]
    fn drop_joins_every_worker() {
        let pool = WorkerPool::new(4);
        let probe = pool.liveness();
        assert!(probe.upgrade().is_some(), "workers must be running");
        drop(pool);
        assert!(
            probe.upgrade().is_none(),
            "drop returned before all workers exited"
        );
    }

    #[test]
    fn repeated_construction_leaks_no_threads() {
        let mut probes = Vec::new();
        for _ in 0..32 {
            let pool = WorkerPool::new(4);
            pool.scatter((0..8).map(|i| move || i).collect::<Vec<_>>());
            probes.push(pool.liveness());
        }
        for (i, probe) in probes.iter().enumerate() {
            assert!(probe.upgrade().is_none(), "pool {i} leaked workers");
        }
    }

    #[test]
    fn balanced_split_produces_exactly_the_requested_shards() {
        // (len, shards, expected shard count) — including the 65-at-64 case
        // the old div_ceil chunking got wrong (33 shards of 2).
        for (len, shards, expected) in [
            (65usize, 64usize, 64usize),
            (7, 3, 3),
            (16, 5, 5),
            (12, 4, 4),
            (3, 8, 3),
            (1, 1, 1),
            (1, 16, 1),
            (0, 4, 1),
        ] {
            let mut items: Vec<usize> = (0..len).collect();
            let chunks = split_balanced(&mut items, shards);
            assert_eq!(chunks.len(), expected, "{len} items at {shards} shards");
            let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
            let max = sizes.iter().max().copied().unwrap_or(0);
            let min = sizes.iter().min().copied().unwrap_or(0);
            assert!(
                max - min <= 1,
                "{len} items at {shards} shards: uneven sizes {sizes:?}"
            );
            let rejoined: Vec<usize> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            let expected_items: Vec<usize> = (0..len).collect();
            assert_eq!(rejoined, expected_items, "order not preserved");
        }
    }

    #[test]
    fn more_jobs_than_workers_queue_fifo_per_worker() {
        let pool = WorkerPool::new(2);
        let results = pool.scatter((0..33).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(results, (0..33).collect::<Vec<_>>());
    }
}
