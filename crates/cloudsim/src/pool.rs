//! A persistent worker pool for epoch-parallel work.
//!
//! [`WorkerPool`] owns long-lived OS threads, one bounded-lifetime work
//! queue per worker, and a barrier-style handoff: [`WorkerPool::scatter_map`]
//! enqueues one task per item, runs the first item on the calling thread,
//! blocks until every task has completed, and returns the results in item
//! order.  This is the execution substrate behind
//! [`ExecutionMode::Pooled`](crate::engine::ExecutionMode::Pooled) — and,
//! via the `deepdive` controller, behind parallel warning-model refits and
//! synthetic-benchmark training.  It exists because spawn-per-step scoped
//! threads made sharded stepping a *pessimization*: the controller loop
//! steps one epoch at a time (it migrates VMs between epochs), so it paid a
//! full thread spawn + join per epoch and could never amortise the way
//! batched `step_epochs` callers do.
//!
//! Two entry points share the machinery: [`WorkerPool::scatter_map`] maps a
//! shared function over a mutable slice with **zero heap allocation per
//! item** (tasks are two-word raw descriptors pointing into a caller-owned
//! context arena — what per-epoch callers like the engine's pooled shard
//! loop want, since they re-scatter every epoch), and [`WorkerPool::scatter`]
//! wraps it for one-shot heterogeneous closures.
//!
//! ## Contract
//!
//! * **Determinism** — the pool never reorders results: `scatter(jobs)`
//!   returns `jobs[i]`'s result at index `i` regardless of which worker ran
//!   it or in what order jobs finished.  Callers that merge shard results
//!   in input order therefore get output bit-identical to running the jobs
//!   serially.
//! * **Panic policy** — every job runs under [`std::panic::catch_unwind`].
//!   A panicking job never takes its worker down; the scatter waits for the
//!   full barrier (so no job can outlive the borrows it captured), then
//!   re-raises the **first panicking job's payload** (lowest job index) on
//!   the calling thread via [`std::panic::resume_unwind`].  The pool stays
//!   fully usable for the next scatter.
//! * **Shutdown** — dropping the pool closes every queue and joins every
//!   worker thread; no threads outlive the pool.
//! * **No nesting** — a job must not scatter on the pool that is running
//!   it: the inner call would enqueue work onto workers that may be
//!   blocked on the outer barrier (including the job's own worker) and
//!   deadlock.  Use a separate pool, or restructure so only the
//!   coordinating thread scatters.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A type-erased unit of work: a monomorphised trampoline plus the context
/// it runs on.  Tasks are constructed by [`WorkerPool::scatter_map`], whose
/// completion barrier guarantees the context outlives the task — that is
/// what makes sending raw pointers to persistent threads sound.  Unlike a
/// boxed closure, a `RawTask` is two words and allocates nothing, so
/// batched callers (the epoch engine re-scatters its shards every epoch)
/// pay zero heap churn per job.
struct RawTask {
    /// Trampoline that knows the concrete context type behind `ctx`.
    // SAFETY: calling this is sound only with the `ctx` pointer stored
    // alongside it — `scatter_map` monomorphises the trampoline and builds
    // the pair together, so the pointee type always matches.
    run: unsafe fn(*const ()),
    /// Points into the coordinating thread's context arena.
    ctx: *const (),
}

// SAFETY: the context behind `ctx` is owned by the coordinating thread,
// which keeps it alive and un-moved until every task has signalled
// completion (the scatter barrier); each task reads only its own context
// and writes only through that context's item/slot pointers, which target
// storage disjoint from every other task's.
unsafe impl Send for RawTask {}

/// Per-item context for [`WorkerPool::scatter_map`]: everything the
/// trampoline needs, laid out in an arena the coordinating thread owns for
/// the duration of the call.
struct MapCtx<I, T, F> {
    /// The item this task maps — element `i` of the caller's slice; no two
    /// contexts alias.
    item: *mut I,
    /// Where this task's result lands — element `i` of the result arena;
    /// no two contexts alias.
    slot: *mut Option<std::thread::Result<T>>,
    /// The shared map function (`F: Sync` at the only construction site,
    /// so concurrent shared calls are sound).
    f: *const F,
    /// Completion signal; exactly one send, after the slot write.
    done: Sender<()>,
}

/// The trampoline behind [`WorkerPool::scatter_map`]: runs the map function
/// on the context's item under `catch_unwind`, stores the result, signals
/// the barrier.  Never unwinds, so a worker's receive loop survives any
/// panicking job.
///
/// # Safety
/// `ctx` must point to a live `MapCtx<I, T, F>` whose item and slot
/// pointers are exclusively owned by this call (scatter_map's arena
/// construction) and stay alive until its `done` signal has been received
/// (scatter_map's barrier).
unsafe fn run_map<I, T, F: Fn(&mut I) -> T>(ctx: *const ()) {
    // SAFETY: caller contract — `ctx` points to a live `MapCtx<I, T, F>`
    // that outlives this call.
    let ctx = unsafe { &*ctx.cast::<MapCtx<I, T, F>>() };
    // SAFETY: caller contract — `f` is a live `Sync` function shared by
    // every task, and `item` is storage this task exclusively owns.
    let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*ctx.f)(&mut *ctx.item) }));
    // SAFETY: caller contract — `slot` is storage this task exclusively
    // owns; the write is published to the coordinating thread through the
    // completion channel's happens-before edge.
    unsafe { ctx.slot.write(Some(result)) };
    let _ = ctx.done.send(());
}

/// Long-lived worker threads with one work queue each.
///
/// See the [module docs](self) for the determinism, panic and shutdown
/// contract.  The pool is `Send + Sync`; share it across owners with
/// [`std::sync::Arc`] (the epoch engine and the DeepDive controller are
/// designed to share one pool this way).
pub struct WorkerPool {
    /// One queue per worker, index-aligned with `handles`.
    queues: Vec<Sender<RawTask>>,
    /// The worker threads; joined (in order) on drop, after their queues
    /// are closed.
    handles: Vec<JoinHandle<()>>,
    /// Upgradeable while at least one worker thread is still running —
    /// each worker owns one strong clone of the token, and nothing else
    /// does.  This is what lets lifecycle tests prove drop really joins.
    liveness: std::sync::Weak<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` persistent worker threads.
    ///
    /// `workers` counts *helper* threads only: `scatter` always runs the
    /// first job on the calling thread, so a pool built for `t`-way
    /// parallelism wants `t - 1` workers (see [`WorkerPool::for_threads`]).
    /// A pool with zero workers is valid — `scatter` then runs every job
    /// inline, which is the degenerate serial case.
    pub fn new(workers: usize) -> Self {
        let token = Arc::new(());
        let liveness = Arc::downgrade(&token);
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = mpsc::channel::<RawTask>();
            let alive = Arc::clone(&token);
            let handle = std::thread::Builder::new()
                .name(format!("cloudsim-pool-{index}"))
                .spawn(move || {
                    let _alive = alive;
                    // Tasks never unwind (the trampoline wraps every job
                    // in catch_unwind), so this loop only ends when the
                    // queue disconnects at pool drop.
                    for task in rx {
                        // SAFETY: `scatter_map` keeps the task's context
                        // alive and un-moved until its completion barrier,
                        // and no other task shares this task's item/slot
                        // storage.
                        unsafe { (task.run)(task.ctx) };
                    }
                })
                .expect("spawn cloudsim pool worker");
            queues.push(tx);
            handles.push(handle);
        }
        Self {
            queues,
            handles,
            liveness,
        }
    }

    /// A pool sized for `threads`-way parallelism: `threads - 1` workers
    /// plus the calling thread (`threads <= 1` yields an inline-only pool).
    pub fn for_threads(threads: usize) -> Self {
        Self::new(threads.saturating_sub(1))
    }

    /// Number of worker threads (excluding the calling thread).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Total parallel lanes a `scatter` call can use: the workers plus the
    /// calling thread.
    pub fn lanes(&self) -> usize {
        self.workers() + 1
    }

    /// A probe that upgrades while any worker thread is still running and
    /// fails once the pool has been dropped — the hook lifecycle tests use
    /// to prove drop joins every worker instead of leaking them.
    pub fn liveness(&self) -> std::sync::Weak<()> {
        self.liveness.clone()
    }

    /// Maps `f` over `items` concurrently, in place, returning the results
    /// in item order.
    ///
    /// This is the allocation-free scatter primitive: per call it allocates
    /// only the context arena and the result vector — tasks are two-word
    /// raw descriptors, never boxed closures — so batched callers (the
    /// epoch engine re-scatters its shards every single epoch) pay zero
    /// heap churn per job.
    ///
    /// Item 0 runs on the calling thread; items `1..` are distributed
    /// round-robin over the per-worker queues (with more items than
    /// workers, a worker drains its queue in FIFO order).  The call blocks
    /// until every item has been mapped — the epoch barrier — and only then
    /// returns, so `f` may freely borrow from the caller's stack.  Panics
    /// follow the [module](self) policy: barrier first, then the
    /// lowest-index panic payload is re-raised here.
    pub fn scatter_map<I, T, F>(&self, items: &mut [I], f: &F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(&mut I) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let mut slots: Vec<Option<std::thread::Result<T>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let (done_tx, done_rx) = mpsc::channel::<()>();
        // The context arena: fully built before anything is dispatched, so
        // it never reallocates while workers hold pointers into it.
        let mut ctxs: Vec<MapCtx<I, T, F>> = Vec::with_capacity(n);
        for (item, slot) in items.iter_mut().zip(slots.iter_mut()) {
            ctxs.push(MapCtx {
                item,
                slot,
                f,
                done: done_tx.clone(),
            });
        }
        drop(done_tx);
        for (index, ctx) in ctxs.iter().enumerate().skip(1) {
            let task = RawTask {
                run: run_map::<I, T, F>,
                ctx: (ctx as *const MapCtx<I, T, F>).cast(),
            };
            if self.queues.is_empty() {
                // SAFETY: the context is alive (arena above) and
                // exclusively owns its item/slot; inline execution
                // trivially precedes the barrier.
                unsafe { (task.run)(task.ctx) };
            } else if let Err(rejected) = self.queues[(index - 1) % self.queues.len()].send(task) {
                // A closed queue is unreachable while the pool is alive
                // (workers only exit when their Sender drops, in Drop), but
                // degrade to inline execution rather than lose the job.
                // SAFETY: as for the inline branch above.
                unsafe { ((rejected.0).run)((rejected.0).ctx) };
            }
        }
        // The calling thread is lane 0.  The trampoline catches panics, so
        // a panicking item 0 still reaches the barrier below — unwinding
        // past it while workers hold pointers into the arena would be
        // undefined behaviour.
        // SAFETY: context 0 is alive and exclusively owns its item/slot.
        unsafe { run_map::<I, T, F>((&ctxs[0] as *const MapCtx<I, T, F>).cast()) };
        // The barrier: every task (including item 0's inline run) signals
        // exactly once, after writing its slot, so `n` receipts prove every
        // slot is written and no pointers into the arena or the caller's
        // slice remain in use.  Err (all senders gone) is unreachable while
        // `ctxs` holds the senders, but would only mean no further signal
        // can arrive.
        for _ in 0..n {
            if done_rx.recv().is_err() {
                break;
            }
        }
        drop(ctxs);
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn Any + Send>> = None;
        for slot in slots {
            match slot.expect("barrier guarantees every item was mapped") {
                Ok(value) => out.push(value),
                Err(payload) => {
                    panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        out
    }

    /// Runs the jobs concurrently and returns their results in job order.
    ///
    /// A convenience wrapper over [`WorkerPool::scatter_map`] for one-shot
    /// heterogeneous closures; same dispatch, barrier and panic behaviour.
    /// Costs one `Option` wrapper per job — callers on a per-epoch hot path
    /// should use `scatter_map` directly over their shard slice.
    pub fn scatter<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        let mut jobs: Vec<Option<F>> = jobs.into_iter().map(Some).collect();
        self.scatter_map(&mut jobs, &|job: &mut Option<F>| match job.take() {
            Some(job) => job(),
            None => unreachable!("scatter_map visits each item exactly once"),
        })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing a worker's queue ends its receive loop; joining then
        // completes promptly.  Workers never unwind (tasks are
        // catch_unwind-wrapped), so a join error is unreachable.
        self.queues.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Splits `items` into at most `shards` contiguous chunks whose lengths
/// differ by at most one (the first `len % shards` chunks take the extra
/// item).  With `len >= shards` the result has **exactly** `shards`
/// non-empty chunks — unlike `chunks_mut(len.div_ceil(shards))`, which can
/// produce far fewer (65 items at 64 shards → 33 chunks of 2, half the
/// workers idle).  Concatenating the chunks in order reproduces `items`.
pub fn split_balanced<T>(mut items: &mut [T], shards: usize) -> Vec<&mut [T]> {
    let shards = shards.clamp(1, items.len().max(1));
    let base = items.len() / shards;
    let extra = items.len() % shards;
    let mut out = Vec::with_capacity(shards);
    for index in 0..shards {
        let take = base + usize::from(index < extra);
        let (head, rest) = items.split_at_mut(take);
        out.push(head);
        items = rest;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_preserves_job_order() {
        let pool = WorkerPool::new(3);
        for jobs in [1usize, 2, 4, 17] {
            let work: Vec<_> = (0..jobs).map(|i| move || i * i).collect();
            let results = pool.scatter(work);
            let expected: Vec<_> = (0..jobs).map(|i| i * i).collect();
            assert_eq!(results, expected, "order lost at {jobs} jobs");
        }
    }

    #[test]
    fn scatter_runs_inline_with_zero_workers() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        assert_eq!(pool.lanes(), 1);
        let results = pool.scatter((0..5).map(|i| move || i + 10).collect::<Vec<_>>());
        assert_eq!(results, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn scatter_borrows_caller_state_mutably() {
        let pool = WorkerPool::new(2);
        let mut buckets = [0u64; 6];
        {
            let shards = split_balanced(&mut buckets, 3);
            let jobs: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(i, shard)| {
                    move || {
                        for slot in shard.iter_mut() {
                            *slot = 100 + i as u64;
                        }
                    }
                })
                .collect();
            pool.scatter(jobs);
        }
        assert_eq!(buckets, [100, 100, 101, 101, 102, 102]);
    }

    #[test]
    fn panic_payload_of_the_lowest_index_job_is_reraised() {
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(
                (0..6)
                    .map(|i| {
                        move || {
                            if i >= 2 {
                                panic!("job {i} failed");
                            }
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        let payload = result.expect_err("scatter must re-raise the panic");
        let message = payload
            .downcast_ref::<String>()
            .expect("payload preserved verbatim");
        assert_eq!(message, "job 2 failed");
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        let pool = WorkerPool::new(2);
        for round in 0..3 {
            let crashed = catch_unwind(AssertUnwindSafe(|| {
                pool.scatter(
                    (0..4)
                        .map(|i| move || if i == 3 { panic!("boom {round}") } else { i })
                        .collect::<Vec<_>>(),
                )
            }));
            assert!(crashed.is_err());
            // The pool must keep working after every crash.
            let ok = pool.scatter((0..4).map(|i| move || i * 2).collect::<Vec<_>>());
            assert_eq!(ok, vec![0, 2, 4, 6]);
        }
    }

    #[test]
    fn drop_joins_every_worker() {
        let pool = WorkerPool::new(4);
        let probe = pool.liveness();
        assert!(probe.upgrade().is_some(), "workers must be running");
        drop(pool);
        assert!(
            probe.upgrade().is_none(),
            "drop returned before all workers exited"
        );
    }

    #[test]
    fn repeated_construction_leaks_no_threads() {
        let mut probes = Vec::new();
        for _ in 0..32 {
            let pool = WorkerPool::new(4);
            pool.scatter((0..8).map(|i| move || i).collect::<Vec<_>>());
            probes.push(pool.liveness());
        }
        for (i, probe) in probes.iter().enumerate() {
            assert!(probe.upgrade().is_none(), "pool {i} leaked workers");
        }
    }

    #[test]
    fn balanced_split_produces_exactly_the_requested_shards() {
        // (len, shards, expected shard count) — including the 65-at-64 case
        // the old div_ceil chunking got wrong (33 shards of 2).
        for (len, shards, expected) in [
            (65usize, 64usize, 64usize),
            (7, 3, 3),
            (16, 5, 5),
            (12, 4, 4),
            (3, 8, 3),
            (1, 1, 1),
            (1, 16, 1),
            (0, 4, 1),
        ] {
            let mut items: Vec<usize> = (0..len).collect();
            let chunks = split_balanced(&mut items, shards);
            assert_eq!(chunks.len(), expected, "{len} items at {shards} shards");
            let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
            let max = sizes.iter().max().copied().unwrap_or(0);
            let min = sizes.iter().min().copied().unwrap_or(0);
            assert!(
                max - min <= 1,
                "{len} items at {shards} shards: uneven sizes {sizes:?}"
            );
            let rejoined: Vec<usize> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            let expected_items: Vec<usize> = (0..len).collect();
            assert_eq!(rejoined, expected_items, "order not preserved");
        }
    }

    #[test]
    fn more_jobs_than_workers_queue_fifo_per_worker() {
        let pool = WorkerPool::new(2);
        let results = pool.scatter((0..33).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(results, (0..33).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_map_mutates_in_place_and_returns_in_order() {
        let pool = WorkerPool::new(3);
        for n in [1usize, 2, 4, 17] {
            let mut items: Vec<u64> = (0..n as u64).collect();
            let results = pool.scatter_map(&mut items, &|item: &mut u64| {
                *item += 100;
                *item * 2
            });
            let expected_items: Vec<u64> = (0..n as u64).map(|i| i + 100).collect();
            let expected_results: Vec<u64> = expected_items.iter().map(|i| i * 2).collect();
            assert_eq!(items, expected_items, "in-place mutation lost at {n}");
            assert_eq!(results, expected_results, "order lost at {n}");
        }
    }

    #[test]
    fn scatter_map_runs_inline_with_zero_workers() {
        let pool = WorkerPool::new(0);
        let mut items = [1u32, 2, 3];
        let results = pool.scatter_map(&mut items, &|item: &mut u32| *item * 10);
        assert_eq!(results, vec![10, 20, 30]);
    }

    #[test]
    fn scatter_map_reraises_the_lowest_index_panic() {
        let pool = WorkerPool::new(3);
        let mut items: Vec<usize> = (0..6).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scatter_map(&mut items, &|item: &mut usize| {
                if *item >= 2 {
                    panic!("item {item} failed");
                }
                *item
            })
        }));
        let payload = result.expect_err("scatter_map must re-raise the panic");
        let message = payload
            .downcast_ref::<String>()
            .expect("payload preserved verbatim");
        assert_eq!(message, "item 2 failed");
        // The pool must keep working after the crash.
        let mut items = [5u32];
        assert_eq!(pool.scatter_map(&mut items, &|i: &mut u32| *i), vec![5]);
    }

    #[test]
    fn scatter_map_results_can_borrow_via_pure_values() {
        // A map function shared by reference across threads: sums into
        // per-item results with no interior mutability needed.
        let pool = WorkerPool::new(2);
        let bias = 7u64;
        let f = |item: &mut u64| *item + bias;
        let mut items: Vec<u64> = (0..9).collect();
        let results = pool.scatter_map(&mut items, &f);
        assert_eq!(results, (7..16).collect::<Vec<u64>>());
    }
}
