//! The simulated datacenter: a set of physical machines, epoch stepping and
//! VM migration.
//!
//! The cluster is the object the end-to-end DeepDive controller drives: each
//! epoch it produces the full set of per-VM reports (counters for DeepDive,
//! ground truth for the evaluation), and the placement manager calls
//! [`Cluster::migrate`] when interference mitigation requires moving a VM.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::RngCore;

use crate::migration::{estimate_migration, MigrationCost};
use crate::pm::{PhysicalMachine, PmId, VmEpochReport};
use crate::rngs::ClusterSeed;
use crate::scheduler::Scheduler;
use crate::vm::{Vm, VmId};
use hwsim::MachineSpec;

/// Errors returned by cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The referenced VM does not exist anywhere in the cluster.
    UnknownVm(VmId),
    /// The referenced machine does not exist.
    UnknownPm(PmId),
    /// The destination machine rejected the VM (no capacity).
    NoCapacity {
        /// The VM that could not be placed.
        vm: VmId,
        /// The machine that rejected it.
        pm: PmId,
    },
    /// No machine anywhere in the cluster could take the VM (first-fit
    /// placement exhausted every machine).
    ClusterFull {
        /// The VM that could not be placed.
        vm: VmId,
    },
    /// The VM is already on the requested destination.
    AlreadyPlaced {
        /// The VM in question.
        vm: VmId,
        /// The machine it already occupies.
        pm: PmId,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownVm(vm) => write!(f, "unknown VM {vm}"),
            ClusterError::UnknownPm(pm) => write!(f, "unknown PM {pm}"),
            ClusterError::NoCapacity { vm, pm } => write!(f, "{pm} has no capacity for {vm}"),
            ClusterError::ClusterFull { vm } => {
                write!(f, "no machine in the cluster has capacity for {vm}")
            }
            ClusterError::AlreadyPlaced { vm, pm } => write!(f, "{vm} is already on {pm}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Network bandwidth available for migrations, MiB/s (1-Gb links, §5.1).
const MIGRATION_BANDWIDTH_MB_PER_S: f64 = 100.0;
/// Assumed page-dirtying rate of a busy cloud VM during migration, MiB/s.
const MIGRATION_DIRTY_RATE_MB_PER_S: f64 = 20.0;

/// The datacenter.
pub struct Cluster {
    machines: Vec<PhysicalMachine>,
    epoch: u64,
    /// Machine id → index into `machines`, so per-machine lookups are O(1)
    /// instead of a scan per migration or report.
    pm_index: HashMap<PmId, usize>,
    /// VM id → hosting machine, maintained by every placement, migration and
    /// removal; the backing store for O(1) [`Cluster::locate`].
    vm_locations: HashMap<VmId, PmId>,
}

impl Cluster {
    /// Creates a cluster of `n` identical machines with the given scheduler.
    pub fn homogeneous(n: usize, spec: MachineSpec, scheduler: Scheduler) -> Self {
        assert!(n > 0, "a cluster needs at least one machine");
        let machines = (0..n)
            .map(|i| PhysicalMachine::new(PmId(i as u64), spec.clone(), scheduler))
            .collect();
        Self::from_machines(machines)
    }

    /// Creates a mixed-hardware cluster: for each `(spec, count)` group, in
    /// order, `count` machines of that model, with machine ids assigned
    /// sequentially across groups.  Sugar over [`Cluster::from_machines`]
    /// for the ROADMAP's heterogeneous-fleet scenario (e.g. a Xeon X5472
    /// rack extended with Core i7/Nehalem nodes, §4.4).
    ///
    /// # Panics
    /// Panics if the groups describe zero machines in total.
    pub fn heterogeneous(specs: &[(MachineSpec, usize)], scheduler: Scheduler) -> Self {
        let machines: Vec<PhysicalMachine> = specs
            .iter()
            .flat_map(|(spec, count)| std::iter::repeat_n(spec, *count))
            .enumerate()
            .map(|(i, spec)| PhysicalMachine::new(PmId(i as u64), spec.clone(), scheduler))
            .collect();
        Self::from_machines(machines)
    }

    /// Creates a cluster from explicit machines.
    ///
    /// # Panics
    /// Panics if the machine list is empty or two machines share an id.
    pub fn from_machines(machines: Vec<PhysicalMachine>) -> Self {
        assert!(!machines.is_empty(), "a cluster needs at least one machine");
        let mut pm_index = HashMap::with_capacity(machines.len());
        let mut vm_locations = HashMap::new();
        for (idx, machine) in machines.iter().enumerate() {
            let previous = pm_index.insert(machine.id, idx);
            assert!(previous.is_none(), "duplicate machine id {}", machine.id);
            for vm in machine.vms() {
                vm_locations.insert(vm.id, machine.id);
            }
        }
        Self {
            machines,
            epoch: 0,
            pm_index,
            vm_locations,
        }
    }

    /// The machines, in id order.
    pub fn machines(&self) -> &[PhysicalMachine] {
        &self.machines
    }

    /// Mutable access to every machine at once, for the epoch engine's
    /// shard partitioning (crate-private: VM membership must change through
    /// the cluster's methods so the VM-location index stays consistent).
    pub(crate) fn machines_mut(&mut self) -> &mut [PhysicalMachine] {
        &mut self.machines
    }

    /// Marks one more epoch as completed (called by the epoch engine after
    /// every machine has been stepped).
    pub(crate) fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Mutable access to one machine (its VM membership can only change
    /// through cluster methods — [`Cluster::place_on`], [`Cluster::migrate`],
    /// [`Cluster::remove_vm`] — which keep the VM-location index in sync).
    pub fn machine_mut(&mut self, pm: PmId) -> Option<&mut PhysicalMachine> {
        let idx = *self.pm_index.get(&pm)?;
        Some(&mut self.machines[idx])
    }

    /// Shared access to one machine.
    pub fn machine(&self, pm: PmId) -> Option<&PhysicalMachine> {
        let idx = *self.pm_index.get(&pm)?;
        Some(&self.machines[idx])
    }

    /// Current epoch index (number of completed epochs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The machine currently hosting a VM.
    pub fn locate(&self, vm: VmId) -> Option<PmId> {
        self.vm_locations.get(&vm).copied()
    }

    /// Total number of VMs across the cluster.
    pub fn vm_count(&self) -> usize {
        self.vm_locations.len()
    }

    /// Machine-epochs resolved densely (contention model actually run) since
    /// the cluster was built, summed over all machines.
    pub fn total_resolves(&self) -> u64 {
        self.machines.iter().map(|m| m.resolves()).sum()
    }

    /// Machine-epochs served from the quiescent report cache instead of
    /// being resolved, summed over all machines.
    pub fn total_quiescent_steps(&self) -> u64 {
        self.machines.iter().map(|m| m.quiescent_steps()).sum()
    }

    /// Places a VM on a specific machine.
    pub fn place_on(&mut self, pm: PmId, vm: Vm) -> Result<(), ClusterError> {
        self.place_on_returning(pm, vm).map_err(|(_, error)| error)
    }

    /// Like [`Cluster::place_on`], but hands the VM back alongside the error
    /// instead of dropping it — the building block for multi-attempt callers
    /// (the service's hint/scan and crash-evacuation paths), which would
    /// otherwise have to rebuild the VM per attempt.
    pub fn place_on_returning(&mut self, pm: PmId, vm: Vm) -> Result<(), (Vm, ClusterError)> {
        let vm_id = vm.id;
        let Some(machine) = self.machine_mut(pm) else {
            return Err((vm, ClusterError::UnknownPm(pm)));
        };
        match machine.try_add_vm(vm) {
            Ok(()) => {
                self.vm_locations.insert(vm_id, pm);
                Ok(())
            }
            Err(rejected) => Err((rejected, ClusterError::NoCapacity { vm: vm_id, pm })),
        }
    }

    /// Removes every VM from `pm` (a machine crash being drained), in
    /// placement order, keeping the location index consistent.  Returns the
    /// evacuees so the caller can re-place them across the surviving fleet;
    /// an unknown machine drains to an empty list.  The machine's membership
    /// generation is bumped, so its quiescent cache can never replay
    /// pre-crash reports after it rejoins.
    pub fn drain_machine(&mut self, pm: PmId) -> Vec<Vm> {
        let Some(machine) = self.machine_mut(pm) else {
            return Vec::new();
        };
        let drained = machine.drain_vms();
        for vm in &drained {
            self.vm_locations.remove(&vm.id);
        }
        drained
    }

    /// Places a VM on the first machine with capacity (first-fit); returns
    /// the chosen machine.
    pub fn place_first_fit(&mut self, vm: Vm) -> Result<PmId, ClusterError> {
        let vm_id = vm.id;
        let mut vm = vm;
        for machine in self.machines.iter_mut() {
            match machine.try_add_vm(vm) {
                Ok(()) => {
                    self.vm_locations.insert(vm_id, machine.id);
                    return Ok(machine.id);
                }
                Err(rejected) => vm = rejected,
            }
        }
        Err(ClusterError::ClusterFull { vm: vm_id })
    }

    /// Removes a VM from the cluster (e.g. a terminated aggressor or an
    /// expired synthetic clone) and returns it; `None` if it is not placed
    /// anywhere.
    pub fn remove_vm(&mut self, vm: VmId) -> Option<Vm> {
        let pm = self.locate(vm)?;
        let removed = self
            .machine_mut(pm)
            .expect("located machine exists")
            .remove_vm(vm)?;
        self.vm_locations.remove(&vm);
        Some(removed)
    }

    /// Advances every machine one epoch and returns all per-VM reports.
    ///
    /// Compatibility wrapper over the old shared-`StdRng` signature: it
    /// draws one value from `rng` to derive a per-epoch [`ClusterSeed`] and
    /// then steps serially with the same per-`(vm, epoch)` streams
    /// [`crate::engine::EpochEngine`] uses, so results remain deterministic
    /// for a given caller RNG state (though numerically different from the
    /// pre-engine shared-stream runs).  New code should hold an
    /// [`crate::engine::EpochEngine`] and call
    /// [`step`](crate::engine::EpochEngine::step) instead — it exposes the
    /// sharded execution mode and keeps one seed for the whole run.
    #[deprecated(
        since = "0.2.0",
        note = "use cloudsim::EpochEngine::step with a ClusterSeed; it is placement- and \
                thread-order independent and supports sharded execution"
    )]
    pub fn step_epoch(
        &mut self,
        load_for: &dyn Fn(VmId) -> f64,
        rng: &mut StdRng,
    ) -> Vec<VmEpochReport> {
        let seed = ClusterSeed::new(rng.next_u64());
        let epoch = self.epoch;
        let mut reports = Vec::new();
        for machine in self.machines.iter_mut() {
            reports.extend(machine.step_epoch(epoch, load_for, seed));
        }
        self.epoch += 1;
        reports
    }

    /// Migrates a VM to the given destination machine, returning the
    /// estimated migration cost.
    pub fn migrate(&mut self, vm: VmId, to: PmId) -> Result<MigrationCost, ClusterError> {
        let from = self.locate(vm).ok_or(ClusterError::UnknownVm(vm))?;
        if from == to {
            return Err(ClusterError::AlreadyPlaced { vm, pm: to });
        }
        if self.machine(to).is_none() {
            return Err(ClusterError::UnknownPm(to));
        }
        let moved = self
            .machine_mut(from)
            .expect("source machine exists")
            .remove_vm(vm)
            .expect("vm located on source");
        let memory_mb = moved.memory_mb;
        match self
            .machine_mut(to)
            .expect("destination exists")
            .try_add_vm(moved)
        {
            Ok(()) => {
                self.vm_locations.insert(vm, to);
                Ok(estimate_migration(
                    memory_mb,
                    MIGRATION_DIRTY_RATE_MB_PER_S,
                    MIGRATION_BANDWIDTH_MB_PER_S,
                ))
            }
            Err(rejected) => {
                // Roll back: put the VM where it came from.
                self.machine_mut(from)
                    .expect("source machine exists")
                    .try_add_vm(rejected)
                    .expect("source still has room for its own VM");
                Err(ClusterError::NoCapacity { vm, pm: to })
            }
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("machines", &self.machines.len())
            .field("vms", &self.vm_count())
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EpochEngine;
    use rand::SeedableRng;
    use workloads::{AppId, ClientEmulator, DataServing, MemoryStress};

    fn engine() -> EpochEngine {
        EpochEngine::serial(ClusterSeed::new(5))
    }

    fn serving_vm(id: u64) -> Vm {
        Vm::new(
            VmId(id),
            Box::new(DataServing::with_defaults(AppId(1))),
            ClientEmulator::new(8_000.0, 4.0),
        )
    }

    fn aggressor_vm(id: u64) -> Vm {
        Vm::new(
            VmId(id),
            Box::new(MemoryStress::new(AppId(50), 512.0)),
            ClientEmulator::new(1.0, 1.0),
        )
    }

    fn cluster(n: usize) -> Cluster {
        Cluster::homogeneous(n, MachineSpec::xeon_x5472(), Scheduler::default())
    }

    #[test]
    fn placement_and_location_round_trip() {
        let mut c = cluster(3);
        c.place_on(PmId(1), serving_vm(10)).unwrap();
        assert_eq!(c.locate(VmId(10)), Some(PmId(1)));
        assert_eq!(c.vm_count(), 1);
        assert_eq!(c.locate(VmId(11)), None);
    }

    #[test]
    fn first_fit_fills_machines_in_order() {
        let mut c = cluster(2);
        // Each Xeon takes four 2-vCPU VMs.
        for i in 0..5 {
            c.place_first_fit(serving_vm(i)).unwrap();
        }
        assert_eq!(c.machine(PmId(0)).unwrap().vm_count(), 4);
        assert_eq!(c.machine(PmId(1)).unwrap().vm_count(), 1);
    }

    #[test]
    fn placement_errors_are_reported() {
        let mut c = cluster(1);
        assert_eq!(
            c.place_on(PmId(9), serving_vm(1)),
            Err(ClusterError::UnknownPm(PmId(9)))
        );
        for i in 0..4 {
            c.place_on(PmId(0), serving_vm(i)).unwrap();
        }
        assert!(matches!(
            c.place_on(PmId(0), serving_vm(99)),
            Err(ClusterError::NoCapacity { .. })
        ));
    }

    #[test]
    fn exhausted_first_fit_reports_cluster_full() {
        let mut c = cluster(2);
        // Two Xeons take eight 2-vCPU VMs; the ninth has nowhere to go.
        for i in 0..8 {
            c.place_first_fit(serving_vm(i)).unwrap();
        }
        let err = c.place_first_fit(serving_vm(99)).unwrap_err();
        assert_eq!(err, ClusterError::ClusterFull { vm: VmId(99) });
        assert_eq!(
            err.to_string(),
            "no machine in the cluster has capacity for vm-99"
        );
        assert_eq!(c.vm_count(), 8);
        assert_eq!(c.locate(VmId(99)), None);
    }

    #[test]
    fn remove_vm_returns_the_vm_and_clears_its_location() {
        let mut c = cluster(2);
        c.place_on(PmId(1), serving_vm(7)).unwrap();
        let removed = c.remove_vm(VmId(7)).expect("vm placed above");
        assert_eq!(removed.id, VmId(7));
        assert_eq!(c.locate(VmId(7)), None);
        assert_eq!(c.vm_count(), 0);
        assert!(c.remove_vm(VmId(7)).is_none());
    }

    #[test]
    fn location_index_stays_consistent_under_interleaved_migrations() {
        // Drive every mutation path — placements, successful and failed
        // migrations, removals — and after each step check the O(1) index
        // against a brute-force scan of the machines.
        let mut c = cluster(3);
        let assert_consistent = |c: &Cluster| {
            let mut scanned = 0;
            for m in c.machines() {
                for vm in m.vms() {
                    scanned += 1;
                    assert_eq!(c.locate(vm.id), Some(m.id), "index disagrees for {}", vm.id);
                }
            }
            assert_eq!(c.vm_count(), scanned);
        };

        for i in 0..6 {
            c.place_first_fit(serving_vm(i)).unwrap();
            assert_consistent(&c);
        }
        // Bounce VMs around; some of these moves hit full machines and roll
        // back, which must leave the index untouched.
        let moves = [
            (VmId(0), PmId(2)),
            (VmId(4), PmId(0)),
            (VmId(1), PmId(2)),
            (VmId(0), PmId(1)),
            (VmId(5), PmId(0)),
            (VmId(2), PmId(2)),
        ];
        for (vm, to) in moves {
            let _ = c.migrate(vm, to);
            assert_consistent(&c);
        }
        c.remove_vm(VmId(3)).unwrap();
        assert_consistent(&c);
        c.place_first_fit(serving_vm(40)).unwrap();
        assert_consistent(&c);
    }

    #[test]
    #[should_panic(expected = "duplicate machine id")]
    fn duplicate_machine_ids_are_rejected() {
        let spec = MachineSpec::xeon_x5472();
        Cluster::from_machines(vec![
            PhysicalMachine::new(PmId(3), spec.clone(), Scheduler::default()),
            PhysicalMachine::new(PmId(3), spec, Scheduler::default()),
        ]);
    }

    #[test]
    fn step_epoch_reports_every_vm_and_advances_time() {
        let mut c = cluster(2);
        c.place_on(PmId(0), serving_vm(1)).unwrap();
        c.place_on(PmId(1), serving_vm(2)).unwrap();
        let reports = engine().step(&mut c, |_| 0.7);
        assert_eq!(reports.len(), 2);
        assert_eq!(c.epoch(), 1);
        let second = engine().step(&mut c, |_| 0.7);
        assert_eq!(second[0].epoch, 1);
    }

    #[test]
    fn heterogeneous_builds_groups_in_order_with_sequential_ids() {
        let c = Cluster::heterogeneous(
            &[
                (MachineSpec::xeon_x5472(), 2),
                (MachineSpec::core_i7_nehalem(), 3),
            ],
            Scheduler::default(),
        );
        assert_eq!(c.machines().len(), 5);
        for (i, m) in c.machines().iter().enumerate() {
            assert_eq!(m.id, PmId(i as u64));
        }
        assert!(c.machines()[..2]
            .iter()
            .all(|m| m.spec == MachineSpec::xeon_x5472()));
        assert!(c.machines()[2..]
            .iter()
            .all(|m| m.spec == MachineSpec::core_i7_nehalem()));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn heterogeneous_with_no_machines_is_rejected() {
        Cluster::heterogeneous(&[(MachineSpec::xeon_x5472(), 0)], Scheduler::default());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shared_rng_wrapper_still_steps_deterministically() {
        let run = || {
            let mut c = cluster(2);
            c.place_on(PmId(0), serving_vm(1)).unwrap();
            c.place_on(PmId(1), serving_vm(2)).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            let mut reports = c.step_epoch(&|_| 0.7, &mut rng);
            reports.extend(c.step_epoch(&|_| 0.7, &mut rng));
            reports
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "wrapper must stay deterministic per caller seed");
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn migration_moves_the_vm_and_reports_cost() {
        let mut c = cluster(2);
        c.place_on(PmId(0), serving_vm(1)).unwrap();
        c.place_on(PmId(0), aggressor_vm(2)).unwrap();
        let cost = c.migrate(VmId(2), PmId(1)).unwrap();
        assert!(cost.total_seconds > 0.0);
        assert_eq!(c.locate(VmId(2)), Some(PmId(1)));
        assert_eq!(c.locate(VmId(1)), Some(PmId(0)));
    }

    #[test]
    fn migration_to_full_machine_rolls_back() {
        let mut c = cluster(2);
        for i in 0..4 {
            c.place_on(PmId(1), serving_vm(100 + i)).unwrap();
        }
        c.place_on(PmId(0), serving_vm(1)).unwrap();
        let err = c.migrate(VmId(1), PmId(1)).unwrap_err();
        assert!(matches!(err, ClusterError::NoCapacity { .. }));
        // The VM must still be on its source machine after the failed move.
        assert_eq!(c.locate(VmId(1)), Some(PmId(0)));
    }

    #[test]
    fn migration_errors_for_unknown_or_same_destination() {
        let mut c = cluster(2);
        c.place_on(PmId(0), serving_vm(1)).unwrap();
        assert_eq!(
            c.migrate(VmId(9), PmId(1)),
            Err(ClusterError::UnknownVm(VmId(9)))
        );
        assert_eq!(
            c.migrate(VmId(1), PmId(0)),
            Err(ClusterError::AlreadyPlaced {
                vm: VmId(1),
                pm: PmId(0)
            })
        );
        assert_eq!(
            c.migrate(VmId(1), PmId(7)),
            Err(ClusterError::UnknownPm(PmId(7)))
        );
    }

    #[test]
    fn interference_is_visible_in_cluster_reports() {
        let mut c = cluster(1);
        c.place_on(PmId(0), serving_vm(1)).unwrap();
        let engine = engine();
        let baseline = engine.step(&mut c, |_| 1.0);
        c.place_on(PmId(0), aggressor_vm(2)).unwrap();
        let contended = engine.step(&mut c, |_| 1.0);
        let victim_before = &baseline[0];
        let victim_after = contended.iter().find(|r| r.vm_id == VmId(1)).unwrap();
        assert!(victim_after.achieved_fraction < victim_before.achieved_fraction);
    }
}
