//! The event-driven datacenter front end.
//!
//! Everything below the engine treats the cluster as a fixed population:
//! `step_epochs` sweeps whatever VMs are placed.  A real datacenter is a
//! *process* — VMs arrive, run hot for a while, go idle, and eventually
//! depart — and the interesting throughput question is how fast the
//! simulator sustains that churn at fleet scale.  [`DatacenterService`] is
//! that front end: it consumes [`traces::VmSession`] lifecycles (the
//! Hotmail and EC2 presets in `traces::arrivals`, or any custom stream),
//! schedules them on a deterministic event queue
//! ([`queueing::EventQueue`]), batches the arrivals/idles/departures that
//! fall inside each epoch, and drives the sparse [`EpochEngine`] over the
//! resulting cluster.
//!
//! The lifecycle model is deliberately simple and exactly matches the
//! quiescence contract: a VM runs at its session's `active_load` for the
//! first part of its lifetime, then idles at load `0.0` (where the preset
//! workloads are provably static, so the sparse engine stops resolving its
//! host) until it departs.  With heavy-tailed lifetimes this converges to
//! the regime the sparse engine is built for — a small active working set
//! on top of a large quiescent fleet.
//!
//! ## Determinism
//!
//! The service is bit-reproducible: sessions are pre-sorted, the event
//! queue breaks same-instant ties in push order, VM ids are assigned
//! densely in arrival order, and placement is a pure function of the event
//! sequence (a free-slot hint queue with lazy revalidation, falling back to
//! a full first-fit scan before ever rejecting an arrival).

use std::collections::VecDeque;

use hwsim::{MachineSpec, EPOCH_SECONDS};
use queueing::EventQueue;
use traces::VmSession;
use workloads::{AppId, ClientEmulator, DataServing, WebSearch, Workload};

use crate::cluster::Cluster;
use crate::engine::EpochEngine;
use crate::pm::{PmId, VmEpochReport};
use crate::rngs::ClusterSeed;
use crate::scheduler::Scheduler;
use crate::vm::{Vm, VmId};

/// Configuration of the datacenter front end.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of physical machines in the (homogeneous) fleet.
    pub machines: usize,
    /// Hardware model of every machine.
    pub spec: MachineSpec,
    /// Placement policy / admission checker.
    pub scheduler: Scheduler,
    /// Cluster seed driving every VM's demand streams.
    pub seed: ClusterSeed,
    /// Fraction of each VM's lifetime spent at its active load before it
    /// idles at load zero (clamped to `[0, 1]`).  The idle tail is where
    /// the sparse engine earns its keep.
    pub active_fraction: f64,
}

impl ServiceConfig {
    /// A Xeon X5472 fleet with default scheduling, 30% active lifetimes.
    pub fn xeon_fleet(machines: usize, seed: u64) -> Self {
        Self {
            machines,
            spec: MachineSpec::xeon_x5472(),
            scheduler: Scheduler::default(),
            seed: ClusterSeed::new(seed),
            active_fraction: 0.3,
        }
    }
}

/// Counters the service accumulates while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// VMs successfully admitted and placed.
    pub arrivals: u64,
    /// VMs that left at the end of their session.
    pub departures: u64,
    /// Arrivals turned away because no machine could admit the VM.
    pub rejections: u64,
    /// VM-epochs simulated (sum of resident VMs over stepped epochs).
    pub vm_epochs: u64,
    /// Largest number of VMs resident at once.
    pub peak_resident: usize,
}

/// A scheduled lifecycle transition.
#[derive(Debug, Clone, Copy)]
enum SessionEvent {
    /// Admit session `i` of the stream.
    Arrive(usize),
    /// Drop the VM's offered load to zero (it keeps its placement).
    GoIdle(VmId),
    /// Remove the VM from the cluster.
    Depart(VmId),
}

/// The event-driven datacenter: session stream in, epochs out.
#[derive(Debug)]
pub struct DatacenterService {
    cluster: Cluster,
    engine: EpochEngine,
    config: ServiceConfig,
    sessions: Vec<VmSession>,
    events: EventQueue<SessionEvent>,
    /// Offered load per VM, indexed by the densely assigned `VmId` — a
    /// plain vector, not a map, because the engine's `load_for` closure is
    /// the hottest lookup in the simulation (one call per resident VM per
    /// epoch).
    loads: Vec<f64>,
    /// Machine indices that freed capacity recently; tried (with lazy
    /// revalidation) before the first-fit scan.
    free_hint: VecDeque<usize>,
    /// Where the last successful scan placement landed; the next scan
    /// resumes here (next-fit), so steady-state placement cost stays O(1)
    /// amortized instead of rescanning the full fleet per arrival.
    scan_cursor: usize,
    stats: ServiceStats,
}

impl DatacenterService {
    /// Builds the fleet and schedules every session's arrival.
    ///
    /// Sessions may arrive in any order; the event queue orders them.  The
    /// engine defaults to sparse serial stepping — swap it via
    /// [`DatacenterService::engine_mut`] for pooled or dense runs.
    ///
    /// # Panics
    /// Panics if `machines` is zero (the cluster constructor's contract).
    pub fn new(config: ServiceConfig, sessions: Vec<VmSession>) -> Self {
        let cluster = Cluster::homogeneous(config.machines, config.spec.clone(), config.scheduler);
        let engine = EpochEngine::serial(config.seed);
        let mut events = EventQueue::new();
        for (index, session) in sessions.iter().enumerate() {
            events.push(session.arrival_s, SessionEvent::Arrive(index));
        }
        Self {
            cluster,
            engine,
            config,
            sessions,
            events,
            loads: Vec::new(),
            free_hint: VecDeque::new(),
            scan_cursor: 0,
            stats: ServiceStats::default(),
        }
    }

    /// The cluster being driven.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access, for a controller layered on top (DeepDive
    /// migrates VMs between epochs).  The service's placement hints are
    /// only hints — every candidate is revalidated at admission time — so
    /// external mutation cannot corrupt placement, only make the next
    /// arrival's scan marginally longer.  Pair controller-driven
    /// migrations with [`DatacenterService::note_capacity_freed`] to keep
    /// the hints warm.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The stepping engine (sparse serial by default).
    pub fn engine(&self) -> &EpochEngine {
        &self.engine
    }

    /// Mutable engine access — switch execution mode or toggle sparse
    /// stepping without rebuilding the service.
    pub fn engine_mut(&mut self) -> &mut EpochEngine {
        &mut self.engine
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Lifecycle events not yet applied (arrivals not yet due, idles and
    /// departures of resident VMs).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Tells the placement hint queue that `pm` freed some capacity — the
    /// hook a migration controller calls for each machine it moved a VM
    /// *off* (departures handled by the service itself do this
    /// automatically).
    pub fn note_capacity_freed(&mut self, pm: PmId) {
        let index = pm.0 as usize;
        if index < self.config.machines {
            self.free_hint.push_back(index);
        }
    }

    /// Applies every lifecycle event due at or before the next epoch's
    /// start, then steps the cluster one epoch and returns its reports.
    ///
    /// An arrival that no machine can admit counts as a rejection and is
    /// dropped (its idle/departure events are never scheduled).
    pub fn step_epoch(&mut self) -> Vec<VmEpochReport> {
        self.apply_due_events();
        let resident = self.cluster.vm_count();
        self.stats.vm_epochs += resident as u64;
        self.stats.peak_resident = self.stats.peak_resident.max(resident);
        let loads = std::mem::take(&mut self.loads);
        let reports = self
            .engine
            .step(&mut self.cluster, |vm| loads[vm.0 as usize]);
        self.loads = loads;
        reports
    }

    /// Runs `epochs` epochs, discarding reports, and returns the stats
    /// accumulated so far — the bulk-throughput entry point the datacenter
    /// bench drives.
    pub fn run_epochs(&mut self, epochs: u64) -> ServiceStats {
        for _ in 0..epochs {
            self.step_epoch();
        }
        self.stats
    }

    /// True once every session has been admitted (or rejected) and every
    /// admitted VM has departed.
    pub fn drained(&self) -> bool {
        self.events.is_empty() && self.cluster.vm_count() == 0
    }

    fn apply_due_events(&mut self) {
        // Events due strictly inside a past epoch land at this boundary:
        // an arrival at t = 3.7 is resident from epoch 4 on.
        let boundary = self.cluster.epoch() as f64 * EPOCH_SECONDS;
        while let Some((_, event)) = self.events.pop_due(boundary) {
            match event {
                SessionEvent::Arrive(index) => self.admit(index),
                SessionEvent::GoIdle(vm) => {
                    self.loads[vm.0 as usize] = 0.0;
                }
                SessionEvent::Depart(vm) => {
                    if let Some(pm) = self.cluster.locate(vm) {
                        self.cluster.remove_vm(vm);
                        self.stats.departures += 1;
                        self.note_capacity_freed(pm);
                    }
                }
            }
        }
    }

    fn admit(&mut self, index: usize) {
        let session = self.sessions[index];
        let id = VmId(self.loads.len() as u64);
        if self.place(id, &session).is_none() {
            self.stats.rejections += 1;
            // Keep VM ids dense in arrival order even across rejections,
            // so replays with different capacity stay comparable.
            self.loads.push(0.0);
            return;
        }
        self.loads.push(session.active_load.clamp(0.0, 1.0));
        self.stats.arrivals += 1;
        let active_s = session.lifetime_s * self.config.active_fraction.clamp(0.0, 1.0);
        self.events
            .push(session.arrival_s + active_s, SessionEvent::GoIdle(id));
        self.events
            .push(session.departure_s(), SessionEvent::Depart(id));
    }

    /// The workload mix behind a session: cloud apps that are provably
    /// static when idle, keyed by popularity rank so VMs of the same app
    /// share an [`AppId`] (what lets DeepDive reuse behaviour across them).
    fn session_vm(id: VmId, session: &VmSession) -> Vm {
        let app = AppId(session.app_rank as u64);
        let workload: Box<dyn Workload> = if session.app_rank.is_multiple_of(2) {
            Box::new(DataServing::with_defaults(app))
        } else {
            Box::new(WebSearch::with_defaults(app))
        };
        let client = ClientEmulator::new(workload.peak_request_rate(), 4.0);
        Vm::new(id, workload, client)
    }

    /// Places the session's VM: freed-capacity hints first (lazily
    /// revalidated — stale or still-full entries are simply dropped), then
    /// a next-fit scan resuming at the last placement, wrapping once
    /// around the whole fleet before giving up.  Returns the hosting
    /// machine, or `None` for a genuine reject (no machine admits the VM
    /// right now).
    fn place(&mut self, id: VmId, session: &VmSession) -> Option<PmId> {
        while let Some(index) = self.free_hint.pop_front() {
            let pm = PmId(index as u64);
            if self.try_place(pm, id, session) {
                // The machine may still have room; keep it warm for the
                // next arrival.
                self.free_hint.push_front(index);
                return Some(pm);
            }
        }
        let n = self.config.machines;
        for probe in 0..n {
            let index = (self.scan_cursor + probe) % n;
            let pm = PmId(index as u64);
            if self.try_place(pm, id, session) {
                self.scan_cursor = index;
                return Some(pm);
            }
        }
        None
    }

    /// One admission attempt.  `place_on` consumes the VM either way, so
    /// the (cheap) VM shell is rebuilt per attempt; a placement error
    /// other than `NoCapacity` would be a service bug, so it panics
    /// loudly.
    fn try_place(&mut self, pm: PmId, id: VmId, session: &VmSession) -> bool {
        match self.cluster.place_on(pm, Self::session_vm(id, session)) {
            Ok(()) => true,
            Err(crate::cluster::ClusterError::NoCapacity { .. }) => false,
            Err(other) => panic!("datacenter placement hit an unexpected error: {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sessions(specs: &[(f64, f64, f64, usize)]) -> Vec<VmSession> {
        specs
            .iter()
            .map(
                |&(arrival_s, lifetime_s, active_load, app_rank)| VmSession {
                    arrival_s,
                    lifetime_s,
                    active_load,
                    app_rank,
                },
            )
            .collect()
    }

    #[test]
    fn vms_arrive_idle_and_depart_on_schedule() {
        let service_sessions = sessions(&[
            (0.0, 10.0, 0.8, 1),
            (0.5, 4.0, 0.6, 2), // departs at 4.5 → gone from epoch 5
            (3.0, 100.0, 0.7, 1),
        ]);
        let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(2, 1), service_sessions);
        let first = svc.step_epoch(); // epoch 0: arrivals at t <= 0.0
        assert_eq!(first.len(), 1);
        let second = svc.step_epoch(); // epoch 1: the t = 0.5 arrival joined
        assert_eq!(second.len(), 2);
        let mut reports = Vec::new();
        for _ in 2..6 {
            reports.push(svc.step_epoch());
        }
        // Epoch 4 still has VM 1 (departs at 4.5 → removed at epoch 5).
        assert_eq!(reports[2].len(), 3, "epoch 4: all three resident");
        assert_eq!(reports[3].len(), 2, "epoch 5: VM 1 departed");
        let stats = svc.stats();
        assert_eq!(stats.arrivals, 3);
        assert_eq!(stats.departures, 1);
        assert_eq!(stats.rejections, 0);
        assert_eq!(stats.peak_resident, 3);
    }

    #[test]
    fn active_vms_go_idle_after_their_active_fraction() {
        // One VM, 10 s lifetime, 30% active → load 0.9 through epoch 3,
        // then 0.0 from epoch 4 (idle event at t = 3.0 applies at its
        // boundary... the event lands at the first boundary >= 3.0).
        let mut svc = DatacenterService::new(
            ServiceConfig::xeon_fleet(1, 2),
            sessions(&[(0.0, 10.0, 0.9, 2)]),
        );
        let mut offered = Vec::new();
        for _ in 0..6 {
            let reports = svc.step_epoch();
            offered.push(reports[0].offered_load);
        }
        assert_eq!(offered[..3], [0.9, 0.9, 0.9]);
        assert_eq!(offered[3..], [0.0, 0.0, 0.0]);
        // Once idle, the sparse engine stops resolving the machine.
        let resolves_when_idle = svc.cluster().total_resolves();
        svc.run_epochs(5);
        assert_eq!(svc.cluster().total_resolves(), resolves_when_idle);
        assert!(svc.cluster().total_quiescent_steps() >= 5);
    }

    #[test]
    fn a_full_fleet_rejects_and_recovers_capacity_on_departure() {
        // One Xeon machine admits four 2-vCPU VMs; offer six, two overflow.
        let mut specs: Vec<(f64, f64, f64, usize)> =
            (0..6).map(|i| (i as f64 * 0.01, 50.0, 0.5, 1)).collect();
        // A late VM arrives after the four residents depart.
        specs.push((60.0, 5.0, 0.5, 1));
        let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(1, 3), sessions(&specs));
        svc.run_epochs(55);
        let mid = svc.stats();
        assert_eq!(mid.arrivals, 4);
        assert_eq!(mid.rejections, 2);
        assert_eq!(mid.departures, 4);
        svc.run_epochs(15);
        let done = svc.stats();
        assert_eq!(done.arrivals, 5, "freed capacity must admit the late VM");
        assert_eq!(done.departures, 5);
        assert!(svc.drained());
    }

    #[test]
    fn the_run_is_bit_reproducible_and_dense_equals_sparse() {
        let stream = traces::hotmail_sessions(40_000.0, 0.005, 11);
        assert!(stream.len() > 20, "want a busy little stream");
        let run = |sparse: bool| {
            let mut svc = DatacenterService::new(ServiceConfig::xeon_fleet(12, 7), stream.clone());
            svc.engine_mut().set_sparse(sparse);
            let mut all = Vec::new();
            for _ in 0..400 {
                all.push(svc.step_epoch());
            }
            (all, svc.stats())
        };
        let (sparse_reports, sparse_stats) = run(true);
        let (dense_reports, dense_stats) = run(false);
        assert_eq!(sparse_reports, dense_reports);
        assert_eq!(sparse_stats, dense_stats);
        assert!(sparse_stats.arrivals > 0);
        assert!(sparse_stats.vm_epochs > 0);
    }

    #[test]
    fn note_capacity_freed_keeps_external_migrations_warm() {
        let mut svc = DatacenterService::new(
            ServiceConfig::xeon_fleet(3, 9),
            sessions(&[(0.0, 100.0, 0.5, 1), (20.0, 100.0, 0.5, 1)]),
        );
        svc.step_epoch();
        // Externally migrate VM 0 from machine 0 to machine 2, as the
        // DeepDive controller would, then report the freed source.
        let vm = VmId(0);
        let from = svc.cluster().locate(vm).expect("vm 0 resident");
        svc.cluster_mut()
            .migrate(vm, PmId(2))
            .expect("room on pm 2");
        svc.note_capacity_freed(from);
        // The next arrival (t = 20) lands on the freed machine first.
        svc.run_epochs(25);
        assert_eq!(svc.cluster().locate(VmId(1)), Some(from));
    }
}
